//! `fqos` — command-line front end for the flash-qos library.
//!
//! ```text
//! fqos design   --devices 9 [--copies 3]
//!     Print the design, its rotation table size and S(M) guarantees.
//!
//! fqos generate --blocks 5 --interval-ms 0.133 --total 10000 [--pool 36] [--seed N]
//!     Emit a synthetic DiskSim-style ASCII trace on stdout (§V-B1).
//!
//! fqos analyze  --trace FILE --devices 9 [--copies 3] [--interval-ms 0.133]
//!               [--epsilon 0.0] [--mapping fim|modulo|roundrobin]
//!               [--reporting-ms 100]
//!     Run a trace through the QoS pipeline and print the per-interval
//!     report plus the original-layout comparison.
//!
//! fqos serve    --devices 9 [--copies 3] [--accesses 1] [--workers 4]
//!               [--submitters 3] [--windows 500] [--epsilon 0.0]
//!               [--queue-depth 64] [--mode flow|eft] [--seed N]
//!               [--fault-schedule "fail:D@W,recover:D@W,slow:D@W[xF],restore:D@W,..."]
//!               [--no-hedge]
//!     Replay a synthetic timestamped trace through the concurrent serving
//!     engine: one submitter thread per tenant against a worker pool, then
//!     print the serving report and the deadline audit. A fault schedule
//!     scripts device failures/recoveries and silent fail-slow episodes
//!     (`slow:D@W` degrades device D 10× from window W, `slow:D@WxF` by
//!     factor F, `restore:D@W` heals it) at window boundaries; the audit
//!     then also reports degraded windows, re-routes, losses, and the
//!     fail-slow counters (detections, hedges, retries). `--no-hedge`
//!     disables speculative re-dispatch so the two runs can be compared.
//! ```

use flash_qos::prelude::*;
use flash_qos::qos::config::OverloadPolicy;
use flash_qos::traces::ascii;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: fqos <design|generate|analyze> [options]  (see --help)");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "design" => cmd_design(&opts),
        "generate" => cmd_generate(&opts),
        "analyze" => cmd_analyze(&opts),
        "serve" => cmd_serve(&opts),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("fqos — replication-based QoS for flash arrays (CLUSTER 2012 reproduction)");
    println!();
    println!("commands:");
    println!("  design   --devices N [--copies C]          show a design and its guarantees");
    println!("  generate --blocks B --interval-ms T --total N [--pool P] [--seed S]");
    println!("                                              emit a synthetic ASCII trace");
    println!("  analyze  --trace FILE --devices N [--copies C] [--interval-ms T]");
    println!("           [--epsilon E] [--mapping fim|modulo|roundrobin] [--reporting-ms R]");
    println!("                                              run the QoS pipeline on a trace");
    println!("  serve    --devices N [--copies C] [--accesses M] [--workers W]");
    println!("           [--submitters S] [--windows K] [--epsilon E] [--queue-depth D]");
    println!("           [--mode flow|eft] [--seed S]      replay a synthetic trace through");
    println!("           [--fault-schedule \"fail:D@W,...\"]  the concurrent serving engine,");
    println!("           [--no-hedge]                       optionally failing/recovering or");
    println!("                                              silently slowing (slow:D@W[xF],");
    println!("                                              restore:D@W) devices at scripted");
    println!("                                              windows; --no-hedge disables");
    println!("                                              speculative re-dispatch");
}

type Options = HashMap<String, String>;

/// Options that are bare flags: present-or-absent, no value.
const FLAG_KEYS: &[&str] = &["no-hedge"];

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, found '{}'", args[i]))?;
        if FLAG_KEYS.contains(&key) {
            out.insert(key.to_string(), String::new());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?
            .clone();
        out.insert(key.to_string(), value);
        i += 2;
    }
    Ok(out)
}

fn get_num<T: std::str::FromStr>(opts: &Options, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{v}'")),
    }
}

fn require_num<T: std::str::FromStr>(opts: &Options, key: &str) -> Result<T, String> {
    let v = opts
        .get(key)
        .ok_or_else(|| format!("--{key} is required"))?;
    v.parse()
        .map_err(|_| format!("--{key}: cannot parse '{v}'"))
}

fn cmd_design(opts: &Options) -> Result<(), String> {
    let devices: usize = require_num(opts, "devices")?;
    let copies: usize = get_num(opts, "copies", 3)?;
    let design = DesignCatalog
        .find(devices, copies)
        .map_err(|e| e.to_string())?;
    design.verify().map_err(|e| e.to_string())?;
    println!(
        "({devices},{copies},1) design: {} blocks, replication number {}",
        design.num_blocks(),
        design.replication_number()
    );
    let g = RetrievalGuarantee::of(&design);
    println!("rotation-expanded buckets: {}", g.supported_buckets());
    println!("guarantees:");
    for m in 1..=4 {
        println!(
            "  any {:>4} buckets in {m} access(es)  (interval ≥ {:.3} ms on calibrated flash)",
            g.buckets_in(m),
            m as f64 * 0.132507
        );
    }
    println!("blocks:");
    for (i, b) in design.blocks().iter().enumerate() {
        let cells: Vec<String> = b.iter().map(std::string::ToString::to_string).collect();
        println!("  {i:>3}: ({})", cells.join(","));
    }
    Ok(())
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    let blocks: usize = require_num(opts, "blocks")?;
    let interval_ms: f64 = require_num(opts, "interval-ms")?;
    let total: usize = require_num(opts, "total")?;
    let pool: u64 = get_num(opts, "pool", 36)?;
    let seed: u64 = get_num(opts, "seed", 0x5EED)?;
    let cfg = SyntheticConfig {
        blocks_per_interval: blocks,
        interval_ns: (interval_ms * 1e6) as u64,
        total_requests: total,
        block_pool: pool,
        seed,
    };
    print!("{}", ascii::emit(&cfg.generate()));
    Ok(())
}

fn cmd_analyze(opts: &Options) -> Result<(), String> {
    let path = opts.get("trace").ok_or("--trace is required")?;
    let devices: usize = require_num(opts, "devices")?;
    let copies: usize = get_num(opts, "copies", 3)?;
    let interval_ms: f64 = get_num(opts, "interval-ms", 0.133)?;
    let epsilon: f64 = get_num(opts, "epsilon", 0.0)?;
    let reporting_ms: f64 = get_num(opts, "reporting-ms", 100.0)?;
    let mapping = match opts.get("mapping").map(String::as_str) {
        None | Some("fim") => MappingStrategy::Fim,
        Some("modulo") => MappingStrategy::Modulo,
        Some("roundrobin") => MappingStrategy::RoundRobin,
        Some(other) => return Err(format!("--mapping: unknown strategy '{other}'")),
    };

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = ascii::parse(&text, path.clone(), devices, (reporting_ms * 1e6) as u64)
        .map_err(|e| e.to_string())?;
    println!(
        "trace: {} requests, {} reporting intervals of {reporting_ms} ms",
        trace.len(),
        trace.num_intervals()
    );

    let design = DesignCatalog
        .find(devices, copies)
        .map_err(|e| e.to_string())?;
    let config = QosConfig {
        scheme: flash_qos::decluster::DesignTheoretic::new(design),
        accesses: 1,
        interval_ns: (interval_ms * 1e6) as u64,
        epsilon,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    };
    config.validate().map_err(|e| e.to_string())?;
    let limit = config.request_limit();
    let pipeline = QosPipeline::new(config).with_mapping(mapping);

    let qos = pipeline.run_online(&trace);
    let orig = pipeline.run_original(&trace);

    println!("\nQoS guarantee: {limit} requests per {interval_ms} ms interval\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>11}",
        "interval",
        "requests",
        "qos avg ms",
        "qos max ms",
        "orig avg ms",
        "orig max ms",
        "% delayed"
    );
    for i in 0..trace.num_intervals() {
        println!(
            "{:<10} {:>10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>10.1}%",
            i,
            qos.intervals.requests[i],
            qos.intervals.response[i].mean_ms(),
            qos.intervals.response[i].max_ms(),
            orig.intervals.response[i].mean_ms(),
            orig.intervals.response[i].max_ms(),
            qos.intervals.delayed_pct(i),
        );
    }
    println!(
        "\ntotals: qos max {:.6} ms | original max {:.6} ms | {:.2}% delayed ({:.3} ms avg delay)",
        qos.total_response.max_ms(),
        orig.total_response.max_ms(),
        qos.delayed_pct(),
        qos.avg_delay_ms()
    );
    if !qos.matched_fraction.is_empty() {
        println!(
            "FIM re-match average: {:.1}%",
            100.0 * qos.avg_matched_fraction()
        );
    }
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    use flash_qos::flashsim::time::BASE_INTERVAL_NS;

    let devices: usize = require_num(opts, "devices")?;
    let copies: usize = get_num(opts, "copies", 3)?;
    let accesses: usize = get_num(opts, "accesses", 1)?;
    let workers: usize = get_num(opts, "workers", 4)?;
    let submitters: usize = get_num(opts, "submitters", 3)?;
    let windows: u64 = get_num(opts, "windows", 500)?;
    let epsilon: f64 = get_num(opts, "epsilon", 0.0)?;
    let queue_depth: usize = get_num(opts, "queue-depth", 64)?;
    let seed: u64 = get_num(opts, "seed", 0x5EED)?;
    let mode = match opts.get("mode").map(String::as_str) {
        None | Some("flow") => AssignmentMode::OptimalFlow,
        Some("eft") => AssignmentMode::Eft,
        Some(other) => return Err(format!("--mode: unknown mode '{other}' (flow|eft)")),
    };
    let hedging = !opts.contains_key("no-hedge");
    let fault_schedule = match opts.get("fault-schedule") {
        None => FaultSchedule::new(),
        Some(spec) => FaultSchedule::parse(spec).map_err(|e| format!("--fault-schedule: {e}"))?,
    };
    if workers == 0 || submitters == 0 || windows == 0 {
        return Err("--workers, --submitters and --windows must be positive".into());
    }
    // Typed parse-time validation against the array geometry and the run
    // horizon: a schedule naming device 12 of 9 or window 600 of 500 is a
    // spec error, reported before the server spins up.
    fault_schedule
        .validate_for(devices, Some(windows))
        .map_err(|e| format!("--fault-schedule: {e}"))?;

    let design = DesignCatalog
        .find(devices, copies)
        .map_err(|e| e.to_string())?;
    let qos = QosConfig {
        scheme: flash_qos::decluster::DesignTheoretic::new(design),
        accesses,
        interval_ns: accesses as u64 * BASE_INTERVAL_NS,
        epsilon,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    };
    qos.validate().map_err(|e| e.to_string())?;
    let limit = qos.request_limit();
    let pool = AllocationScheme::num_buckets(&qos.scheme) as u64;
    let interval_ns = qos.interval_ns;
    let submitters = submitters.min(limit);

    let scripted_faults = !fault_schedule.is_empty();
    let scripted_slow = fault_schedule
        .events()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::Slow(_)));
    let server = QosServer::new(
        ServerConfig::new(qos)
            .with_workers(workers)
            .with_queue_depth(queue_depth)
            .with_assignment(mode)
            .with_fault_schedule(fault_schedule)
            .with_hedging(hedging),
    )?;

    // Split the S(M) budget across one tenant per submitter thread and give
    // each tenant its own synthetic timestamped trace at exactly its
    // reserved rate.
    let mut plan = Vec::with_capacity(submitters);
    for s in 0..submitters {
        let reserved = limit / submitters + usize::from(s < limit % submitters);
        plan.push((s as u64 + 1, reserved));
    }
    for &(tenant, reserved) in &plan {
        server
            .register(tenant, reserved, OverloadPolicy::Delay)
            .map_err(|e| e.to_string())?;
    }
    println!(
        "serving {windows} windows of {:.3} ms on a ({devices},{copies},1) array: \
         S({accesses}) = {limit}, {} tenants, {} workers, {:?} assignment",
        interval_ns as f64 / 1e6,
        plan.len(),
        workers.min(devices),
        mode,
    );

    let wall = std::time::Instant::now();
    let threads: Vec<_> = plan
        .iter()
        .map(|&(tenant, reserved)| {
            let mut handle = server.handle();
            let trace = SyntheticConfig {
                blocks_per_interval: reserved,
                interval_ns,
                total_requests: reserved * windows as usize,
                block_pool: pool,
                seed: seed ^ tenant,
            }
            .generate();
            std::thread::spawn(move || {
                for r in &trace.records {
                    handle.submit(tenant, r.lbn, r.arrival_ns);
                }
            })
        })
        .collect();
    for t in threads {
        t.join()
            .map_err(|_| "submitter thread panicked".to_string())?;
    }
    let m = server.finish();
    let wall = wall.elapsed();

    println!();
    println!(
        "served {} requests in {:.1} ms wall clock ({:.0} req/s)",
        m.completed(),
        wall.as_secs_f64() * 1e3,
        m.completed() as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "admitted {} (overflow {}, delayed {}), rejected {}, windows sealed {}",
        m.admitted_total(),
        m.overflow,
        m.delayed,
        m.rejected,
        m.windows_sealed,
    );
    println!(
        "simulated latency: p50 ≤ {:.4} ms, p99 ≤ {:.4} ms, p99.9 ≤ {:.4} ms, \
         max {:.4} ms, mean {:.4} ms",
        m.p50_latency_ns as f64 / 1e6,
        m.p99_latency_ns as f64 / 1e6,
        m.p999_latency_ns as f64 / 1e6,
        m.max_latency_ns as f64 / 1e6,
        m.mean_latency_ns / 1e6,
    );
    println!(
        "busiest window: {} guaranteed (limit {limit}), {} total",
        m.max_window_guaranteed, m.max_window_total,
    );
    println!(
        "\n{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "tenant", "reserved", "admitted", "delayed", "rejected", "served", "violations"
    );
    for t in &m.tenants {
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
            t.tenant,
            t.reserved,
            t.admitted + t.overflow,
            t.delayed,
            t.rejected,
            t.served,
            t.violations,
        );
    }
    println!(
        "\ndeadline audit: {} violations total, {} among guaranteed admissions {}",
        m.deadline_violations,
        m.guaranteed_violations,
        if m.guaranteed_violations == 0 {
            "✓"
        } else {
            "✗ GUARANTEE BROKEN"
        },
    );
    if scripted_faults || m.degraded_windows > 0 {
        println!(
            "fault audit: {} degraded windows, {} re-routed at admission, \
             {} re-dispatched at seal ({} overloaded), {} unavailable-rejected, {} lost {}",
            m.degraded_windows,
            m.fault_reroutes,
            m.fault_redispatches,
            m.fault_overloads,
            m.fault_rejected,
            m.fault_lost,
            if m.fault_lost == 0 {
                "✓"
            } else {
                "✗ REQUESTS LOST"
            },
        );
    }
    if scripted_faults || m.slow_detected > 0 || m.hedges_issued > 0 {
        println!(
            "fail-slow audit: {} slow verdicts ({} suspects, {} recoveries), \
             {} hedges issued / {} won / {} cancelled, {} retries",
            m.slow_detected,
            m.health_suspects,
            m.health_recoveries,
            m.hedges_issued,
            m.hedges_won,
            m.hedges_cancelled,
            m.retries,
        );
    }
    let conserved = m.hedges_won == m.hedges_cancelled
        && m.served + m.fault_lost + m.hedges_cancelled == m.admitted_total();
    println!(
        "conservation: served {} + lost {} + cancelled primaries {} = admitted {} {}",
        m.served,
        m.fault_lost,
        m.hedges_cancelled,
        m.admitted_total(),
        if conserved {
            "✓"
        } else {
            "✗ ACCOUNTING BROKEN"
        },
    );
    // Fail-stop faults are masked by reroute/re-dispatch, so any guaranteed
    // violation is a bug. A scripted *silent* slowdown is different:
    // admission is blind until the scorer convicts, so pre-detection
    // violations are the modeled cost, reported above rather than fatal.
    if m.guaranteed_violations != 0 && !scripted_slow {
        return Err("deterministic guarantee violated".into());
    }
    if m.fault_lost != 0 {
        return Err("admitted requests lost to device failures".into());
    }
    if !conserved {
        return Err("completion accounting does not balance".into());
    }
    Ok(())
}
