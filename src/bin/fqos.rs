//! `fqos` — command-line front end for the flash-qos library.
//!
//! ```text
//! fqos design   --devices 9 [--copies 3]
//!     Print the design, its rotation table size and S(M) guarantees.
//!
//! fqos generate --blocks 5 --interval-ms 0.133 --total 10000 [--pool 36] [--seed N]
//!     Emit a synthetic DiskSim-style ASCII trace on stdout (§V-B1).
//!
//! fqos analyze  --trace FILE --devices 9 [--copies 3] [--interval-ms 0.133]
//!               [--epsilon 0.0] [--mapping fim|modulo|roundrobin]
//!               [--reporting-ms 100]
//!     Run a trace through the QoS pipeline and print the per-interval
//!     report plus the original-layout comparison.
//!
//! fqos serve    --devices 9 [--copies 3] [--accesses 1] [--workers 4]
//!               [--submitters 3] [--windows 500] [--epsilon 0.0]
//!               [--queue-depth 64] [--mode flow|eft] [--seed N]
//!               [--write-ratio F] [--burst HEIGHT@START+LEN] [--gc OP]
//!               [--fault-schedule "fail:D@W,recover:D@W,slow:D@W[xF],restore:D@W,..."]
//!               [--no-hedge] [--wal-dir DIR [--wal-batch N] [--wal-snapshot K]]
//!               [--recover]
//!     Replay a synthetic timestamped trace through the concurrent serving
//!     engine: one submitter thread per tenant against a worker pool, then
//!     print the serving report and the deadline audit. A fault schedule
//!     scripts device failures/recoveries and silent fail-slow episodes
//!     (`slow:D@W` degrades device D 10× from window W, `slow:D@WxF` by
//!     factor F, `restore:D@W` heals it) at window boundaries; the audit
//!     then also reports degraded windows, re-routes, losses, and the
//!     fail-slow counters (detections, hedges, retries). `--no-hedge`
//!     disables speculative re-dispatch so the two runs can be compared.
//!     `--write-ratio` converts that share of the workload into writes,
//!     each fanned out to all `c` replicas; `--burst HEIGHT@START+LEN`
//!     spikes every tenant's rate to HEIGHT blocks per window for LEN
//!     windows starting at START (a flash crowd); `--gc OP` turns on the
//!     FTL write/GC model at over-provisioning OP, so sustained writes
//!     trigger garbage collection whose relocation and erase stalls show
//!     up in the gc audit and the read-compliance line.
//!     `--wal-dir` makes every admission durable in a write-ahead log
//!     before it is acknowledged (fsynced every `--wal-batch` records,
//!     compacted every `--wal-snapshot` seals); after a crash — even a
//!     `kill -9` — `--recover` replays the log, re-parks what was admitted
//!     but unsettled, charges seal-stranded residue as crash losses, and
//!     continues the run from the first unsealed window.
//!
//! fqos cluster  --arrays 4 [--devices 9] [--copies 3] [--accesses 1]
//!               [--submitters 8] [--windows 200] [--seed N] [--reserve R]
//!               [--pin "T:A,..."] [--burst "T:RATE,..."]
//!               [--fault-schedules "A:SPEC;A:SPEC"]
//!               [--chaos-schedule "kill:A@T,restore:A@T,slow:A@T[xF]"]
//!               [--metrics-addr HOST:PORT] [--linger-ms MS]
//!               [--no-rebalance] [--no-hedge]
//!     Run N arrays as one fleet behind the consistent-hash routing tier:
//!     tenants shard across arrays, the ε-budget control loop migrates
//!     tenants off saturated arrays, a Prometheus endpoint serves per-array
//!     metrics, and the run fails unless the cluster conservation law
//!     closes. `--pin` + `--burst` provoke the skew that forces a
//!     rebalance. `--chaos-schedule` fail-stops, restores or fail-slows
//!     whole arrays at scripted control ticks; the health plane detects
//!     the symptom, evacuates dead arrays' tenants onto survivors, and
//!     the extended law (with `evacuation_lost`) must still close.
//! ```

use flash_qos::prelude::*;
use flash_qos::qos::config::OverloadPolicy;
use flash_qos::traces::ascii;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: fqos <design|generate|analyze|serve|cluster> [options]  (see --help)");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "design" => cmd_design(&opts),
        "generate" => cmd_generate(&opts),
        "analyze" => cmd_analyze(&opts),
        "serve" => cmd_serve(&opts),
        "cluster" => cmd_cluster(&opts),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("fqos — replication-based QoS for flash arrays (CLUSTER 2012 reproduction)");
    println!();
    println!("commands:");
    println!("  design   --devices N [--copies C]          show a design and its guarantees");
    println!("  generate --blocks B --interval-ms T --total N [--pool P] [--seed S]");
    println!("                                              emit a synthetic ASCII trace");
    println!("  analyze  --trace FILE --devices N [--copies C] [--interval-ms T]");
    println!("           [--epsilon E] [--mapping fim|modulo|roundrobin] [--reporting-ms R]");
    println!("                                              run the QoS pipeline on a trace");
    println!("  serve    --devices N [--copies C] [--accesses M] [--workers W]");
    println!("           [--submitters S] [--windows K] [--epsilon E] [--queue-depth D]");
    println!("           [--write-ratio F] [--gc OP]        make F of the trace writes (fanned");
    println!("           [--burst HEIGHT@START+LEN]         to all replicas), model FTL GC at");
    println!("                                              over-provisioning OP, and spike the");
    println!("                                              rate to HEIGHT for LEN windows");
    println!("           [--mode flow|eft] [--seed S]      replay a synthetic trace through");
    println!("           [--fault-schedule \"fail:D@W,...\"]  the concurrent serving engine,");
    println!("           [--no-hedge]                       optionally failing/recovering or");
    println!("           [--wal-dir DIR] [--wal-batch N]    silently slowing (slow:D@W[xF],");
    println!("           [--wal-snapshot K] [--recover]     restore:D@W) devices at scripted");
    println!("                                              windows; --no-hedge disables");
    println!("                                              speculative re-dispatch. --wal-dir");
    println!("                                              logs admissions durably before the");
    println!("                                              ack; --recover replays that log");
    println!("                                              after a crash and resumes the run");
    println!("  cluster  --arrays N [--devices D] [--copies C] [--accesses M] [--workers W]");
    println!("           [--submitters S] [--windows K] [--epsilon E] [--queue-depth Q]");
    println!("           [--mode flow|eft] [--seed S] [--reserve R]");
    println!("           [--pin \"TENANT:ARRAY,...\"] [--burst \"TENANT:RATE,...\"]");
    println!("           [--fault-schedules \"ARRAY:SPEC;ARRAY:SPEC\"]");
    println!("           [--chaos-schedule \"kill:A@T,restore:A@T,slow:A@T[xF]\"]");
    println!("           [--metrics-addr HOST:PORT] [--linger-ms MS]");
    println!("           [--no-rebalance] [--no-hedge]");
    println!("                                              run N arrays as one fleet behind");
    println!("                                              the consistent-hash routing tier:");
    println!("                                              tenants shard across arrays, the");
    println!("                                              control loop migrates them off");
    println!("                                              saturated arrays (--burst overdrives");
    println!("                                              a tenant, --pin forces placement to");
    println!("                                              provoke skew), and the cluster");
    println!("                                              conservation audit must close.");
    println!("                                              --chaos-schedule kills/restores/");
    println!("                                              slows whole arrays at scripted");
    println!("                                              ticks; dead arrays are detected");
    println!("                                              and evacuated onto survivors.");
    println!("                                              --metrics-addr serves Prometheus");
    println!("                                              text format; --linger-ms keeps it");
    println!("                                              up after the run for scrapers.");
}

type Options = HashMap<String, String>;

/// Options that are bare flags: present-or-absent, no value.
const FLAG_KEYS: &[&str] = &["no-hedge", "no-rebalance", "recover"];

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, found '{}'", args[i]))?;
        if FLAG_KEYS.contains(&key) {
            out.insert(key.to_string(), String::new());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?
            .clone();
        out.insert(key.to_string(), value);
        i += 2;
    }
    Ok(out)
}

fn get_num<T: std::str::FromStr>(opts: &Options, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{v}'")),
    }
}

fn require_num<T: std::str::FromStr>(opts: &Options, key: &str) -> Result<T, String> {
    let v = opts
        .get(key)
        .ok_or_else(|| format!("--{key} is required"))?;
    v.parse()
        .map_err(|_| format!("--{key}: cannot parse '{v}'"))
}

fn cmd_design(opts: &Options) -> Result<(), String> {
    let devices: usize = require_num(opts, "devices")?;
    let copies: usize = get_num(opts, "copies", 3)?;
    let design = DesignCatalog
        .find(devices, copies)
        .map_err(|e| e.to_string())?;
    design.verify().map_err(|e| e.to_string())?;
    println!(
        "({devices},{copies},1) design: {} blocks, replication number {}",
        design.num_blocks(),
        design.replication_number()
    );
    let g = RetrievalGuarantee::of(&design);
    println!("rotation-expanded buckets: {}", g.supported_buckets());
    println!("guarantees:");
    for m in 1..=4 {
        println!(
            "  any {:>4} buckets in {m} access(es)  (interval ≥ {:.3} ms on calibrated flash)",
            g.buckets_in(m),
            m as f64 * 0.132507
        );
    }
    println!("blocks:");
    for (i, b) in design.blocks().iter().enumerate() {
        let cells: Vec<String> = b.iter().map(std::string::ToString::to_string).collect();
        println!("  {i:>3}: ({})", cells.join(","));
    }
    Ok(())
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    let blocks: usize = require_num(opts, "blocks")?;
    let interval_ms: f64 = require_num(opts, "interval-ms")?;
    let total: usize = require_num(opts, "total")?;
    let pool: u64 = get_num(opts, "pool", 36)?;
    let seed: u64 = get_num(opts, "seed", 0x5EED)?;
    let cfg = SyntheticConfig {
        blocks_per_interval: blocks,
        interval_ns: (interval_ms * 1e6) as u64,
        total_requests: total,
        block_pool: pool,
        seed,
    };
    print!("{}", ascii::emit(&cfg.generate()));
    Ok(())
}

fn cmd_analyze(opts: &Options) -> Result<(), String> {
    let path = opts.get("trace").ok_or("--trace is required")?;
    let devices: usize = require_num(opts, "devices")?;
    let copies: usize = get_num(opts, "copies", 3)?;
    let interval_ms: f64 = get_num(opts, "interval-ms", 0.133)?;
    let epsilon: f64 = get_num(opts, "epsilon", 0.0)?;
    let reporting_ms: f64 = get_num(opts, "reporting-ms", 100.0)?;
    let mapping = match opts.get("mapping").map(String::as_str) {
        None | Some("fim") => MappingStrategy::Fim,
        Some("modulo") => MappingStrategy::Modulo,
        Some("roundrobin") => MappingStrategy::RoundRobin,
        Some(other) => return Err(format!("--mapping: unknown strategy '{other}'")),
    };

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = ascii::parse(&text, path.clone(), devices, (reporting_ms * 1e6) as u64)
        .map_err(|e| e.to_string())?;
    println!(
        "trace: {} requests, {} reporting intervals of {reporting_ms} ms",
        trace.len(),
        trace.num_intervals()
    );

    let design = DesignCatalog
        .find(devices, copies)
        .map_err(|e| e.to_string())?;
    let config = QosConfig {
        scheme: flash_qos::decluster::DesignTheoretic::new(design),
        accesses: 1,
        interval_ns: (interval_ms * 1e6) as u64,
        epsilon,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    };
    config.validate().map_err(|e| e.to_string())?;
    let limit = config.request_limit();
    let pipeline = QosPipeline::new(config).with_mapping(mapping);

    let qos = pipeline.run_online(&trace);
    let orig = pipeline.run_original(&trace);

    println!("\nQoS guarantee: {limit} requests per {interval_ms} ms interval\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>11}",
        "interval",
        "requests",
        "qos avg ms",
        "qos max ms",
        "orig avg ms",
        "orig max ms",
        "% delayed"
    );
    for i in 0..trace.num_intervals() {
        println!(
            "{:<10} {:>10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>10.1}%",
            i,
            qos.intervals.requests[i],
            qos.intervals.response[i].mean_ms(),
            qos.intervals.response[i].max_ms(),
            orig.intervals.response[i].mean_ms(),
            orig.intervals.response[i].max_ms(),
            qos.intervals.delayed_pct(i),
        );
    }
    println!(
        "\ntotals: qos max {:.6} ms | original max {:.6} ms | {:.2}% delayed ({:.3} ms avg delay)",
        qos.total_response.max_ms(),
        orig.total_response.max_ms(),
        qos.delayed_pct(),
        qos.avg_delay_ms()
    );
    if !qos.matched_fraction.is_empty() {
        println!(
            "FIM re-match average: {:.1}%",
            100.0 * qos.avg_matched_fraction()
        );
    }
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    use flash_qos::flashsim::time::BASE_INTERVAL_NS;

    let devices: usize = require_num(opts, "devices")?;
    let copies: usize = get_num(opts, "copies", 3)?;
    let accesses: usize = get_num(opts, "accesses", 1)?;
    let workers: usize = get_num(opts, "workers", 4)?;
    let submitters: usize = get_num(opts, "submitters", 3)?;
    let windows: u64 = get_num(opts, "windows", 500)?;
    let epsilon: f64 = get_num(opts, "epsilon", 0.0)?;
    let queue_depth: usize = get_num(opts, "queue-depth", 64)?;
    let seed: u64 = get_num(opts, "seed", 0x5EED)?;
    let mode = match opts.get("mode").map(String::as_str) {
        None | Some("flow") => AssignmentMode::OptimalFlow,
        Some("eft") => AssignmentMode::Eft,
        Some(other) => return Err(format!("--mode: unknown mode '{other}' (flow|eft)")),
    };
    let hedging = !opts.contains_key("no-hedge");
    let write_ratio: f64 = get_num(opts, "write-ratio", 0.0)?;
    if !(0.0..=1.0).contains(&write_ratio) {
        return Err("--write-ratio must be in 0.0..=1.0".into());
    }
    // `--gc OP` turns on the FTL write/GC model with the default geometry
    // at over-provisioning OP; low OP makes GC storms easy to provoke.
    let gc_overprovision: Option<f64> = match opts.get("gc") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--gc: cannot parse over-provisioning '{v}'"))?,
        ),
    };
    // `--burst HEIGHT@START+LEN`: every tenant's request rate jumps to
    // HEIGHT blocks per window for LEN windows starting at window START —
    // a flash crowd on top of the reserved baseline.
    let burst: Option<(usize, u64, u64)> = match opts.get("burst") {
        None => None,
        Some(spec) => {
            let parse = || -> Option<(usize, u64, u64)> {
                let (height, rest) = spec.split_once('@')?;
                let (start, len) = rest.split_once('+')?;
                Some((
                    height.trim().parse().ok()?,
                    start.trim().parse().ok()?,
                    len.trim().parse().ok()?,
                ))
            };
            Some(
                parse()
                    .ok_or_else(|| format!("--burst: expected HEIGHT@START+LEN, found '{spec}'"))?,
            )
        }
    };
    let wal_dir = opts.get("wal-dir");
    let recover = opts.contains_key("recover");
    let wal_batch: u64 = get_num(opts, "wal-batch", 1)?;
    let wal_snapshot: u64 = get_num(opts, "wal-snapshot", 64)?;
    if recover && wal_dir.is_none() {
        return Err("--recover needs --wal-dir (the log to replay)".into());
    }
    let fault_schedule = match opts.get("fault-schedule") {
        None => FaultSchedule::new(),
        Some(spec) => FaultSchedule::parse(spec).map_err(|e| format!("--fault-schedule: {e}"))?,
    };
    if workers == 0 || submitters == 0 || windows == 0 {
        return Err("--workers, --submitters and --windows must be positive".into());
    }
    // Typed parse-time validation against the array geometry and the run
    // horizon: a schedule naming device 12 of 9 or window 600 of 500 is a
    // spec error, reported before the server spins up.
    fault_schedule
        .validate_for(devices, Some(windows))
        .map_err(|e| format!("--fault-schedule: {e}"))?;

    let design = DesignCatalog
        .find(devices, copies)
        .map_err(|e| e.to_string())?;
    let qos = QosConfig {
        scheme: flash_qos::decluster::DesignTheoretic::new(design),
        accesses,
        interval_ns: accesses as u64 * BASE_INTERVAL_NS,
        epsilon,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    };
    qos.validate().map_err(|e| e.to_string())?;
    let limit = qos.request_limit();
    let pool = AllocationScheme::num_buckets(&qos.scheme) as u64;
    let interval_ns = qos.interval_ns;
    let submitters = submitters.min(limit);

    let scripted_faults = !fault_schedule.is_empty();
    let scripted_slow = fault_schedule
        .events()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::Slow(_)));
    let mut cfg = ServerConfig::new(qos)
        .with_workers(workers)
        .with_queue_depth(queue_depth)
        .with_assignment(mode)
        .with_fault_schedule(fault_schedule)
        .with_hedging(hedging);
    if let Some(op) = gc_overprovision {
        // A deliberately small per-device FTL (128 pages) so a few hundred
        // windows of sustained writes actually cycle the free-block pool
        // and trigger GC; the default geometry would need millions of
        // programs before the first erase.
        let geometry = FtlGeometry {
            dies: 1,
            blocks_per_die: 16,
            pages_per_block: 8,
            overprovision: op,
        };
        cfg = cfg.with_gc_model(GcConfig::new(geometry));
    }
    if let Some((height, _, _)) = burst {
        if height as u64 > pool {
            return Err(format!(
                "--burst: height {height} exceeds the {pool}-bucket pool"
            ));
        }
    }
    if let Some(dir) = wal_dir {
        cfg = cfg
            .with_wal(dir)
            .with_wal_fsync_batch(wal_batch)
            .with_wal_snapshot_interval(wal_snapshot);
    }
    let server = if recover {
        QosServer::recover(cfg)?
    } else {
        QosServer::new(cfg)?
    };
    // Recovery resumes the window sequence: the replayed log already
    // sealed `windows_sealed` windows, so fresh traffic starts there.
    let base_window = if recover {
        let m = server.metrics();
        println!(
            "recovered WAL: {} records replayed in {:.1} ms — {} admissions \
             re-parked, {} charged as crash losses, resuming at window {}",
            m.wal_replay_records,
            m.wal_replay_duration_ns as f64 / 1e6,
            m.recovered_admissions,
            m.recovered_lost,
            m.windows_sealed,
        );
        m.windows_sealed
    } else {
        0
    };

    // Split the S(M) budget across one tenant per submitter thread and give
    // each tenant its own synthetic timestamped trace at exactly its
    // reserved rate. Tenants the recovered log already registered live are
    // kept as-is rather than re-registered.
    let mut plan = Vec::with_capacity(submitters);
    for s in 0..submitters {
        let reserved = limit / submitters + usize::from(s < limit % submitters);
        plan.push((s as u64 + 1, reserved));
    }
    for &(tenant, reserved) in &plan {
        if recover && server.tenant(tenant).is_some() {
            continue;
        }
        server
            .register(tenant, reserved, OverloadPolicy::Delay)
            .map_err(|e| e.to_string())?;
    }
    println!(
        "serving {windows} windows of {:.3} ms on a ({devices},{copies},1) array: \
         S({accesses}) = {limit}, {} tenants, {} workers, {:?} assignment",
        interval_ns as f64 / 1e6,
        plan.len(),
        workers.min(devices),
        mode,
    );

    let wall = std::time::Instant::now();
    let threads: Vec<_> = plan
        .iter()
        .map(|&(tenant, reserved)| {
            let mut handle = server.handle();
            let trace = match burst {
                Some((height, start, len)) => BurstConfig {
                    base_blocks_per_interval: reserved,
                    burst_blocks_per_interval: height,
                    burst_start_interval: start,
                    burst_intervals: len,
                    total_intervals: windows,
                    interval_ns,
                    block_pool: pool,
                    write_fraction: write_ratio,
                    seed: seed ^ tenant,
                }
                .generate(),
                None => {
                    let base = SyntheticConfig {
                        blocks_per_interval: reserved,
                        interval_ns,
                        total_requests: reserved * windows as usize,
                        block_pool: pool,
                        seed: seed ^ tenant,
                    }
                    .generate();
                    if write_ratio > 0.0 {
                        rw::with_write_fraction(&base, write_ratio, seed ^ tenant)
                    } else {
                        base
                    }
                }
            };
            std::thread::spawn(move || {
                for r in &trace.records {
                    handle.submit_op(
                        tenant,
                        r.lbn,
                        r.arrival_ns + base_window * interval_ns,
                        r.op,
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join()
            .map_err(|_| "submitter thread panicked".to_string())?;
    }
    let m = server.finish();
    let wall = wall.elapsed();

    println!();
    println!(
        "served {} requests in {:.1} ms wall clock ({:.0} req/s)",
        m.completed(),
        wall.as_secs_f64() * 1e3,
        m.completed() as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "admitted {} (overflow {}, delayed {}), rejected {}, windows sealed {}",
        m.admitted_total(),
        m.overflow,
        m.delayed,
        m.rejected,
        m.windows_sealed,
    );
    println!(
        "simulated latency: p50 ≤ {:.4} ms, p99 ≤ {:.4} ms, p99.9 ≤ {:.4} ms, \
         max {:.4} ms, mean {:.4} ms",
        m.p50_latency_ns as f64 / 1e6,
        m.p99_latency_ns as f64 / 1e6,
        m.p999_latency_ns as f64 / 1e6,
        m.max_latency_ns as f64 / 1e6,
        m.mean_latency_ns / 1e6,
    );
    println!(
        "busiest window: {} guaranteed (limit {limit}), {} total",
        m.max_window_guaranteed, m.max_window_total,
    );
    println!(
        "\n{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "tenant", "reserved", "admitted", "delayed", "rejected", "served", "violations"
    );
    for t in &m.tenants {
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
            t.tenant,
            t.reserved,
            t.admitted + t.overflow,
            t.delayed,
            t.rejected,
            t.served,
            t.violations,
        );
    }
    println!(
        "\ndeadline audit: {} violations total, {} among guaranteed admissions {}",
        m.deadline_violations,
        m.guaranteed_violations,
        if m.guaranteed_violations == 0 {
            "✓"
        } else {
            "✗ GUARANTEE BROKEN"
        },
    );
    if scripted_faults || m.degraded_windows > 0 {
        println!(
            "fault audit: {} degraded windows, {} re-routed at admission, \
             {} re-dispatched at seal ({} overloaded), {} unavailable-rejected, {} lost {}",
            m.degraded_windows,
            m.fault_reroutes,
            m.fault_redispatches,
            m.fault_overloads,
            m.fault_rejected,
            m.fault_lost,
            if m.fault_lost == 0 {
                "✓"
            } else {
                "✗ REQUESTS LOST"
            },
        );
    }
    if scripted_faults || m.slow_detected > 0 || m.hedges_issued > 0 {
        println!(
            "fail-slow audit: {} slow verdicts ({} suspects, {} recoveries), \
             {} hedges issued / {} won / {} cancelled, {} retries",
            m.slow_detected,
            m.health_suspects,
            m.health_recoveries,
            m.hedges_issued,
            m.hedges_won,
            m.hedges_cancelled,
            m.retries,
        );
    }
    if write_ratio > 0.0 || m.write_settled + m.write_lost > 0 {
        println!(
            "write audit: {} writes settled on all replicas, {} lost a replica past retries {}",
            m.write_settled,
            m.write_lost,
            if m.write_lost == 0 {
                "✓"
            } else {
                "✗ COPIES LOST"
            },
        );
    }
    if gc_overprovision.is_some() || m.gc_host_pages > 0 {
        println!(
            "gc audit: {} host pages + {} gc pages (write-amp {:.3}), {} relocated, {} erases",
            m.gc_host_pages,
            m.gc_pages,
            m.write_amplification(),
            m.gc_relocated,
            m.gc_erases,
        );
    }
    let read_compliance = if m.served == 0 {
        100.0
    } else {
        100.0 * (1.0 - m.guaranteed_violations as f64 / m.served as f64)
    };
    println!(
        "read compliance: {read_compliance:.2}% of guaranteed reads met their deadline {}",
        if read_compliance >= 99.0 {
            "✓"
        } else {
            "✗"
        },
    );
    let conserved = m.hedges_won == m.hedges_cancelled && m.settled() == m.admitted_total();
    println!(
        "conservation: served {} + write_settled {} + lost {} + cancelled primaries {} \
         + write_lost {} = admitted {} {}",
        m.served,
        m.write_settled,
        m.fault_lost,
        m.hedges_cancelled,
        m.write_lost,
        m.admitted_total(),
        if conserved {
            "✓"
        } else {
            "✗ ACCOUNTING BROKEN"
        },
    );
    // Fail-stop faults are masked by reroute/re-dispatch, so any guaranteed
    // violation is a bug. A scripted *silent* slowdown is different:
    // admission is blind until the scorer convicts, so pre-detection
    // violations are the modeled cost, reported above rather than fatal.
    // Like a silent slowdown, GC interference degrades service behind
    // admission's back: pre-detection read misses under a GC storm are the
    // modeled cost (reported above), not a fatal bug.
    if m.guaranteed_violations != 0 && !scripted_slow && gc_overprovision.is_none() && !recover {
        return Err("deterministic guarantee violated".into());
    }
    // A recovered run legitimately carries crash losses (admissions the
    // pre-crash process sealed but never settled); the conservation check
    // above still audits them exactly.
    if m.fault_lost != 0 && !recover {
        return Err("admitted requests lost to device failures".into());
    }
    if !conserved {
        return Err("completion accounting does not balance".into());
    }
    Ok(())
}

/// Parse `"KEY:VALUE,KEY:VALUE"` pair lists (`--pin`, `--burst`).
fn parse_pairs<K, V>(spec: &str, what: &str) -> Result<Vec<(K, V)>, String>
where
    K: std::str::FromStr,
    V: std::str::FromStr,
{
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|pair| {
            let (k, v) = pair
                .split_once(':')
                .ok_or_else(|| format!("--{what}: expected KEY:VALUE, found '{pair}'"))?;
            let k = k
                .trim()
                .parse()
                .map_err(|_| format!("--{what}: cannot parse '{k}'"))?;
            let v = v
                .trim()
                .parse()
                .map_err(|_| format!("--{what}: cannot parse '{v}'"))?;
            Ok((k, v))
        })
        .collect()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[allow(clippy::too_many_lines)]
fn cmd_cluster(opts: &Options) -> Result<(), String> {
    use flash_qos::cluster::{new_page, render};
    use flash_qos::flashsim::time::BASE_INTERVAL_NS;

    let arrays: usize = get_num(opts, "arrays", 2)?;
    let devices: usize = get_num(opts, "devices", 9)?;
    let copies: usize = get_num(opts, "copies", 3)?;
    let accesses: usize = get_num(opts, "accesses", 1)?;
    let workers: usize = get_num(opts, "workers", 4)?;
    let submitters: usize = get_num(opts, "submitters", 2 * arrays.max(1))?;
    let windows: u64 = get_num(opts, "windows", 200)?;
    let epsilon: f64 = get_num(opts, "epsilon", 0.0)?;
    let queue_depth: usize = get_num(opts, "queue-depth", 64)?;
    let seed: u64 = get_num(opts, "seed", 0x5EED)?;
    let linger_ms: u64 = get_num(opts, "linger-ms", 0)?;
    let mode = match opts.get("mode").map(String::as_str) {
        None | Some("flow") => AssignmentMode::OptimalFlow,
        Some("eft") => AssignmentMode::Eft,
        Some(other) => return Err(format!("--mode: unknown mode '{other}' (flow|eft)")),
    };
    let rebalance = !opts.contains_key("no-rebalance");
    let hedging = !opts.contains_key("no-hedge");
    if arrays == 0 || workers == 0 || submitters == 0 || windows == 0 {
        return Err("--arrays, --workers, --submitters and --windows must be positive".into());
    }
    // Whole-array chaos: `kill:A@T,restore:A@T,slow:A@T[xF]` at control
    // ticks (one tick per window). Validated against the fleet size by
    // `ClusterConfig::validate` inside `QosCluster::new`.
    let chaos = match opts.get("chaos-schedule") {
        None => ClusterFaultSchedule::new(),
        Some(spec) => {
            ClusterFaultSchedule::parse(spec).map_err(|e| format!("--chaos-schedule: {e}"))?
        }
    };

    let pins: Vec<(u64, usize)> = match opts.get("pin") {
        None => Vec::new(),
        Some(spec) => parse_pairs(spec, "pin")?,
    };
    let bursts: HashMap<u64, u64> = match opts.get("burst") {
        None => HashMap::new(),
        Some(spec) => parse_pairs(spec, "burst")?.into_iter().collect(),
    };
    // Per-array fault schedules: `"0:fail:3@10,recover:3@20;1:slow:2@5"`.
    let mut schedules: Vec<FaultSchedule> = vec![FaultSchedule::new(); arrays];
    if let Some(spec) = opts.get("fault-schedules") {
        for entry in spec.split(';').filter(|s| !s.trim().is_empty()) {
            let (idx, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("--fault-schedules: expected ARRAY:SPEC in '{entry}'"))?;
            let idx: usize = idx
                .trim()
                .parse()
                .map_err(|_| format!("--fault-schedules: bad array index '{idx}'"))?;
            if idx >= arrays {
                return Err(format!("--fault-schedules: array {idx} of {arrays}"));
            }
            let schedule =
                FaultSchedule::parse(rest).map_err(|e| format!("--fault-schedules: {e}"))?;
            schedule
                .validate_for(devices, Some(windows))
                .map_err(|e| format!("--fault-schedules: {e}"))?;
            schedules[idx] = schedule;
        }
    }

    let design = DesignCatalog
        .find(devices, copies)
        .map_err(|e| e.to_string())?;
    let qos = QosConfig {
        scheme: flash_qos::decluster::DesignTheoretic::new(design),
        accesses,
        interval_ns: accesses as u64 * BASE_INTERVAL_NS,
        epsilon,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    };
    qos.validate().map_err(|e| e.to_string())?;
    let limit = qos.request_limit();
    let pool = AllocationScheme::num_buckets(&qos.scheme) as u64;
    let interval_ns = qos.interval_ns;

    let array_configs: Vec<ServerConfig> = schedules
        .into_iter()
        .map(|schedule| {
            ServerConfig::new(qos.clone())
                .with_workers(workers)
                .with_queue_depth(queue_depth)
                .with_assignment(mode)
                .with_fault_schedule(schedule)
                .with_hedging(hedging)
        })
        .collect();
    let cluster = QosCluster::new(
        ClusterConfig::new(array_configs)
            .with_rebalance(rebalance)
            .with_chaos(chaos),
    )
    .map_err(|e: ClusterError| e.to_string())?;

    // Uniform reservations sized so every tenant fits even in the worst
    // ring placement: ceil(submitters / arrays) tenants per array.
    let tenants_per_array = submitters.div_ceil(arrays);
    let reserve: usize = get_num(opts, "reserve", (limit / tenants_per_array).max(1))?;
    let pinned: HashMap<u64, usize> = pins.iter().copied().collect();
    for t in 1..=submitters as u64 {
        match pinned.get(&t) {
            Some(&array) => {
                if array >= arrays {
                    return Err(format!("--pin: array {array} of {arrays}"));
                }
                cluster
                    .register_pinned(array, t, reserve, OverloadPolicy::Delay)
                    .map_err(|e| e.to_string())?;
            }
            None => {
                cluster
                    .register_tenant(t, reserve, OverloadPolicy::Delay)
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    println!(
        "cluster: {arrays} × ({devices},{copies},1) arrays, S({accesses}) = {limit} each, \
         {submitters} tenants reserving {reserve}, {windows} windows of {:.3} ms, \
         rebalance {}",
        interval_ns as f64 / 1e6,
        if rebalance { "on" } else { "off" },
    );
    for t in 1..=submitters as u64 {
        let home = cluster.route_of(t).ok_or("tenant lost by the router")?;
        let rate = bursts.get(&t).copied().unwrap_or(reserve as u64);
        println!("  tenant {t}: array {home}, {rate} req/window");
    }

    // Prometheus endpoint: refreshed at window cadence, served from a
    // background thread for the life of the run (plus --linger-ms).
    let page = new_page();
    let exporter = match opts.get("metrics-addr") {
        None => None,
        Some(addr) => {
            let e = MetricsExporter::bind(addr, page.clone())?;
            println!("metrics: http://{}/metrics", e.local_addr());
            Some(e)
        }
    };

    let wall = std::time::Instant::now();
    let mut handle = cluster.handle();
    for w in 0..windows {
        let mut i = 0u64;
        for t in 1..=submitters as u64 {
            let rate = bursts.get(&t).copied().unwrap_or(reserve as u64);
            for _ in 0..rate {
                let lbn = splitmix64(seed ^ (w << 16) ^ (t << 8) ^ i) % pool;
                handle.submit(t, lbn, w * interval_ns + i * 1_000);
                i += 1;
            }
        }
        if let Some(event) = cluster.control_tick() {
            println!(
                "window {w}: rebalanced tenant {} array {} → {} (reservation {})",
                event.tenant, event.from, event.to, event.reserved,
            );
        }
        if exporter.is_some() {
            *page.lock() = render(&cluster.metrics());
        }
    }
    drop(handle);
    let m = cluster.finish(); // prints the cluster audit line
    let wall = wall.elapsed();
    *page.lock() = render(&m);

    println!();
    println!(
        "fleet: {} completed in {:.1} ms wall clock ({:.0} req/s aggregate)",
        m.completed(),
        wall.as_secs_f64() * 1e3,
        m.completed() as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "admitted {} / rejected {} / unrouted {}, utilization spread {:.3}, \
         p99 ≤ {:.4} ms, p99.9 ≤ {:.4} ms",
        m.admitted_total(),
        m.rejected(),
        m.unrouted,
        m.utilization_spread(),
        m.p99_latency_ns() as f64 / 1e6,
        m.p999_latency_ns() as f64 / 1e6,
    );
    println!(
        "\n{:<7} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "array", "routed", "admitted", "rejected", "served", "fault_lost", "sealed"
    );
    for (i, s) in m.arrays.iter().enumerate() {
        println!(
            "{:<7} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
            i,
            m.routed[i],
            s.admitted_total(),
            s.rejected,
            s.served,
            s.fault_lost,
            s.windows_sealed,
        );
    }
    for e in &m.events {
        println!(
            "migration @tick {}: tenant {} array {} → {} (reservation {})",
            e.tick, e.tenant, e.from, e.to, e.reserved,
        );
    }
    for ev in &m.evacuations {
        println!(
            "evacuation @tick {}: array {} dead, {} tenant(s) moved, {} unplaced",
            ev.tick,
            ev.array,
            ev.moved.len(),
            ev.unplaced.len(),
        );
    }
    if m.evacuation_lost != 0 || m.health_verdicts_dead != 0 {
        println!(
            "failures: {} stranded admissions, {} dead verdicts, {} slow verdicts, \
             {} transport refusals",
            m.evacuation_lost,
            m.health_verdicts_dead,
            m.health_verdicts_slow,
            m.refused_unavailable,
        );
    }

    if linger_ms > 0 && exporter.is_some() {
        println!("lingering {linger_ms} ms for scrapers…");
        std::thread::sleep(std::time::Duration::from_millis(linger_ms));
    }
    drop(exporter);

    if m.deadline_violations() != 0 {
        println!("deadline audit: {} violations ✗", m.deadline_violations());
    }
    if !m.conserved() {
        return Err("cluster conservation law violated".into());
    }
    Ok(())
}
