//! # flash-qos
//!
//! A from-scratch reproduction of **"Replication Based QoS Framework for
//! Flash Arrays"** (Altiparmak & Tosun, IEEE CLUSTER 2012): deterministic
//! and statistical response-time guarantees for flash storage arrays via
//! design-theoretic replicated declustering, max-flow optimal retrieval,
//! frequent-itemset block matching and online scheduling — plus every
//! substrate the paper depends on (an event-driven flash array simulator
//! standing in for DiskSim, the combinatorial design library, the RAID
//! baselines, and statistical workload models standing in for the SNIA
//! Exchange/TPC-E traces).
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`designs`] | `fqos-designs` | `(N, c, 1)` block designs, Steiner constructions, rotations, the `S(M)` guarantee algebra |
//! | [`maxflow`] | `fqos-maxflow` | Dinic/Edmonds–Karp, the optimal-retrieval network, incremental augmentation |
//! | [`flashsim`] | `fqos-flashsim` | event-driven flash array simulator (calibrated + page-level models, FTL, GC) |
//! | [`traces`] | `fqos-traces` | DiskSim ASCII traces, the synthetic generator, Exchange/TPC-E workload models |
//! | [`decluster`] | `fqos-decluster` | allocation schemes (design-theoretic, RAID-1 × 2, RDA, partitioned, periodic, orthogonal) and retrieval algorithms |
//! | [`fim`] | `fqos-fim` | Apriori / Eclat / FP-Growth miners and the design-block matcher |
//! | [`qos`] | `fqos-core` | admission control, online + interval schedulers, the end-to-end pipeline |
//! | [`server`] | `fqos-server` | concurrent multi-tenant serving engine: thread-safe admission, interval-aligned dispatch, worker pool, metrics |
//! | [`cluster`] | `fqos-cluster` | multi-array fleet tier: consistent-hash tenant routing, ε-budget rebalancing, cluster conservation audit, Prometheus export |
//!
//! ## Quickstart
//!
//! ```
//! use flash_qos::prelude::*;
//!
//! // A (9,3,1) flash array guaranteeing 5 block reads per 0.133 ms.
//! let config = QosConfig::paper_9_3_1();
//! assert_eq!(config.request_limit(), 5);
//!
//! // Drive it with the paper's synthetic workload (identity block
//! // mapping: the synthetic blocks are already design buckets).
//! let trace = SyntheticConfig::table3(5, config.interval_ns).generate();
//! let report = QosPipeline::new(config)
//!     .with_mapping(MappingStrategy::Modulo)
//!     .run_online(&trace);
//! assert_eq!(report.delayed_pct(), 0.0); // within S(M): nothing delayed
//! ```

pub use fqos_decluster as decluster;
pub use fqos_designs as designs;
pub use fqos_fim as fim;
pub use fqos_flashsim as flashsim;
pub use fqos_maxflow as maxflow;
pub use fqos_traces as traces;

/// The QoS framework itself (re-export of `fqos-core`).
pub use fqos_core as qos;

/// The concurrent online serving engine (re-export of `fqos-server`).
pub use fqos_server as server;

/// The multi-array fleet tier (re-export of `fqos-cluster`).
pub use fqos_cluster as cluster;

/// The most common imports in one place.
pub mod prelude {
    pub use fqos_cluster::{
        ArrayHealth, ClusterConfig, ClusterError, ClusterFaultSchedule, ClusterHandle,
        ClusterHealthParams, ClusterMetrics, EvacuationEvent, MetricsExporter, QosCluster,
        RebalanceEvent,
    };
    pub use fqos_core::{
        AppAdmission, BlockMapping, MappingStrategy, OverloadPolicy, QosConfig, QosPipeline,
        QosReport, StatisticalCounters,
    };
    pub use fqos_decluster::{
        AllocationScheme, DesignTheoretic, Raid1Chained, Raid1Mirrored, RandomDuplicate,
    };
    pub use fqos_designs::{Design, DesignCatalog, RetrievalGuarantee, RotatedDesign};
    pub use fqos_flashsim::{CalibratedSsd, FlashArray, IoRequest, BLOCK_READ_NS};
    pub use fqos_server::{
        AssignmentMode, DeviceHealth, FaultKind, FaultSchedule, FaultSpecError, FtlGeometry,
        GcConfig, IoOp, MetricsSnapshot, QosServer, RejectReason, ServerConfig, SubmitOutcome,
        SubmitterHandle,
    };
    pub use fqos_traces::{models, rw, BurstConfig, SyntheticConfig, Trace, TraceRecord};
}
