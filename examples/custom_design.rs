//! Building a QoS deployment for *your* array: pick a design from the
//! catalog for a target device count or QoS requirement, inspect its
//! guarantees, and verify them empirically with the exact max-flow
//! scheduler.
//!
//! Run with: `cargo run --release --example custom_design`

use flash_qos::decluster::retrieval::max_flow_retrieval;
use flash_qos::decluster::sampling::optimal_retrieval_probabilities;
use flash_qos::prelude::*;

fn main() {
    let catalog = DesignCatalog;

    // 1. From a device count: the smallest constructible (N,3,1) design
    //    with at least 20 devices.
    let n = catalog.next_constructible_devices(20);
    let design = catalog.find(n, 3).expect("catalog design");
    design.verify().expect("design axioms");
    let g = RetrievalGuarantee::of(&design);
    println!(
        "array of {n} devices, 3 copies: {} design blocks, {} buckets with rotations",
        design.num_blocks(),
        g.supported_buckets()
    );
    for m in 1..=4 {
        println!(
            "  any {:>3} buckets retrievable in {m} access(es)",
            g.buckets_in(m)
        );
    }

    // 2. From a QoS requirement: guarantee 14 block reads per interval in
    //    at most 2 accesses.
    let design2 = catalog.for_guarantee(14, 2).expect("feasible requirement");
    println!(
        "\nrequirement '14 blocks in 2 accesses' → ({}, 3, 1) design",
        design2.v()
    );

    // 3. Verify the guarantee empirically on the (9,3,1) paper design:
    //    exhaustively schedule random within-limit bucket sets with the
    //    exact max-flow scheduler.
    let scheme = DesignTheoretic::paper_9_3_1();
    let gg = scheme.guarantee();
    let mut worst = 0;
    let mut state = 7u64;
    for _ in 0..5_000 {
        // 14 distinct buckets = S(2).
        let mut pool: Vec<usize> = (0..scheme.num_buckets()).collect();
        for i in 0..14 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = i + (state >> 33) as usize % (pool.len() - i);
            pool.swap(i, j);
        }
        let reqs: Vec<&[usize]> = pool[..14].iter().map(|&b| scheme.replicas(b)).collect();
        worst = worst.max(max_flow_retrieval(&reqs, 9).accesses);
    }
    println!("\n(9,3,1): worst observed cost for 5 000 random 14-bucket requests: {worst} accesses (guarantee: {})", gg.accesses_for(14));
    assert!(worst <= gg.accesses_for(14));

    // 4. And probabilistically: the P_k table that statistical QoS uses.
    let probs = optimal_retrieval_probabilities(&scheme, 10, 20_000, 1);
    println!("\noptimal-retrieval probabilities (with-replacement draws):");
    for k in 5..=10 {
        println!("  P_{k:<2} = {:.3}", probs.p_k(k));
    }
}
