//! Serve a synthetic multi-tenant workload through the concurrent engine.
//!
//! Three tenants share the paper's (9,3,1) array at `M = 2`
//! (S(2) = 14 block reads per 0.266 ms interval). Each tenant gets its own
//! submitter thread replaying a timestamped synthetic trace — tenant 3
//! deliberately bursts past its reservation to show the Delay policy — and
//! a four-worker pool drives the calibrated device models.
//!
//! Run with: `cargo run --release --example serve_trace`

use flash_qos::prelude::*;
use flash_qos::server::WINDOW_RING;

fn main() {
    let qos = QosConfig::paper_9_3_1().with_accesses(2);
    let limit = qos.request_limit(); // S(2) = 14
    let interval_ns = qos.interval_ns;
    let pool = qos.scheme.num_buckets() as u64;
    let server = QosServer::new(
        ServerConfig::new(qos)
            .with_workers(4)
            .with_queue_depth(32)
            .with_assignment(AssignmentMode::OptimalFlow),
    )
    .expect("valid config");

    // Reservations 7 + 4 + 3 = 14 = S(2): the admission controller is full.
    let plan: &[(u64, usize, usize)] = &[
        (1, 7, 7), // tenant, reservation, actual blocks per interval
        (2, 4, 4),
        (3, 3, 5), // bursts two past its reservation every interval
    ];
    for &(tenant, reserved, _) in plan {
        server
            .register(tenant, reserved, OverloadPolicy::Delay)
            .expect("within S(M)");
    }
    assert_eq!(server.headroom(), 0);

    let windows = 400usize;
    let threads: Vec<_> = plan
        .iter()
        .map(|&(tenant, _, rate)| {
            let mut handle = server.handle();
            let trace = SyntheticConfig {
                blocks_per_interval: rate,
                interval_ns,
                total_requests: rate * windows,
                block_pool: pool,
                seed: 0x5EED ^ tenant,
            }
            .generate();
            std::thread::spawn(move || {
                let mut delayed = 0u64;
                for r in &trace.records {
                    if let SubmitOutcome::Delayed { .. } =
                        handle.submit(tenant, r.lbn, r.arrival_ns)
                    {
                        delayed += 1;
                    }
                }
                (tenant, delayed)
            })
        })
        .collect();
    for t in threads {
        let (tenant, delayed) = t.join().unwrap();
        println!("tenant {tenant}: {delayed} requests pushed to a later interval");
    }

    let m = server.finish();
    println!(
        "\nserved {} requests over {} sealed windows (ring of {WINDOW_RING} slots)",
        m.served, m.windows_sealed
    );
    println!(
        "busiest window carried {} guaranteed requests (S(M) = {limit})",
        m.max_window_guaranteed
    );
    println!(
        "simulated response time: p50 ≤ {:.4} ms, p99 ≤ {:.4} ms, max {:.4} ms",
        m.p50_latency_ns as f64 / 1e6,
        m.p99_latency_ns as f64 / 1e6,
        m.max_latency_ns as f64 / 1e6,
    );
    for t in &m.tenants {
        println!(
            "tenant {}: reserved {}, admitted {}, delayed {}, served {}, violations {}",
            t.tenant, t.reserved, t.admitted, t.delayed, t.served, t.violations
        );
    }

    // The engine's contract: deterministic admissions never miss deadlines.
    assert_eq!(m.guaranteed_violations, 0);
    assert_eq!(m.deadline_violations, 0);
    assert!(m.max_window_guaranteed <= limit as u64);
    assert_eq!(m.served, m.admitted_total());
    println!("\ndeadline audit: zero violations among guaranteed admissions ✓");
}
