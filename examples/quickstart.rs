//! Quickstart: build a (9,3,1) flash array QoS system, drive it with the
//! paper's synthetic workload, and check the deterministic guarantee.
//!
//! Run with: `cargo run --release --example quickstart`

use flash_qos::prelude::*;

fn main() {
    // 1. Pick the design: 9 flash modules, 3 copies per bucket, every
    //    device pair sharing exactly one design block.
    let config = QosConfig::paper_9_3_1();
    println!("design:            ({}, {}, 1)", config.devices(), 3);
    println!("interval T:        {} ms", config.interval_ns as f64 / 1e6);
    println!(
        "guarantee S(M):    any {} blocks retrievable in {} access(es)",
        config.request_limit(),
        config.accesses
    );

    // 2. Application-level admission control (the paper's Table I flow).
    let mut admission = AppAdmission::new(config.request_limit());
    assert!(
        admission.register(1, 2),
        "app 1 admitted (2 blocks/interval)"
    );
    assert!(
        admission.register(2, 2),
        "app 2 admitted (2 blocks/interval)"
    );
    assert!(
        admission.register(3, 1),
        "app 3 admitted (1 block/interval)"
    );
    assert!(
        !admission.register(4, 1),
        "app 4 rejected: the array is full"
    );
    println!(
        "admission:         3 applications admitted, total {} of {} blocks/interval",
        admission.total(),
        admission.limit()
    );

    // 3. Generate the paper's synthetic workload: 5 random blocks at the
    //    start of every 0.133 ms interval, 10 000 requests total.
    let trace = SyntheticConfig::table3(5, config.interval_ns).generate();
    println!(
        "workload:          {} requests over {} intervals",
        trace.len(),
        trace.num_intervals()
    );

    // 4. Run the full QoS pipeline (allocation → admission → retrieval →
    //    flash array simulation).
    let service_ms = config.service_ns as f64 / 1e6;
    let report = QosPipeline::new(config).run_online(&trace);

    // 5. Every request met the deterministic guarantee.
    println!(
        "result:            {} requests, avg response {:.6} ms, max {:.6} ms, {} delayed",
        report.completed(),
        report.total_response.mean_ms(),
        report.total_response.max_ms(),
        report.intervals.delayed.iter().sum::<u64>(),
    );
    assert_eq!(report.total_response.max_ms(), service_ms);
    println!("\nguarantee held: every response equals the 0.132507 ms device read time.");
}
