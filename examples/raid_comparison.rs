//! Comparing replicated allocations under load (the Table III scenario):
//! RAID-1 mirrored, RAID-1 chained and design-theoretic declustering on
//! the same synthetic workload.
//!
//! Run with: `cargo run --release --example raid_comparison`

use flash_qos::prelude::*;

fn main() {
    // 27 random blocks per 0.399 ms interval — the paper's heaviest row.
    let interval_ns = 399_000;
    let trace = SyntheticConfig {
        blocks_per_interval: 27,
        interval_ns,
        total_requests: 10_000,
        block_pool: 36,
        seed: 0x5EED,
    }
    .generate();

    let pipeline = QosPipeline::new(QosConfig::paper_9_3_1().with_accesses(3))
        .with_mapping(MappingStrategy::Modulo);

    println!("27 blocks per 0.399 ms on 9 devices, 3 copies, 10 000 requests\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "avg (ms)", "std (ms)", "max (ms)", "guarantee?"
    );

    let mirrored = pipeline
        .run_interval()
        .run_baseline(&trace, &Raid1Mirrored::paper());
    let chained = pipeline
        .run_interval()
        .run_baseline(&trace, &Raid1Chained::paper());
    let rda = pipeline
        .run_interval()
        .run_baseline(&trace, &RandomDuplicate::new(9, 3, 36, 42));
    let design = pipeline.run_interval().run(&trace);

    for (name, r) in [
        ("RAID-1 mirrored", &mirrored),
        ("RAID-1 chained", &chained),
        ("random duplicate (RDA)", &rda),
        ("design-theoretic (9,3,1)", &design),
    ] {
        let met = r.total_response.max_ns() <= interval_ns;
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>10.3} {:>12}",
            name,
            r.total_response.mean_ms(),
            r.total_response.std_ms(),
            r.total_response.max_ms(),
            if met { "yes" } else { "VIOLATED" }
        );
    }

    println!("\nOnly the design-theoretic allocation (with its admission control and");
    println!("hybrid retrieval) keeps every response inside the 0.399 ms interval;");
    println!("the mirror groups serialize conflicting requests and blow the deadline.");
}
