//! Statistical QoS on an OLTP workload (the paper's TPC-E scenario, §V-E):
//! trade a bounded violation probability ε for fewer delayed requests.
//!
//! Run with: `cargo run --release --example statistical_qos`

use flash_qos::prelude::*;
use flash_qos::traces::models::tpce::TpceConfig;

fn main() {
    // A scaled TPC-E-like workload: 6 parts on 13 volumes with a highly
    // persistent hot set.
    let trace = models::tpce(TpceConfig::default()).generate();
    println!(
        "workload: {} read requests over {} parts on {} volumes\n",
        trace.len(),
        trace.num_intervals(),
        trace.num_devices
    );

    println!(
        "{:<10} {:>11} {:>18} {:>16}",
        "epsilon", "% delayed", "avg response ms", "max response ms"
    );
    for eps in [0.0, 0.001, 0.002, 0.005] {
        let config = QosConfig::paper_13_3_1().with_epsilon(eps);
        let report = QosPipeline::new(config).run_online(&trace);
        println!(
            "{:<10} {:>10.1}% {:>18.4} {:>16.3}",
            format!("{eps:.3}"),
            report.delayed_pct(),
            report.total_response.mean_ms(),
            report.total_response.max_ms(),
        );
    }

    println!("\nε = 0 is the deterministic mode: every served request meets the guarantee");
    println!("exactly, at the cost of delaying conflicting requests. Raising ε admits");
    println!("conflicting requests immediately (they queue briefly), shrinking the");
    println!("delayed fraction while the average response creeps up — the §III-B trade-off.");
}
