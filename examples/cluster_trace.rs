//! A two-array fleet healing a skewed tenant placement.
//!
//! Both arrays are the paper's (9,3,1) design (S(1) = 5 block reads per
//! 0.133 ms window). All three tenants are pinned onto array 0 and tenant
//! 1 overdrives its reservation 2×, so array 0's ε-budget saturates while
//! array 1 idles. The cluster control loop notices the pressure on its
//! first tick, migrates tenant 1 to array 1 with its reservation resized
//! to observed demand, and the fleet finishes with every submission
//! admitted and the cluster conservation law closed.
//!
//! Run with: `cargo run --release --example cluster_trace`

use flash_qos::prelude::*;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn main() {
    let qos = QosConfig::paper_9_3_1(); // S(1) = 5 per array
    let interval_ns = qos.interval_ns;
    let pool = qos.scheme.num_buckets() as u64;
    let cluster = QosCluster::new(ClusterConfig::uniform(
        2,
        &ServerConfig::new(qos).with_workers(4),
    ))
    .expect("valid config");

    // Deliberate skew: everyone starts on array 0 (5 = S(1) reserved),
    // and tenant 1 will submit 4/window against its reservation of 2.
    for &(tenant, reserved) in &[(1u64, 2usize), (2, 2), (3, 1)] {
        cluster
            .register_pinned(0, tenant, reserved, OverloadPolicy::Delay)
            .expect("within S(M) of array 0");
    }
    let demand: &[(u64, u64)] = &[(1, 4), (2, 2), (3, 1)];

    let windows = 200u64;
    let seed = 0x5EED_u64;
    let mut handle = cluster.handle();
    for w in 0..windows {
        let mut i = 0u64;
        for &(tenant, rate) in demand {
            for _ in 0..rate {
                let lbn = splitmix64(seed ^ (w << 8) ^ i) % pool;
                handle.submit(tenant, lbn, w * interval_ns + i * 1_000);
                i += 1;
            }
        }
        // One control tick per window boundary: differentiates each
        // array's pressure counters and migrates when one saturates.
        if let Some(event) = cluster.control_tick() {
            println!(
                "window {w}: tenant {} migrated array {} → {} (reservation {} → {})",
                event.tenant, event.from, event.to, 2, event.reserved,
            );
        }
    }
    drop(handle);

    let m = cluster.finish(); // prints the cluster audit line
    println!();
    for (i, s) in m.arrays.iter().enumerate() {
        println!(
            "array {i}: admitted {:>4}, delayed {:>3}, served {:>4}, {} windows sealed",
            s.admitted_total(),
            s.delayed,
            s.served,
            s.windows_sealed,
        );
    }
    println!(
        "fleet: {} admitted, {} rejected, spread {:.3}, {} rebalance(s)",
        m.admitted_total(),
        m.rejected(),
        m.utilization_spread(),
        m.rebalances,
    );
    assert!(m.conserved(), "cluster conservation law must close");
    assert_eq!(m.rebalances, 1, "the skew resolves in one migration");
    assert_eq!(
        m.admitted_total() + m.rejected(),
        windows * demand.iter().map(|&(_, r)| r).sum::<u64>(),
        "every submission is accounted admitted or rejected"
    );
}
