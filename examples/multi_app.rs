//! Multiple applications sharing one QoS array (the paper's §III-A story,
//! Table I): admission control keeps the aggregate per-interval request
//! size within S(M), and that is exactly what makes the guarantee hold —
//! admit one application too many and delays appear immediately.
//!
//! Run with: `cargo run --release --example multi_app`

use flash_qos::flashsim::IoOp;
use flash_qos::prelude::*;

/// Build a trace where `apps` applications each issue `size` block requests
/// at the start of every interval, from disjoint block ranges.
fn shared_trace(app_sizes: &[usize], intervals: u64, interval_ns: u64) -> Trace {
    let mut records = Vec::new();
    let mut state = 0x0A99u64;
    for w in 0..intervals {
        for (app, &size) in app_sizes.iter().enumerate() {
            for _ in 0..size {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Each app owns a disjoint slice of the block space.
                let lbn = (app as u64) * 1000 + (state >> 33) % 500;
                records.push(TraceRecord {
                    arrival_ns: w * interval_ns,
                    device: 0,
                    lbn,
                    size_bytes: 8192,
                    op: IoOp::Read,
                });
            }
        }
    }
    Trace::new("multi-app", records, 9, interval_ns * intervals.max(1))
}

fn main() {
    let config = QosConfig::paper_9_3_1();
    let limit = config.request_limit();
    println!(
        "array: (9,3,1), S(1) = {limit} block requests per {} ms interval\n",
        config.interval_ns as f64 / 1e6
    );

    // Admission control, §III-A: apps declare per-interval request sizes.
    let mut admission = AppAdmission::new(limit);
    let requested = [(1u64, 2usize), (2, 2), (3, 1), (4, 1)];
    let mut admitted_sizes = Vec::new();
    for (app, size) in requested {
        let ok = admission.register(app, size);
        println!(
            "app {app} requests {size}/interval → {}",
            if ok {
                "ADMITTED"
            } else {
                "rejected (would exceed S)"
            }
        );
        if ok {
            admitted_sizes.push(size);
        }
    }

    // The admitted mix meets the guarantee for every request of every app.
    let trace = shared_trace(&admitted_sizes, 400, config.interval_ns);
    let report = QosPipeline::new(config.clone())
        .with_mapping(MappingStrategy::Modulo)
        .run_online(&trace);
    println!(
        "\nadmitted mix ({} req/interval): {} requests served, max response {:.6} ms, {:.2}% delayed",
        admitted_sizes.iter().sum::<usize>(),
        report.completed(),
        report.total_response.max_ms(),
        report.delayed_pct()
    );

    // What admission prevented: force all four apps in.
    let oversub: Vec<usize> = requested.iter().map(|&(_, s)| s).collect();
    let trace = shared_trace(&oversub, 400, config.interval_ns);
    let report = QosPipeline::new(config)
        .with_mapping(MappingStrategy::Modulo)
        .run_online(&trace);
    println!(
        "over-subscribed mix ({} req/interval): max response still {:.6} ms, but {:.2}% of requests delayed by {:.3} ms on average",
        oversub.iter().sum::<usize>(),
        report.total_response.max_ms(),
        report.delayed_pct(),
        report.avg_delay_ms()
    );
    println!("\nAdmission control is the entire QoS mechanism: within S(M) nothing ever");
    println!("waits; beyond it, the excess must be delayed (or rejected) to protect the rest.");
}
