//! Deterministic QoS for a mail-server workload (the paper's Exchange
//! scenario, §V-D): FIM block matching, online retrieval, delay policy —
//! compared against the trace's original device layout.
//!
//! Run with: `cargo run --release --example exchange_qos`

use flash_qos::prelude::*;
use flash_qos::traces::models::exchange::ExchangeConfig;

fn main() {
    // A scaled Exchange-like workload: 24 diurnal intervals, nine volumes,
    // bursty arrivals (see DESIGN.md for the SNIA-trace substitution).
    let model = models::exchange(ExchangeConfig {
        intervals: 24,
        ..Default::default()
    });
    let trace = model.generate();
    println!(
        "workload: {} read requests over {} intervals on {} volumes",
        trace.len(),
        trace.num_intervals(),
        trace.num_devices
    );

    let pipeline = QosPipeline::new(QosConfig::paper_9_3_1());

    // The original layout: requests go to the volume the trace names.
    let original = pipeline.run_original(&trace);
    // The QoS system: FIM-matched design-theoretic placement + online
    // retrieval + deterministic admission (overload → delayed).
    let qos = pipeline.run_online(&trace);

    println!("\nper-interval response times (ms):");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "interval", "qos avg", "qos max", "orig avg", "orig max", "% delayed"
    );
    for i in 0..trace.num_intervals() {
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>9.1}%",
            i,
            qos.intervals.response[i].mean_ms(),
            qos.intervals.response[i].max_ms(),
            original.intervals.response[i].mean_ms(),
            original.intervals.response[i].max_ms(),
            qos.intervals.delayed_pct(i),
        );
    }

    println!(
        "\nQoS kept every served request at {:.6} ms (the guarantee), delaying {:.1}% of requests by {:.3} ms on average.",
        qos.total_response.max_ms(),
        qos.delayed_pct(),
        qos.avg_delay_ms()
    );
    println!(
        "The original layout averaged {:.3} ms with a worst case of {:.3} ms — no guarantee at all.",
        original.total_response.mean_ms(),
        original.total_response.max_ms()
    );
    println!(
        "FIM matched {:.0}% of each interval's blocks from the previous interval's mining on average.",
        100.0 * qos.avg_matched_fraction()
    );
}
