//! Cross-crate integration tests: the full pipeline on real workload
//! models, guarantee verification, and paper-shape assertions.

use flash_qos::prelude::*;
use flash_qos::traces::models::exchange::ExchangeConfig;
use flash_qos::traces::models::tpce::TpceConfig;

fn mini_exchange() -> Trace {
    models::exchange(ExchangeConfig {
        intervals: 8,
        interval_ns: 100_000_000,
        peak_rate_per_s: 6_000.0,
        seed: 0xE8,
    })
    .generate()
}

fn mini_tpce() -> Trace {
    models::tpce(TpceConfig {
        part_ns: 100_000_000,
        rate_per_s: 15_000.0,
        seed: 0x7C,
    })
    .generate()
}

#[test]
fn deterministic_guarantee_holds_on_exchange_model() {
    let trace = mini_exchange();
    let config = QosConfig::paper_9_3_1();
    let service = config.service_ns;
    let report = QosPipeline::new(config).run_online(&trace);
    // Every single served request finished in exactly one device read.
    assert_eq!(report.completed(), trace.len() as u64);
    assert_eq!(report.total_response.max_ns(), service);
    // Overload exists and is absorbed as bounded delay.
    assert!(
        report.delayed_pct() > 0.0,
        "model should produce some contention"
    );
    assert!(
        report.delayed_pct() < 50.0,
        "delayed = {}",
        report.delayed_pct()
    );
}

#[test]
fn original_layout_violates_where_qos_does_not() {
    let trace = mini_exchange();
    let pipeline = QosPipeline::new(QosConfig::paper_9_3_1());
    let qos = pipeline.run_online(&trace);
    let orig = pipeline.run_original(&trace);
    assert!(orig.total_response.max_ns() > qos.total_response.max_ns() * 2);
    assert!(orig.total_response.mean_ns() > qos.total_response.mean_ns());
}

#[test]
fn tpce_guarantee_holds_on_13_3_1() {
    let trace = mini_tpce();
    let config = QosConfig::paper_13_3_1();
    let service = config.service_ns;
    let report = QosPipeline::new(config).run_online(&trace);
    assert_eq!(report.completed(), trace.len() as u64);
    assert_eq!(report.total_response.max_ns(), service);
}

#[test]
fn fim_rematch_contrast_between_workloads() {
    // Fig. 11 shape: TPC-E's persistent hot set re-matches far more than
    // Exchange's shifting working set.
    let ex = QosPipeline::new(QosConfig::paper_9_3_1())
        .run_online(&mini_exchange())
        .avg_matched_fraction();
    let tp = QosPipeline::new(QosConfig::paper_13_3_1())
        .run_online(&mini_tpce())
        .avg_matched_fraction();
    assert!(tp > 0.5, "tpce re-match = {tp}");
    assert!(ex < tp / 2.0, "exchange {ex} vs tpce {tp}");
}

#[test]
fn table3_shape_holds() {
    // Design meets every deadline; chained violates; mirrored is worst.
    let interval_ns = 3 * 133_000;
    let trace = SyntheticConfig {
        blocks_per_interval: 27,
        interval_ns,
        total_requests: 5_000,
        block_pool: 36,
        seed: 3,
    }
    .generate();
    let pipeline = QosPipeline::new(QosConfig::paper_9_3_1().with_accesses(3))
        .with_mapping(MappingStrategy::Modulo);

    let design = pipeline.run_interval().run(&trace);
    let chained = pipeline
        .run_interval()
        .run_baseline(&trace, &Raid1Chained::paper());
    let mirrored = pipeline
        .run_interval()
        .run_baseline(&trace, &Raid1Mirrored::paper());

    assert!(
        design.total_response.max_ns() <= interval_ns,
        "design violated"
    );
    assert!(
        chained.total_response.max_ns() > interval_ns,
        "chained should violate"
    );
    assert!(
        mirrored.total_response.max_ns() > chained.total_response.max_ns(),
        "mirrored ({}) should be worse than chained ({})",
        mirrored.total_response.max_ns(),
        chained.total_response.max_ns()
    );
    assert!(mirrored.total_response.mean_ns() > design.total_response.mean_ns());
}

#[test]
fn statistical_qos_tradeoff_direction() {
    let trace = mini_tpce();
    let det = QosPipeline::new(QosConfig::paper_13_3_1()).run_online(&trace);
    let stat = QosPipeline::new(QosConfig::paper_13_3_1().with_epsilon(0.05)).run_online(&trace);
    assert!(stat.delayed_pct() <= det.delayed_pct());
    assert!(stat.total_response.mean_ns() >= det.total_response.mean_ns());
    // Statistical mode may exceed the per-request guarantee — that is the
    // contract it sells.
    assert!(stat.total_response.max_ns() >= det.total_response.max_ns());
}

#[test]
fn online_beats_interval_alignment_on_delay() {
    // Fig. 12 / Theorem 1 shape: serving on arrival strictly reduces total
    // delay versus aligning to interval boundaries.
    let trace = mini_exchange();
    let pipeline = QosPipeline::new(QosConfig::paper_9_3_1());
    let online = pipeline.run_online(&trace);
    let aligned = pipeline.run_interval().run(&trace);
    let total_delay = |r: &QosReport| -> u128 { r.intervals.delay_sum_ns.iter().sum() };
    assert!(
        total_delay(&online) < total_delay(&aligned),
        "online {} vs aligned {}",
        total_delay(&online),
        total_delay(&aligned)
    );
}

#[test]
fn trace_roundtrip_through_disksim_ascii() {
    // Cross-crate: model → ASCII emit → parse → identical replay result.
    let trace = mini_tpce();
    let text = flash_qos::traces::ascii::emit(&trace);
    let parsed = flash_qos::traces::ascii::parse(
        &text,
        trace.name.clone(),
        trace.num_devices,
        trace.interval_ns,
    )
    .expect("emitted trace must parse");
    assert_eq!(parsed.len(), trace.len());
    let pipeline = QosPipeline::new(QosConfig::paper_13_3_1());
    let a = pipeline.run_original(&trace);
    let b = pipeline.run_original(&parsed);
    assert_eq!(a.total_response.count(), b.total_response.count());
    assert_eq!(a.total_response.max_ns(), b.total_response.max_ns());
}

#[test]
fn four_copy_design_raises_the_per_interval_limit() {
    // The paper's "adjust the copy and device count" knob: a (13,4,1)
    // design (PG(2,3), found by the difference-family search) guarantees
    // S(1) = 3·1² + 4·1 = 7 blocks per interval instead of 5.
    let design = DesignCatalog.find(13, 4).expect("(13,4,1) exists");
    let scheme = flash_qos::decluster::DesignTheoretic::new(design);
    assert_eq!(scheme.guarantee().buckets_in(1), 7);

    let mut config = QosConfig::paper_9_3_1();
    config.scheme = scheme;
    config.validate().unwrap();
    assert_eq!(config.request_limit(), 7);

    // 7 distinct buckets per window: never delayed.
    let records: Vec<TraceRecord> = (0..20u64)
        .flat_map(|w| {
            (0..7u64).map(move |i| TraceRecord {
                arrival_ns: w * 133_000,
                device: 0,
                lbn: w * 7 + i, // distinct buckets within each window
                size_bytes: 8192,
                op: flash_qos::flashsim::IoOp::Read,
            })
        })
        .collect();
    let trace = Trace::new("c4", records, 13, 10 * 133_000);
    let service = config.service_ns;
    let report = QosPipeline::new(config)
        .with_mapping(MappingStrategy::Modulo)
        .run_online(&trace);
    assert_eq!(report.delayed_pct(), 0.0);
    assert_eq!(report.total_response.max_ns(), service);
}

#[test]
fn reports_are_deterministic() {
    let trace = mini_exchange();
    let a = QosPipeline::new(QosConfig::paper_9_3_1()).run_online(&trace);
    let b = QosPipeline::new(QosConfig::paper_9_3_1()).run_online(&trace);
    assert_eq!(a.completed(), b.completed());
    assert_eq!(a.total_response.max_ns(), b.total_response.max_ns());
    assert_eq!(a.delayed_pct(), b.delayed_pct());
}
