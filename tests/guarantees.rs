//! Property-style integration tests of the paper's central claims, spanning
//! designs + decluster + maxflow + core.

use flash_qos::decluster::retrieval::{design_theoretic_retrieval, max_flow_retrieval};
use flash_qos::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §II-B2: the S(M) guarantee of every catalog design, verified with
    /// the exact scheduler on random distinct bucket sets.
    #[test]
    fn catalog_designs_honor_their_guarantees(
        v_idx in 0usize..4,
        m in 1usize..3,
        seed in any::<u64>(),
    ) {
        let v = [7usize, 9, 13, 15][v_idx];
        let design = DesignCatalog.find(v, 3).unwrap();
        let scheme = DesignTheoretic::new(design);
        let g = scheme.guarantee();
        let k = g.buckets_in(m).min(scheme.num_buckets());
        let mut pool: Vec<usize> = (0..scheme.num_buckets()).collect();
        let mut state = seed | 1;
        for i in 0..k {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let j = i + (state >> 33) as usize % (pool.len() - i);
            pool.swap(i, j);
        }
        let reqs: Vec<&[usize]> = pool[..k].iter().map(|&b| scheme.replicas(b)).collect();
        let exact = max_flow_retrieval(&reqs, v);
        prop_assert!(exact.accesses <= m, "({v},3,1): {k} buckets took {} > {m}", exact.accesses);
    }

    /// §II-B3's comparison: the design-theoretic guarantee S(M) beats the
    /// orthogonal bound ⌈√b⌉ for all loads up to 36 buckets.
    #[test]
    fn design_guarantee_beats_orthogonal_bound(b in 1usize..36) {
        let g = RetrievalGuarantee::new(9, 3);
        let orthogonal_bound = (b as f64).sqrt().ceil() as usize;
        // c = 2 design guarantee from the paper's example: 3/8/15 per 1/2/3.
        let g2 = RetrievalGuarantee::new(9, 2);
        prop_assert!(g.accesses_for(b) <= g2.accesses_for(b));
        if b >= 3 {
            prop_assert!(g2.accesses_for(b) <= orthogonal_bound + 1);
        }
        let _ = orthogonal_bound;
    }

    /// The DTR heuristic is never better than exact max-flow and both are
    /// bounded by the serial worst case, on arbitrary bucket multisets.
    #[test]
    fn retrieval_sandwich(buckets in prop::collection::vec(0usize..36, 1..40)) {
        let scheme = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = buckets.iter().map(|&b| scheme.replicas(b)).collect();
        let fast = design_theoretic_retrieval(&reqs, 9);
        let exact = max_flow_retrieval(&reqs, 9);
        prop_assert!(exact.accesses <= fast.accesses);
        prop_assert!(fast.accesses <= reqs.len());
        prop_assert!(exact.accesses >= reqs.len().div_ceil(9));
    }

    /// End-to-end: the online pipeline's served responses equal the service
    /// time for arbitrary within-pool workloads (deterministic mode).
    #[test]
    fn online_pipeline_responses_equal_service_time(
        reqs in prop::collection::vec((0u64..20, 0u64..36), 1..60),
    ) {
        let records: Vec<TraceRecord> = reqs
            .iter()
            .map(|&(w, lbn)| TraceRecord {
                arrival_ns: w * 133_000,
                device: 0,
                lbn,
                size_bytes: 8192,
                op: flash_qos::flashsim::IoOp::Read,
            })
            .collect();
        let trace = Trace::new("p", records, 9, 10 * 133_000);
        let config = QosConfig::paper_9_3_1();
        let service = config.service_ns;
        let report = QosPipeline::new(config)
            .with_mapping(MappingStrategy::Modulo)
            .run_online(&trace);
        prop_assert_eq!(report.total_response.max_ns(), service);
        prop_assert_eq!(report.total_response.min_ns(), service);
    }
}
