//! Shared helpers for the experiment binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §4 for the index); `all_experiments` runs
//! the full suite. The helpers here provide consistent table formatting and
//! the scaled workload-model configurations shared across experiments.

use fqos_traces::models::exchange::ExchangeConfig;
use fqos_traces::models::tpce::TpceConfig;
use fqos_traces::Trace;

/// A plain-text/markdown table printer.
#[derive(Debug, Default)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TableBuilder {
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Render as a markdown-style table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format milliseconds with 3 decimals.
pub fn ms(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// The Exchange workload at experiment scale (full 96 intervals).
pub fn exchange_trace() -> Trace {
    fqos_traces::models::exchange(ExchangeConfig::default()).generate()
}

/// A reduced Exchange trace for quick runs (16 intervals).
pub fn exchange_trace_quick() -> Trace {
    let cfg = ExchangeConfig {
        intervals: 16,
        ..Default::default()
    };
    fqos_traces::models::exchange(cfg).generate()
}

/// The TPC-E workload at experiment scale (6 parts).
pub fn tpce_trace() -> Trace {
    fqos_traces::models::tpce(TpceConfig::default()).generate()
}

/// Standard experiment banner.
pub fn banner(id: &str, paper_ref: &str, what: &str) {
    println!("\n=== {id} — {paper_ref} ===");
    println!("{what}\n");
}

/// Write experiment data as CSV under `results/` (for external plotting).
/// Silently no-ops if the directory cannot be created (e.g. read-only CI).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    let _ = std::fs::write(dir.join(format!("{name}.csv")), out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TableBuilder::new(&["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.132507), "0.133");
        assert_eq!(pct(7.25), "7.2%");
    }
}
