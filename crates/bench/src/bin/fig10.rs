//! Fig. 10 — statistical QoS with online retrieval: ε sweep.
//!
//! For both workloads, sweep the violation budget ε and report (a/c) the
//! percentage of delayed requests and (b/d) the average response time.
//! Paper shape: delayed % decreases monotonically with ε while average
//! response increases — the statistical QoS trade-off.

use fqos_bench::{banner, exchange_trace, ms, pct, tpce_trace, write_csv, TableBuilder};
use fqos_core::{QosConfig, QosPipeline};
use fqos_traces::Trace;

fn sweep(trace: &Trace, base: &QosConfig, epsilons: &[f64]) {
    println!("--- {} ---", trace.name);
    let mut table = TableBuilder::new(&[
        "epsilon",
        "% delayed",
        "avg response (ms)",
        "max response (ms)",
    ]);
    let mut csv_rows = Vec::new();
    for &eps in epsilons {
        let config = base.clone().with_epsilon(eps);
        let report = QosPipeline::new(config).run_online(trace);
        let row = vec![
            format!("{eps:.4}"),
            pct(report.delayed_pct()),
            format!("{:.4}", report.total_response.mean_ms()),
            ms(report.total_response.max_ms()),
        ];
        table.row(&row);
        csv_rows.push(row);
    }
    table.print();
    write_csv(
        &format!("fig10_{}", trace.name),
        &[
            "epsilon",
            "pct_delayed",
            "avg_response_ms",
            "max_response_ms",
        ],
        &csv_rows,
    );
    println!();
}

fn main() {
    banner(
        "fig10",
        "Fig. 10",
        "Statistical QoS: % delayed (a/c) and average response time (b/d) vs ε",
    );
    let epsilons = [0.0, 0.001, 0.002, 0.0025, 0.003, 0.0035, 0.004, 0.005, 0.01];
    sweep(&exchange_trace(), &QosConfig::paper_9_3_1(), &epsilons);
    sweep(&tpce_trace(), &QosConfig::paper_13_3_1(), &epsilons);
    println!("Expected shape: delayed % decreases with ε; average response increases (ε = 0 is the deterministic line).");
}
