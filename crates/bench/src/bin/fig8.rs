//! Fig. 8 — deterministic QoS with online retrieval on the Exchange
//! workload, (9,3,1) design.
//!
//! Four panels: (a) average and (b) maximum response times of the
//! deterministic QoS vs. the original trace layout, per interval; (c)
//! average delay amount of delayed requests; (d) percentage of delayed
//! requests. Paper anchors: QoS response flat at 0.132507 ms; original
//! above it in every interval; 3–13 % of requests delayed, ≈0.14 ms
//! average delay.

use fqos_bench::{banner, exchange_trace, ms, pct, write_csv, TableBuilder};
use fqos_core::{QosConfig, QosPipeline};

fn main() {
    banner(
        "fig8",
        "Fig. 8",
        "Exchange: deterministic QoS (online retrieval, FIM matching) vs original layout",
    );
    let trace = exchange_trace();
    let pipeline = QosPipeline::new(QosConfig::paper_9_3_1());

    let qos = pipeline.run_online(&trace);
    let orig = pipeline.run_original(&trace);

    let mut table = TableBuilder::new(&[
        "interval",
        "qos avg (ms)",
        "qos max (ms)",
        "orig avg (ms)",
        "orig max (ms)",
        "avg delay (ms)",
        "% delayed",
    ]);
    let mut csv_rows = Vec::new();
    for i in 0..trace.num_intervals() {
        let row = vec![
            i.to_string(),
            ms(qos.intervals.response[i].mean_ms()),
            ms(qos.intervals.response[i].max_ms()),
            ms(orig.intervals.response[i].mean_ms()),
            ms(orig.intervals.response[i].max_ms()),
            ms(qos.intervals.avg_delay_ms(i)),
            pct(qos.intervals.delayed_pct(i)),
        ];
        csv_rows.push(row.clone());
        if i % 4 == 0 {
            // print every 4th interval to keep the table readable
            table.row(&row);
        }
    }
    table.print();
    write_csv(
        "fig8_exchange",
        &[
            "interval",
            "qos_avg_ms",
            "qos_max_ms",
            "orig_avg_ms",
            "orig_max_ms",
            "avg_delay_ms",
            "pct_delayed",
        ],
        &csv_rows,
    );

    println!("\nSummary:");
    println!(
        "  deterministic QoS: every response = {} ms (max {} ms) — guarantee held in all {} intervals",
        ms(qos.total_response.mean_ms()),
        ms(qos.total_response.max_ms()),
        trace.num_intervals()
    );
    println!(
        "  original layout:   avg {} ms, max {} ms — above the guarantee",
        ms(orig.total_response.mean_ms()),
        ms(orig.total_response.max_ms())
    );
    println!(
        "  delayed requests:  {} at {} ms average delay (paper: ~7% at ~0.14 ms)",
        pct(qos.delayed_pct()),
        ms(qos.avg_delay_ms())
    );
}
