//! Fig. 2 and Fig. 7 — the design block table and the three allocation
//! layouts, printed for visual verification against the paper.

use fqos_bench::banner;
use fqos_decluster::{AllocationScheme, DesignTheoretic, Raid1Chained, Raid1Mirrored};
use fqos_designs::known;

fn print_scheme(s: &dyn AllocationScheme, base_only: usize) {
    println!("--- {} ---", s.name());
    println!("blocks (bucket → device tuple):");
    for b in 0..base_only {
        let r = s.replicas(b);
        let tuple: Vec<String> = r.iter().map(|d| format!("d{d}")).collect();
        println!("  b{b:<3} {}", tuple.join(" "));
    }
    // Per-device content.
    let mut per_device: Vec<Vec<usize>> = vec![Vec::new(); s.devices()];
    for b in 0..base_only {
        for &d in s.replicas(b) {
            per_device[d].push(b);
        }
    }
    println!("devices (device → blocks):");
    for (d, blocks) in per_device.iter().enumerate() {
        let list: Vec<String> = blocks.iter().map(|b| format!("b{b}")).collect();
        println!("  d{d}: {}", list.join(" "));
    }
    println!();
}

fn main() {
    banner(
        "layouts",
        "Fig. 2 / Fig. 7",
        "Design table and allocation layouts",
    );

    println!("--- (9,3,1) design (Fig. 2) ---");
    let d = known::design_9_3_1();
    for (i, block) in d.blocks().iter().enumerate() {
        let cells: Vec<String> = block.iter().map(std::string::ToString::to_string).collect();
        println!("  block {i:<2} ({})", cells.join(","));
    }
    println!("  verification: {:?}\n", d.verify());

    print_scheme(&DesignTheoretic::paper_9_3_1(), 12);
    print_scheme(&Raid1Mirrored::paper(), 12);
    print_scheme(&Raid1Chained::paper(), 12);
}
