//! Table III — comparison of allocation schemes: response times (ms).
//!
//! Synthetic workloads (10 000 requests; 5 blocks / 0.133 ms, 14 / 0.266,
//! 27 / 0.399; blocks drawn from the 36-bucket pool), replayed against
//! RAID-1 mirrored, RAID-1 chained and the (9,3,1) design-theoretic QoS
//! system. Paper shape: the design meets every deadline exactly
//! (max = M × 0.132507 ms); chained misses by small factors; mirrored
//! blows up dramatically as the load grows.

use fqos_bench::{banner, ms, TableBuilder};
use fqos_core::mapping::MappingStrategy;
use fqos_core::{QosConfig, QosPipeline};
use fqos_decluster::{Raid1Chained, Raid1Mirrored};
use fqos_flashsim::time::BASE_INTERVAL_NS;
use fqos_traces::SyntheticConfig;

fn main() {
    banner(
        "table3",
        "Table III",
        "Response times (avg / std / max, ms) of RAID-1 mirrored, RAID-1 chained and (9,3,1) design-theoretic",
    );

    let mut table = TableBuilder::new(&[
        "req size",
        "interval (ms)",
        "mirrored avg",
        "mirrored std",
        "mirrored max",
        "chained avg",
        "chained std",
        "chained max",
        "design avg",
        "design std",
        "design max",
        "guarantee met",
    ]);

    for &(blocks, m) in &[(5usize, 1usize), (14, 2), (27, 3)] {
        let interval_ns = m as u64 * BASE_INTERVAL_NS;
        let trace = SyntheticConfig::table3(blocks, interval_ns).generate();
        let pipeline = QosPipeline::new(QosConfig::paper_9_3_1().with_accesses(m))
            .with_mapping(MappingStrategy::Modulo);

        let mirrored = pipeline
            .run_interval()
            .run_baseline(&trace, &Raid1Mirrored::paper());
        let chained = pipeline
            .run_interval()
            .run_baseline(&trace, &Raid1Chained::paper());
        let design = pipeline.run_interval().run(&trace);

        let met = design.total_response.max_ns() <= interval_ns;
        table.row(&[
            blocks.to_string(),
            ms(interval_ns as f64 / 1e6),
            ms(mirrored.total_response.mean_ms()),
            ms(mirrored.total_response.std_ms()),
            ms(mirrored.total_response.max_ms()),
            ms(chained.total_response.mean_ms()),
            ms(chained.total_response.std_ms()),
            ms(chained.total_response.max_ms()),
            ms(design.total_response.mean_ms()),
            ms(design.total_response.std_ms()),
            ms(design.total_response.max_ms()),
            if met { "yes".into() } else { "NO".into() },
        ]);
    }
    table.print();

    println!("\nPaper anchors: design max = 0.132 / 0.263 / 0.393 ms (within every interval);");
    println!("chained max ≈ 0.52 / 1.18 / 2.15 ms; mirrored max up to ≈ 12.9 ms at 27 blocks.");
}
