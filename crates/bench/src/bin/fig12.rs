//! Fig. 12 — retrieval performance: average delay of online vs
//! design-theoretic (interval-aligned) retrieval.
//!
//! Same settings as the Fig. 8/9 experiments, but the design-theoretic
//! retrieval must align mid-interval arrivals to the next `T` boundary,
//! which adds its alignment delay on top of any admission delay. Paper
//! anchors: online causes ≈0.12 ms (Exchange) / ≈0.17 ms (TPC-E) less
//! delay on average than design-theoretic retrieval.

use fqos_bench::{banner, exchange_trace, ms, tpce_trace, TableBuilder};
use fqos_core::{QosConfig, QosPipeline};
use fqos_traces::Trace;

/// Average delay over *all* requests of an interval (delayed or not) —
/// the quantity Fig. 12 plots.
fn avg_delay_all(report: &fqos_core::QosReport, interval: usize) -> f64 {
    let n = report.intervals.requests[interval];
    if n == 0 {
        return 0.0;
    }
    report.intervals.delay_sum_ns[interval] as f64 / n as f64 / 1e6
}

fn run(trace: &Trace, config: QosConfig) {
    println!("--- {} ---", trace.name);
    let pipeline = QosPipeline::new(config);
    let online = pipeline.run_online(trace);
    let interval = pipeline.run_interval().run(trace);

    let mut table = TableBuilder::new(&[
        "interval",
        "online avg delay (ms)",
        "design-theoretic avg delay (ms)",
    ]);
    let step = (trace.num_intervals() / 24).max(1);
    for i in (0..trace.num_intervals()).step_by(step) {
        table.row(&[
            i.to_string(),
            format!("{:.4}", avg_delay_all(&online, i)),
            format!("{:.4}", avg_delay_all(&interval, i)),
        ]);
    }
    table.print();

    let total = |r: &fqos_core::QosReport| {
        let n: u64 = r.intervals.requests.iter().sum();
        let d: u128 = r.intervals.delay_sum_ns.iter().sum();
        d as f64 / n.max(1) as f64 / 1e6
    };
    let (on, dt) = (total(&online), total(&interval));
    println!(
        "average delay over all requests: online {} ms, design-theoretic {} ms → online saves {} ms\n",
        ms(on),
        ms(dt),
        ms(dt - on)
    );
}

fn main() {
    banner(
        "fig12",
        "Fig. 12",
        "Average delay of online vs design-theoretic (interval-aligned) retrieval",
    );
    run(&exchange_trace(), QosConfig::paper_9_3_1());
    run(&tpce_trace(), QosConfig::paper_13_3_1());
    println!("Paper anchors: online saves ≈0.12 ms (Exchange) and ≈0.17 ms (TPC-E) on average.");
}
