//! Extension experiment — mixed read/write workloads.
//!
//! The paper evaluates read streams; on a replicated layout every write
//! must land on all `c` replicas, so a write consumes `c` device-slots per
//! window where a read consumes one. This sweep converts a growing
//! fraction of the synthetic workload into writes and shows the admission
//! pressure rising accordingly while the per-request guarantee never
//! breaks.

use fqos_bench::{banner, ms, pct, TableBuilder};
use fqos_core::mapping::MappingStrategy;
use fqos_core::{QosConfig, QosPipeline};
use fqos_flashsim::time::BASE_INTERVAL_NS;
use fqos_traces::{rw, SyntheticConfig};

fn main() {
    banner(
        "writes",
        "extension (write path)",
        "Deterministic QoS under growing write fractions (3 blocks per 0.133 ms, 10 000 requests)",
    );
    // A lighter load than Table III's 5/interval: writes use 3 slots each,
    // so 3 requests per window can be all-writes (9 slots = N·M) at most.
    let base = SyntheticConfig {
        blocks_per_interval: 3,
        interval_ns: BASE_INTERVAL_NS,
        total_requests: 10_000,
        block_pool: 36,
        seed: 0x11,
    }
    .generate();

    let mut table = TableBuilder::new(&[
        "write fraction",
        "% delayed",
        "avg delay (ms)",
        "max response (ms)",
        "guarantee held",
    ]);
    for frac in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let trace = rw::with_write_fraction(&base, frac, 0xF00D);
        let report = QosPipeline::new(QosConfig::paper_9_3_1())
            .with_mapping(MappingStrategy::Modulo)
            .run_online(&trace);
        let held = report.total_response.max_ns() <= QosConfig::paper_9_3_1().service_ns;
        table.row(&[
            pct(100.0 * frac),
            pct(report.delayed_pct()),
            ms(report.avg_delay_ms()),
            format!("{:.6}", report.total_response.max_ms()),
            if held { "yes".into() } else { "NO".into() },
        ]);
    }
    table.print();
    println!("\nEvery served request still completes in exactly one service time — the");
    println!("guarantee is preserved by pushing the extra replica-update load into delays.");
}
