//! Extension experiment — the §II-B2 scheme ranking, measured.
//!
//! The paper argues qualitatively that design-theoretic allocation beats
//! RDA (no guarantee), partitioned (bad for arbitrary queries), dependent
//! periodic (bad for arbitrary queries) and orthogonal (weaker bound).
//! This binary quantifies the claim two ways:
//!
//! 1. `P_k` — the Fig. 4 optimal-retrieval probability at the deterministic
//!    limit and around it, for every scheme;
//! 2. worst-case accesses for small request sizes (exhaustive / adversarial
//!    search scored by exact max-flow).

use fqos_bench::{banner, TableBuilder};
use fqos_decluster::analysis::{worst_case_profile, SearchEffort};
use fqos_decluster::sampling::optimal_retrieval_probabilities;
use fqos_decluster::{
    AllocationScheme, DependentPeriodic, DesignTheoretic, Orthogonal, Partitioned, Raid1Chained,
    Raid1Mirrored, RandomDuplicate,
};

fn main() {
    banner(
        "scheme_sweep",
        "§II-B2 (extension)",
        "Quantitative ranking of all declustering schemes: P_k and worst-case accesses",
    );

    let schemes: Vec<Box<dyn AllocationScheme + Sync>> = vec![
        Box::new(DesignTheoretic::paper_9_3_1()),
        Box::new(Raid1Chained::paper()),
        Box::new(Raid1Mirrored::paper()),
        Box::new(RandomDuplicate::new(9, 3, 36, 0xDA)),
        Box::new(Partitioned::new(9, 3, 36)),
        Box::new(DependentPeriodic::new(9, 3, 2, 36)),
        Box::new(Orthogonal::new(9, 36)),
    ];

    println!("P_k at and around the (9,3,1) deterministic limit (20k trials, with replacement):\n");
    let mut table = TableBuilder::new(&["scheme", "P_5", "P_7", "P_9", "P_14"]);
    for s in &schemes {
        let p = optimal_retrieval_probabilities(s.as_ref(), 14, 20_000, 0x5CE);
        table.row(&[
            s.name().to_string(),
            format!("{:.3}", p.p_k(5)),
            format!("{:.3}", p.p_k(7)),
            format!("{:.3}", p.p_k(9)),
            format!("{:.3}", p.p_k(14)),
        ]);
    }
    table.print();

    println!(
        "\nWorst-case accesses for b = 1..8 (exact max-flow scoring; exhaustive ≤ C(36,4)):\n"
    );
    let effort = SearchEffort {
        exhaustive_limit: 90_000,
        random_starts: 60,
        climb_steps: 150,
    };
    let mut table = TableBuilder::new(&[
        "scheme", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6", "b=7", "b=8",
    ]);
    for s in &schemes {
        let profile = worst_case_profile(s.as_ref(), 8, effort, 7);
        let mut row = vec![s.name().to_string()];
        row.extend(profile.iter().map(std::string::ToString::to_string));
        table.row(&row);
    }
    table.print();

    println!("\nExpected ranking: design-theoretic holds worst case 1 through b = 5 (the S(1)");
    println!("guarantee) — every other scheme degrades earlier, mirrored/partitioned fastest.");
}
