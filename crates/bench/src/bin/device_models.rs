//! Extension experiment — device-model sensitivity.
//!
//! The paper's numbers rest on one calibrated constant (0.132507 ms per
//! 8 KiB read). This ablation replays the *same* design-theoretic schedule
//! through (a) the calibrated model and (b) the page-level flash model
//! (dies + shared channel + FTL), to show the QoS *structure* — who
//! conflicts with whom — is model-independent even though absolute times
//! shift with the device's internal parallelism.

use fqos_bench::{banner, ms, TableBuilder};
use fqos_decluster::retrieval::hybrid_retrieval;
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use fqos_flashsim::{CalibratedSsd, Device, FlashArray, FlashModule, IoRequest, ResponseStats};
use fqos_traces::SyntheticConfig;

/// Build the per-device request stream once (interval batches scheduled by
/// hybrid retrieval), then replay it through any device model.
fn schedule(trace: &fqos_traces::Trace, scheme: &DesignTheoretic) -> Vec<IoRequest> {
    let mut out = Vec::with_capacity(trace.len());
    for records in trace.intervals() {
        if records.is_empty() {
            continue;
        }
        let boundary = records[0].arrival_ns;
        let buckets: Vec<usize> = records
            .iter()
            .map(|r| (r.lbn % scheme.num_buckets() as u64) as usize)
            .collect();
        let refs: Vec<&[usize]> = buckets.iter().map(|&b| scheme.replicas(b)).collect();
        let (sched, _) = hybrid_retrieval(&refs, scheme.devices());
        for (r, &d) in records.iter().zip(&sched.assignment) {
            out.push(IoRequest::read_block(r.lbn, boundary, d, r.lbn));
        }
    }
    out
}

fn replay<D: Device>(reqs: &[IoRequest], devices: Vec<D>) -> ResponseStats {
    let mut arr = FlashArray::new(devices);
    arr.replay(reqs.iter().copied()).stats
}

fn main() {
    banner(
        "device_models",
        "ablation (DESIGN.md §5)",
        "Table III design-theoretic row under the calibrated vs the page-level flash model",
    );
    let scheme = DesignTheoretic::paper_9_3_1();
    let mut table = TableBuilder::new(&[
        "load",
        "calibrated avg",
        "calibrated max",
        "page-level avg",
        "page-level max",
    ]);
    for &(blocks, m) in &[(5usize, 1u64), (14, 2), (27, 3)] {
        let trace = SyntheticConfig::table3(blocks, m * 133_000).generate();
        let reqs = schedule(&trace, &scheme);
        let cal = replay(
            &reqs,
            (0..9).map(|_| CalibratedSsd::new()).collect::<Vec<_>>(),
        );
        let flash = replay(
            &reqs,
            (0..9).map(|_| FlashModule::default()).collect::<Vec<_>>(),
        );
        table.row(&[
            format!("{blocks}/{:.3}ms", m as f64 * 0.133),
            ms(cal.mean_ms()),
            ms(cal.max_ms()),
            ms(flash.mean_ms()),
            ms(flash.max_ms()),
        ]);
    }
    table.print();
    println!("\nThe page-level model is slower per read (two 4 KiB pages share one channel:");
    println!("≈0.23 ms vs the calibrated 0.1325 ms), so a deployment would pick T from the");
    println!("measured device constant — the schedule structure (max/avg ratio, conflict");
    println!("pattern) is the same under both models.");
}
