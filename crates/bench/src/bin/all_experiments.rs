//! Run every experiment in sequence (the full paper reproduction).
//!
//! Equivalent to running the individual binaries: layouts, fig4, table2,
//! table3, fig6, fig8, fig9, fig10, fig11, fig12, table4.

use std::process::Command;

fn main() {
    let bins = [
        "layouts",
        "fig4",
        "table2",
        "table3",
        "fig6",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "table4",
        "scheme_sweep",
        "device_models",
        "hdd_motivation",
        "degraded",
        "writes",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for bin in bins {
        let path = exe_dir.join(bin);
        eprintln!(">>> running {bin}");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failed.push(bin);
        }
    }
    if failed.is_empty() {
        eprintln!("\nall experiments completed");
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
