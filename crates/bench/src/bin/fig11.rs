//! Fig. 11 — FIM matching effectiveness: the percentage of each interval's
//! requested blocks that were matched by mining the *previous* interval.
//!
//! Paper anchors: ≈17 % average for Exchange (shifting mail working set),
//! ≈87 % for TPC-E (persistent OLTP hot set); 0 for the first interval.
//! Also prints the mapping ablation the paper argues for: FIM matching vs
//! the naive modulo and round-robin alternatives, scored by how often
//! co-requested blocks land on distinct design blocks.

use fqos_bench::{banner, exchange_trace, pct, tpce_trace, TableBuilder};
use fqos_core::mapping::{BlockMapping, MappingStrategy};
use fqos_core::{QosConfig, QosPipeline};
use fqos_fim::{Apriori, PairMiner, TransactionDb};
use fqos_traces::Trace;

fn matched_series(trace: &Trace, config: QosConfig) -> Vec<f64> {
    QosPipeline::new(config).run_online(trace).matched_fraction
}

/// Ablation metric: fraction of frequent pairs (mined per interval) whose
/// two blocks map to different buckets under each strategy.
fn separation_ablation(trace: &Trace, num_buckets: usize) -> (f64, f64, f64) {
    let window = 133_000;
    let (mut fim_q, mut mod_q, mut rr_q) = (0.0, 0.0, 0.0);
    let mut n = 0usize;
    let mut fim = BlockMapping::new(MappingStrategy::Fim, num_buckets, window, 1);
    let mut modulo = BlockMapping::new(MappingStrategy::Modulo, num_buckets, window, 1);
    let mut rr = BlockMapping::new(MappingStrategy::RoundRobin, num_buckets, window, 1);
    let intervals: Vec<_> = trace.intervals().collect();
    for pair in intervals.windows(2) {
        let (prev, cur) = (pair[0], pair[1]);
        fim.advance_interval(prev);
        modulo.advance_interval(prev);
        rr.advance_interval(prev);
        // Pairs actually co-requested in the current interval.
        let db =
            TransactionDb::from_timed_events(cur.iter().map(|r| (r.arrival_ns, r.lbn)), window);
        let pairs = Apriori.mine_pairs(&db, 1);
        if pairs.is_empty() {
            continue;
        }
        let score = |m: &mut BlockMapping| {
            let sep = pairs
                .iter()
                .filter(|p| m.bucket_for(p.a) != m.bucket_for(p.b))
                .count();
            sep as f64 / pairs.len() as f64
        };
        fim_q += score(&mut fim);
        mod_q += score(&mut modulo);
        rr_q += score(&mut rr);
        n += 1;
    }
    let n = n.max(1) as f64;
    (fim_q / n, mod_q / n, rr_q / n)
}

fn main() {
    banner(
        "fig11",
        "Fig. 11",
        "Blocks matched by previous-interval FIM mining, per interval",
    );
    let exchange = exchange_trace();
    let tpce = tpce_trace();

    let ex = matched_series(&exchange, QosConfig::paper_9_3_1());
    let tp = matched_series(&tpce, QosConfig::paper_13_3_1());

    let mut table = TableBuilder::new(&["interval", "exchange matched", "tpce matched"]);
    for i in 0..ex.len().max(tp.len()) {
        if i % 4 != 0 && i >= tp.len() {
            continue;
        }
        table.row(&[
            i.to_string(),
            ex.get(i).map(|&f| pct(100.0 * f)).unwrap_or_default(),
            tp.get(i).map(|&f| pct(100.0 * f)).unwrap_or_default(),
        ]);
    }
    table.print();

    let avg = |xs: &[f64]| {
        if xs.len() <= 1 {
            0.0
        } else {
            100.0 * xs[1..].iter().sum::<f64>() / (xs.len() - 1) as f64
        }
    };
    println!(
        "\nAverages (excluding the history-less first interval): exchange {} (paper ≈17%), tpce {} (paper ≈87%)",
        pct(avg(&ex)),
        pct(avg(&tp))
    );

    println!("\nMapping ablation — fraction of co-requested pairs separated onto distinct design blocks:");
    let (f, m, r) = separation_ablation(&exchange, 36);
    println!(
        "  exchange: FIM {} | modulo {} | round-robin {}",
        pct(100.0 * f),
        pct(100.0 * m),
        pct(100.0 * r)
    );
    let (f, m, r) = separation_ablation(&tpce, 78);
    println!(
        "  tpce:     FIM {} | modulo {} | round-robin {}",
        pct(100.0 * f),
        pct(100.0 * m),
        pct(100.0 * r)
    );
}
