//! Extension experiment — the §II-A motivation, measured: why flash?
//!
//! Runs the Table III design-theoretic schedule (5 blocks / 0.133 ms-style
//! loads, scaled intervals for the disk) through an array of calibrated
//! flash modules and through an array of 15 kRPM disks. On flash every
//! response is a constant; on disk the same schedule has millisecond
//! variance from seek + rotation — "proposing a QoS framework for
//! traditional HDD based storage arrays cannot exceed providing a best
//! effort performance".

use fqos_bench::{banner, ms, TableBuilder};
use fqos_decluster::retrieval::hybrid_retrieval;
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use fqos_flashsim::{CalibratedSsd, FlashArray, HardDisk, IoRequest};
use fqos_traces::SyntheticConfig;

fn main() {
    banner(
        "hdd_motivation",
        "§II-A (extension)",
        "The same design-theoretic schedule on flash vs 15 kRPM disks",
    );
    let scheme = DesignTheoretic::paper_9_3_1();
    // Disk-scaled intervals: one 15 kRPM random read ≈ 5–8 ms, so the
    // equivalent guarantee interval would be ~10 ms instead of 0.133 ms.
    let interval_ns = 10_000_000;
    let trace = SyntheticConfig {
        blocks_per_interval: 5,
        interval_ns,
        total_requests: 10_000,
        block_pool: 36,
        seed: 0x5EED,
    }
    .generate();

    // Identical per-device assignment for both arrays. Buckets are spread
    // over the LBN space so the disk has to seek like a real server would.
    let mut reqs = Vec::with_capacity(trace.len());
    for records in trace.intervals() {
        if records.is_empty() {
            continue;
        }
        let boundary = records[0].arrival_ns;
        let buckets: Vec<usize> = records.iter().map(|r| r.lbn as usize).collect();
        let refs: Vec<&[usize]> = buckets.iter().map(|&b| scheme.replicas(b)).collect();
        let (sched, _) = hybrid_retrieval(&refs, 9);
        for (r, &d) in records.iter().zip(&sched.assignment) {
            // Scatter buckets across the disk: bucket i sits at cylinder
            // region i/36 of the disk.
            let lbn = r.lbn * 80_000;
            reqs.push(IoRequest::read_block(r.lbn, boundary, d, lbn));
        }
    }

    let mut flash = FlashArray::new((0..9).map(|_| CalibratedSsd::new()).collect::<Vec<_>>());
    let flash_result = flash.replay(reqs.iter().copied());
    let mut disks = FlashArray::new((0..9).map(|_| HardDisk::default()).collect::<Vec<_>>());
    let disk_result = disks.replay(reqs.iter().copied());

    let mut table = TableBuilder::new(&[
        "array", "avg (ms)", "std (ms)", "min (ms)", "max (ms)", "max/min",
    ]);
    for (name, s) in [
        ("flash", &flash_result.stats),
        ("15 kRPM HDD", &disk_result.stats),
    ] {
        table.row(&[
            name.to_string(),
            ms(s.mean_ms()),
            ms(s.std_ms()),
            ms(s.min_ns() as f64 / 1e6),
            ms(s.max_ms()),
            format!("{:.1}x", s.max_ns() as f64 / s.min_ns().max(1) as f64),
        ]);
    }
    table.print();

    println!("\nFlash: every read costs exactly 0.132507 ms — a deterministic guarantee is");
    println!("just an admission-control problem. Disk: the identical schedule spans a wide");
    println!("response range purely from head position, so no interval T short enough to be");
    println!("useful can ever be promised. This is the paper's case for flash arrays.");
}
