//! Fig. 9 — deterministic QoS with online retrieval on the TPC-E workload,
//! (13,3,1) design.
//!
//! Per trace part: average/maximum response times of the deterministic QoS
//! (flat at 0.132507 ms) vs the original 13-volume layout, plus the
//! percentage of delayed requests and their average delay. Paper anchors:
//! original average ≈ 0.135 ms (slightly above the guarantee), original
//! max clearly above in every part; 2–3 % delayed at ≈ 0.03 ms.

use fqos_bench::{banner, ms, pct, tpce_trace, TableBuilder};
use fqos_core::{QosConfig, QosPipeline};

fn main() {
    banner(
        "fig9",
        "Fig. 9",
        "TPC-E: deterministic QoS (online retrieval, FIM matching, (13,3,1)) vs original layout",
    );
    let trace = tpce_trace();
    let pipeline = QosPipeline::new(QosConfig::paper_13_3_1());

    let qos = pipeline.run_online(&trace);
    let orig = pipeline.run_original(&trace);

    let mut table = TableBuilder::new(&[
        "part",
        "qos avg (ms)",
        "qos max (ms)",
        "orig avg (ms)",
        "orig max (ms)",
        "% delayed",
        "avg delay (ms)",
    ]);
    for i in 0..trace.num_intervals() {
        table.row(&[
            format!("tpce{}", i + 1),
            ms(qos.intervals.response[i].mean_ms()),
            ms(qos.intervals.response[i].max_ms()),
            ms(orig.intervals.response[i].mean_ms()),
            ms(orig.intervals.response[i].max_ms()),
            pct(qos.intervals.delayed_pct(i)),
            ms(qos.intervals.avg_delay_ms(i)),
        ]);
    }
    table.print();

    println!("\nSummary:");
    println!(
        "  deterministic QoS: avg {} ms, max {} ms",
        ms(qos.total_response.mean_ms()),
        ms(qos.total_response.max_ms())
    );
    println!(
        "  original layout:   avg {} ms, max {} ms (paper: avg 0.135145 ms, max well above)",
        ms(orig.total_response.mean_ms()),
        ms(orig.total_response.max_ms())
    );
    println!(
        "  delayed requests:  {} at {} ms average delay (paper: 2–3% at ~0.03 ms)",
        pct(qos.delayed_pct()),
        ms(qos.avg_delay_ms())
    );
}
