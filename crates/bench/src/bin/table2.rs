//! Table II — comparison of retrieval algorithms: `DTR(S)` vs `OLR(S)`.
//!
//! For request sizes `S = 1..6` on the (9,3,1) design: the number of
//! accesses needed by the interval-aligned design-theoretic retrieval
//! (DTR, with remapping) and by the online algorithm (OLR, greedy FCFS).
//! Paper: DTR = 1,1,1,1,1,2; OLR = 1,1,1,"1 or 2","1 or 2",2.

use fqos_bench::{banner, TableBuilder};
use fqos_decluster::retrieval::{design_theoretic_retrieval, pick_online_device};
use fqos_decluster::{AllocationScheme, DesignTheoretic};

/// Greedy online cost: requests arrive one by one (FCFS, no remapping of
/// already-started requests); each picks its earliest-finishing replica.
fn online_accesses(reqs: &[&[usize]], devices: usize) -> usize {
    let mut free = vec![0u64; devices];
    for r in reqs {
        let d = pick_online_device(r, &free, 0);
        free[d] += 1; // one access unit
    }
    free.iter().copied().max().unwrap_or(0) as usize
}

fn main() {
    banner(
        "table2",
        "Table II",
        "DTR(S) vs OLR(S) for S = 1..6 on the (9,3,1) design (exhaustive-ish sampling over distinct bucket sets)",
    );
    let scheme = DesignTheoretic::paper_9_3_1();
    let n = scheme.num_buckets();

    let mut table = TableBuilder::new(&["S", "DTR(S)", "OLR(S)", "paper DTR", "paper OLR"]);
    let paper_dtr = ["1", "1", "1", "1", "1", "2"];
    let paper_olr = ["1", "1", "1", "1 or 2", "1 or 2", "2"];

    for s in 1..=6usize {
        let mut dtr_seen = std::collections::BTreeSet::new();
        let mut olr_seen = std::collections::BTreeSet::new();
        // Deterministic dense sampling of distinct bucket sets.
        let mut state = 0xABCDu64;
        let trials = 40_000;
        let mut pool: Vec<usize> = (0..n).collect();
        for _ in 0..trials {
            for i in 0..s {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = i + (state >> 33) as usize % (n - i);
                pool.swap(i, j);
            }
            let reqs: Vec<&[usize]> = pool[..s].iter().map(|&b| scheme.replicas(b)).collect();
            dtr_seen.insert(design_theoretic_retrieval(&reqs, 9).accesses);
            olr_seen.insert(online_accesses(&reqs, 9));
        }
        let fmt = |set: &std::collections::BTreeSet<usize>| {
            set.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join(" or ")
        };
        table.row(&[
            s.to_string(),
            fmt(&dtr_seen),
            fmt(&olr_seen),
            paper_dtr[s - 1].to_string(),
            paper_olr[s - 1].to_string(),
        ]);
    }
    table.print();
    println!(
        "\nTheorem 1 check: whenever OLR(k) = DTR(k), serving on arrival finishes no later\nthan interval alignment (TOLR <= TDTR) — measured end-to-end in fig12."
    );
}
