//! Fig. 6 — trace statistics of the Exchange and TPC-E workload models.
//!
//! For each reporting interval: maximum and average read requests per
//! second, and the total number of read requests (the four panels of
//! Fig. 6). Our models are scaled (DESIGN.md §2), so absolute counts are
//! smaller than the SNIA originals; the shapes — diurnal Exchange curve,
//! steady high-rate TPC-E parts, peak≫average burstiness — are the
//! reproduction target.

use fqos_bench::{banner, exchange_trace, tpce_trace, TableBuilder};
use fqos_traces::stats::interval_stats;
use fqos_traces::Trace;

fn show(trace: &Trace, bucket_ns: u64) {
    println!(
        "--- {} ({} records, {} devices, {} intervals) ---",
        trace.name,
        trace.len(),
        trace.num_devices,
        trace.num_intervals()
    );
    let stats = interval_stats(trace, bucket_ns);
    let mut table = TableBuilder::new(&[
        "interval",
        "total reads",
        "avg req/s",
        "max req/s",
        "peak/avg",
    ]);
    for s in &stats {
        table.row(&[
            s.interval.to_string(),
            s.total_requests.to_string(),
            format!("{:.0}", s.avg_per_sec),
            format!("{:.0}", s.max_per_sec),
            format!("{:.1}x", s.max_per_sec / s.avg_per_sec.max(1.0)),
        ]);
    }
    table.print();
    let total: u64 = stats.iter().map(|s| s.total_requests).sum();
    let peak = stats
        .iter()
        .map(|s| s.max_per_sec as u64)
        .max()
        .unwrap_or(0);
    println!("total = {total}, global peak = {peak} req/s\n");
}

fn main() {
    banner(
        "fig6",
        "Fig. 6",
        "Per-interval trace statistics (a/b: Exchange, c/d: TPC-E); rates over 10 ms buckets normalized to req/s",
    );
    show(&exchange_trace(), 10_000_000);
    show(&tpce_trace(), 10_000_000);
}
