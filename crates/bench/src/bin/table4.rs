//! Table IV — performance of FIM: mining time and peak memory.
//!
//! The paper mines the largest and smallest intervals of both traces with
//! `fim apriori-lowmem`, window `T = 0.133 ms`, set size 2, and reports
//! wall time and peak memory at supports 1 and 3. Absolute numbers depend
//! on trace scale and hardware; the reproduction targets are the *scaling*
//! relationships: time/memory grow with request count, and raising the
//! support cuts both. All three miners are reported for cross-checking.

use fqos_bench::{banner, exchange_trace, tpce_trace, TableBuilder};
use fqos_fim::{Apriori, Eclat, FpGrowth, PairMiner, TransactionDb};
use fqos_traces::Trace;

fn interval_db(trace: &Trace, which: &str) -> (String, TransactionDb) {
    // Pick the largest or smallest non-empty interval.
    let intervals: Vec<_> = trace.intervals().collect();
    let (idx, records) = intervals
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .max_by_key(|(_, r)| {
            if which == "largest" {
                r.len()
            } else {
                usize::MAX - r.len()
            }
        })
        .expect("non-empty trace");
    let db =
        TransactionDb::from_timed_events(records.iter().map(|r| (r.arrival_ns, r.lbn)), 133_000);
    (
        format!("{}{} ({} reqs)", trace.name, idx, records.len()),
        db,
    )
}

fn main() {
    banner(
        "table4",
        "Table IV",
        "FIM mining time and peak memory (window T = 0.133 ms, set size 2)",
    );
    let mut table = TableBuilder::new(&[
        "trace interval",
        "requests",
        "support",
        "miner",
        "pairs",
        "time (ms)",
        "peak mem (est.)",
    ]);

    let exchange = exchange_trace();
    let tpce = tpce_trace();
    let mut cases: Vec<(String, TransactionDb)> = vec![
        interval_db(&exchange, "smallest"),
        interval_db(&exchange, "largest"),
        interval_db(&tpce, "smallest"),
        interval_db(&tpce, "largest"),
    ];

    let miners: Vec<Box<dyn PairMiner>> =
        vec![Box::new(Apriori), Box::new(Eclat), Box::new(FpGrowth)];
    for (name, db) in cases.iter_mut() {
        for &support in &[1u32, 3] {
            for miner in &miners {
                let (_, report) = miner.mine_pairs_with_report(db, support);
                table.row(&[
                    name.clone(),
                    db.total_occurrences().to_string(),
                    support.to_string(),
                    miner.name().to_string(),
                    report.pairs_found.to_string(),
                    format!("{:.2}", report.seconds * 1e3),
                    human_bytes(report.peak_bytes),
                ]);
            }
        }
    }
    table.print();
    println!(
        "\nPaper anchors (their scale): exchange 1–11 s / 240–767 MB; tpce 1–90 s / 0.3–3.4 GB;"
    );
    println!("support 3 cuts tpce3 from 90 s / 3.4 GB to 57 s / 2.2 GB. Here the same monotone");
    println!("relationships hold at our (smaller) trace scale.");
}

fn human_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}
