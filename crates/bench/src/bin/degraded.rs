//! Extension experiment — degraded-mode behaviour under device failures.
//!
//! Replication buys fault tolerance along with QoS: an `(N,3,1)` array
//! serves every bucket through any 2 device failures. This experiment
//! sweeps the number of failed devices and reports, per allocation scheme:
//! data availability (fraction of buckets still readable) and the exact
//! retrieval cost of a full-array scan (all 36 buckets).

use fqos_bench::{banner, pct, TableBuilder};
use fqos_decluster::retrieval::{degraded_retrieval, fault_tolerance};
use fqos_decluster::{AllocationScheme, DesignTheoretic, Raid1Chained, Raid1Mirrored};

fn main() {
    banner(
        "degraded",
        "extension (replication fault tolerance)",
        "Availability and full-scan retrieval cost vs failed devices (worst failure pattern of each size)",
    );
    let schemes: Vec<Box<dyn AllocationScheme>> = vec![
        Box::new(DesignTheoretic::paper_9_3_1()),
        Box::new(Raid1Chained::paper()),
        Box::new(Raid1Mirrored::paper()),
    ];

    let mut table = TableBuilder::new(&[
        "scheme",
        "tolerance",
        "failures",
        "worst availability",
        "worst scan accesses",
    ]);
    for s in &schemes {
        let reqs: Vec<&[usize]> = (0..s.num_buckets()).map(|b| s.replicas(b)).collect();
        let n = s.devices();
        for f in 0..=3usize {
            // Enumerate all failure patterns of size f, track the worst.
            let mut worst_avail = 1.0f64;
            let mut worst_cost = 0usize;
            let patterns = combinations(n, f);
            for pat in &patterns {
                let mut failed = vec![false; n];
                for &d in pat {
                    failed[d] = true;
                }
                let out = degraded_retrieval(&reqs, n, &failed);
                let avail = 1.0 - out.lost.len() as f64 / reqs.len() as f64;
                worst_avail = worst_avail.min(avail);
                worst_cost = worst_cost.max(out.schedule.accesses);
            }
            table.row(&[
                if f == 0 {
                    s.name().to_string()
                } else {
                    String::new()
                },
                if f == 0 {
                    fault_tolerance(s.as_ref()).to_string()
                } else {
                    String::new()
                },
                f.to_string(),
                pct(100.0 * worst_avail),
                worst_cost.to_string(),
            ]);
        }
    }
    table.print();
    println!("\nAll three 3-copy layouts tolerate 2 arbitrary failures. The difference is the");
    println!("third failure: mirrored loses a whole group's 12 buckets when one mirror trio");
    println!("dies, the design loses only the 3 rotations of the one block on those devices.");
}

fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}
