//! Fig. 4 — optimal retrieval probabilities `P_k` of the (9,3,1) design.
//!
//! Reproduces §III-B1: `k` buckets drawn (with replacement) from the 36
//! rotated buckets; `P_k` = probability they are retrievable in the optimal
//! `⌈k/9⌉` accesses. Paper anchors: P_6 ≈ 0.99, P_7 ≈ 0.98, P_8 ≈ 0.95,
//! P_9 ≈ 0.75, P_10 = 1, converging to 1 as k grows.

use fqos_bench::{banner, TableBuilder};
use fqos_decluster::sampling::optimal_retrieval_probabilities;
use fqos_decluster::DesignTheoretic;

fn main() {
    banner(
        "fig4",
        "Fig. 4",
        "Optimal retrieval probabilities of the (9,3,1) design (100k trials per k)",
    );
    let scheme = DesignTheoretic::paper_9_3_1();
    let trials = std::env::var("FQOS_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let probs = optimal_retrieval_probabilities(&scheme, 36, trials, 0xF164);

    let mut table = TableBuilder::new(&["k", "P_k (measured)", "paper", "optimal accesses"]);
    let paper: &[(usize, &str)] = &[
        (6, "0.99"),
        (7, "0.98"),
        (8, "0.95"),
        (9, "0.75"),
        (10, "1.00"),
    ];
    for k in 1..=36 {
        let reference = paper
            .iter()
            .find(|&&(pk, _)| pk == k)
            .map(|&(_, v)| v)
            .unwrap_or(if k <= 5 { "1.00" } else { "-" });
        table.row(&[
            k.to_string(),
            format!("{:.4}", probs.p_k(k)),
            reference.to_string(),
            k.div_ceil(9).to_string(),
        ]);
    }
    table.print();

    // The characteristic shape: dips just below multiples of N = 9.
    println!(
        "\nDips (k=9: {:.3}, k=18: {:.3}, k=27: {:.3}) — lowest near multiples of N=9, as in the paper.",
        probs.p_k(9),
        probs.p_k(18),
        probs.p_k(27)
    );
}
