//! Miner micro-benchmarks — the Table IV pathway: time scaling of the three
//! miners with database size and support.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqos_fim::{Apriori, Eclat, FpGrowth, PairMiner, TransactionDb};
use std::hint::black_box;

fn synthetic_db(transactions: usize, items: u32, tx_len: usize, seed: u64) -> TransactionDb {
    let mut state = seed | 1;
    let txs: Vec<Vec<u32>> = (0..transactions)
        .map(|_| {
            (0..tx_len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    // Skewed: square the uniform to concentrate on low ids.
                    let u = ((state >> 33) % 1_000_000) as f64 / 1e6;
                    (u * u * items as f64) as u32
                })
                .collect()
        })
        .collect();
    TransactionDb::from_transactions(txs, items)
}

fn bench_miners(c: &mut Criterion) {
    let mut group = c.benchmark_group("fim");
    for &(txs, support) in &[(1_000usize, 1u32), (1_000, 3), (10_000, 1), (10_000, 3)] {
        let db = synthetic_db(txs, 2_000, 5, 99);
        let id = format!("{txs}tx_s{support}");
        group.bench_with_input(BenchmarkId::new("apriori", &id), &db, |b, db| {
            b.iter(|| Apriori.mine_pairs(black_box(db), support));
        });
        group.bench_with_input(BenchmarkId::new("eclat", &id), &db, |b, db| {
            b.iter(|| Eclat.mine_pairs(black_box(db), support));
        });
        group.bench_with_input(BenchmarkId::new("fp_growth", &id), &db, |b, db| {
            b.iter(|| FpGrowth.mine_pairs(black_box(db), support));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
