//! Simulator throughput: how many simulated I/Os per second the calibrated
//! and page-level flash models replay (the substrate behind every
//! experiment), plus the device-model sensitivity ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fqos_flashsim::device::Device;
use fqos_flashsim::{CalibratedSsd, FlashArray, FlashModule, IoRequest};
use std::hint::black_box;

fn trace(n: usize) -> Vec<IoRequest> {
    let mut state = 5u64;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            IoRequest::read_block(
                i as u64,
                i as u64 * 20_000,
                ((state >> 33) % 9) as usize,
                (state >> 40) % 4096,
            )
        })
        .collect()
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let n = 10_000;
    let reqs = trace(n);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_with_input(
        BenchmarkId::new("calibrated_replay", n),
        &reqs,
        |b, reqs| {
            b.iter(|| {
                let mut arr = FlashArray::calibrated(9);
                black_box(arr.replay(reqs.iter().copied()))
            });
        },
    );

    group.bench_with_input(
        BenchmarkId::new("page_level_replay", n),
        &reqs,
        |b, reqs| {
            b.iter(|| {
                let mut arr =
                    FlashArray::new((0..9).map(|_| FlashModule::default()).collect::<Vec<_>>());
                black_box(arr.replay(reqs.iter().copied()))
            });
        },
    );

    group.bench_function("single_submit_calibrated", |b| {
        let mut dev = CalibratedSsd::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 200_000;
            black_box(dev.submit(&IoRequest::read_block(1, t, 0, 7), t))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
