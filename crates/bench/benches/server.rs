//! End-to-end benchmarks for the concurrent serving engine: how fast the
//! full admission → dispatch → worker-pool path drains a multi-tenant
//! synthetic workload, under both assignment modes and under submitter
//! contention.
//!
//! Besides the usual per-benchmark lines, the run writes
//! `BENCH_server.json` (machine-readable: wall-clock throughput in req/s
//! plus the simulated p50/p99/p99.9 response times) for CI trend
//! tracking.

use criterion::{Criterion, Throughput};
use fqos_core::{OverloadPolicy, QosConfig};
use fqos_server::{AssignmentMode, MetricsSnapshot, QosServer, ServerConfig};
use std::hint::black_box;
use std::io::Write;

const WINDOWS: u64 = 120;

/// Drive one complete serve: `submitters` threads each own a tenant slice
/// of `S(M)` and replay `WINDOWS` intervals. Returns the request count and
/// the final snapshot.
fn run_serve(mode: AssignmentMode, submitters: usize, workers: usize) -> (u64, MetricsSnapshot) {
    let qos = QosConfig::paper_9_3_1().with_accesses(2); // S(2) = 14
    let t = qos.interval_ns;
    let limit = qos.request_limit();
    let server = QosServer::new(
        ServerConfig::new(qos)
            .with_workers(workers)
            .with_queue_depth(64)
            .with_assignment(mode),
    )
    .expect("valid config");

    let tenants = submitters.min(limit);
    let base = limit / tenants;
    let extra = limit % tenants;
    let plan: Vec<(u64, usize)> = (0..tenants)
        .map(|i| (i as u64 + 1, base + usize::from(i < extra)))
        .collect();
    for &(tenant, reserved) in &plan {
        server
            .register(tenant, reserved, OverloadPolicy::Delay)
            .expect("within S(M)");
    }

    let threads: Vec<_> = plan
        .into_iter()
        .map(|(tenant, reserved)| {
            let mut h = server.handle();
            std::thread::spawn(move || {
                let mut n = 0u64;
                for w in 0..WINDOWS {
                    for i in 0..reserved as u64 {
                        h.submit(tenant, tenant * 10_000 + w * 31 + i, w * t + i);
                        n += 1;
                    }
                }
                n
            })
        })
        .collect();
    let submitted: u64 = threads.into_iter().map(|j| j.join().unwrap()).sum();
    let m = server.finish();
    assert_eq!(
        m.guaranteed_violations, 0,
        "bench workload must stay deterministic"
    );
    (submitted, m)
}

fn bench_server(c: &mut Criterion) {
    let per_run = WINDOWS * 14; // S(2) requests per window, every window full

    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    group.throughput(Throughput::Elements(per_run));
    group.bench_function("end_to_end/flow", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::OptimalFlow, 4, 4)));
    });
    group.bench_function("end_to_end/eft", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::Eft, 4, 4)));
    });
    group.bench_function("end_to_end/flow_1_submitter", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::OptimalFlow, 1, 4)));
    });
    group.bench_function("end_to_end/flow_8_workers", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::OptimalFlow, 4, 8)));
    });
    group.finish();

    // One instrumented run per mode for the simulated-latency figures the
    // timing loop above cannot see.
    let (n_flow, flow) = run_serve(AssignmentMode::OptimalFlow, 4, 4);
    let (n_eft, eft) = run_serve(AssignmentMode::Eft, 4, 4);

    let mut json = String::from("{\n  \"bench\": \"server\",\n");
    json.push_str(&format!(
        "  \"config\": {{ \"design\": \"(9,3,1)\", \"accesses\": 2, \"limit\": 14, \"windows\": {WINDOWS}, \"requests_per_run\": {per_run} }},\n"
    ));
    json.push_str("  \"timing\": [\n");
    for (i, r) in c.results.iter().enumerate() {
        let req_per_s = per_run as f64 / (r.median_ns * 1e-9);
        let sep = if i + 1 == c.results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"id\": \"{}\", \"median_ns\": {:.0}, \"throughput_req_per_s\": {:.0} }}{sep}\n",
            r.id, r.median_ns, req_per_s
        ));
    }
    json.push_str("  ],\n  \"latency\": [\n");
    for (i, (mode, n, m)) in [("flow", n_flow, &flow), ("eft", n_eft, &eft)]
        .into_iter()
        .enumerate()
    {
        let sep = if i == 1 { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"mode\": \"{mode}\", \"requests\": {n}, \"served\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.0}, \"deadline_violations\": {} }}{sep}\n",
            m.served, m.p50_latency_ns, m.p99_latency_ns, m.p999_latency_ns, m.max_latency_ns, m.mean_latency_ns, m.deadline_violations
        ));
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_server.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_server(&mut criterion);
}
