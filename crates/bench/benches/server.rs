//! End-to-end benchmarks for the concurrent serving engine: how fast the
//! full admission → dispatch → worker-pool path drains a multi-tenant
//! synthetic workload, under both assignment modes and under submitter
//! contention.
//!
//! Besides the usual per-benchmark lines, the run writes
//! `BENCH_server.json` (machine-readable: wall-clock throughput in req/s
//! plus the simulated p50/p99/p99.9 response times) for CI trend
//! tracking.

use criterion::{Criterion, Throughput};
use fqos_core::{OverloadPolicy, QosConfig};
use fqos_server::{
    AssignmentMode, FtlGeometry, GcConfig, IoOp, MetricsSnapshot, QosServer, ServerConfig,
};
use std::hint::black_box;
use std::io::Write;

const WINDOWS: u64 = 120;

/// Drive one complete serve: `submitters` threads each own a tenant slice
/// of `S(M)` and replay `WINDOWS` intervals. Returns the request count and
/// the final snapshot.
fn run_serve(mode: AssignmentMode, submitters: usize, workers: usize) -> (u64, MetricsSnapshot) {
    let qos = QosConfig::paper_9_3_1().with_accesses(2); // S(2) = 14
    let t = qos.interval_ns;
    let limit = qos.request_limit();
    let server = QosServer::new(
        ServerConfig::new(qos)
            .with_workers(workers)
            .with_queue_depth(64)
            .with_assignment(mode),
    )
    .expect("valid config");

    let tenants = submitters.min(limit);
    let base = limit / tenants;
    let extra = limit % tenants;
    let plan: Vec<(u64, usize)> = (0..tenants)
        .map(|i| (i as u64 + 1, base + usize::from(i < extra)))
        .collect();
    for &(tenant, reserved) in &plan {
        server
            .register(tenant, reserved, OverloadPolicy::Delay)
            .expect("within S(M)");
    }

    let threads: Vec<_> = plan
        .into_iter()
        .map(|(tenant, reserved)| {
            let mut h = server.handle();
            std::thread::spawn(move || {
                let mut n = 0u64;
                for w in 0..WINDOWS {
                    for i in 0..reserved as u64 {
                        h.submit(tenant, tenant * 10_000 + w * 31 + i, w * t + i);
                        n += 1;
                    }
                }
                n
            })
        })
        .collect();
    let submitted: u64 = threads.into_iter().map(|j| j.join().unwrap()).sum();
    let m = server.finish();
    assert_eq!(
        m.guaranteed_violations, 0,
        "bench workload must stay deterministic"
    );
    (submitted, m)
}

/// Like [`run_serve`] but with every other request a replica fan-out
/// write, against a deliberately small FTL (64 pages/device, 12.5% OP)
/// so garbage collection actually runs inside the bench and its
/// program/erase interference shows up in the latency figures.
fn run_mixed(mode: AssignmentMode, submitters: usize, workers: usize) -> (u64, MetricsSnapshot) {
    let qos = QosConfig::paper_9_3_1().with_accesses(2);
    let t = qos.interval_ns;
    let limit = qos.request_limit();
    let geometry = FtlGeometry {
        dies: 1,
        blocks_per_die: 8,
        pages_per_block: 8,
        overprovision: 0.125,
    };
    let server = QosServer::new(
        ServerConfig::new(qos)
            .with_workers(workers)
            .with_queue_depth(64)
            .with_assignment(mode)
            .with_gc_model(GcConfig::new(geometry)),
    )
    .expect("valid config");

    // Writes charge c× at admission, so reserve conservatively: half the
    // healthy read limit split across the submitters.
    let tenants = submitters.min(limit / 2);
    let base = (limit / 2) / tenants;
    let plan: Vec<(u64, usize)> = (0..tenants).map(|i| (i as u64 + 1, base)).collect();
    for &(tenant, reserved) in &plan {
        server
            .register(tenant, reserved, OverloadPolicy::Delay)
            .expect("within S(M)");
    }

    let threads: Vec<_> = plan
        .into_iter()
        .map(|(tenant, reserved)| {
            let mut h = server.handle();
            std::thread::spawn(move || {
                let mut n = 0u64;
                for w in 0..WINDOWS {
                    for i in 0..reserved as u64 {
                        let op = if (w + i) % 2 == 0 {
                            IoOp::Write
                        } else {
                            IoOp::Read
                        };
                        h.submit_op(tenant, tenant * 10_000 + w * 31 + i, w * t + i, op);
                        n += 1;
                    }
                }
                n
            })
        })
        .collect();
    let submitted: u64 = threads.into_iter().map(|j| j.join().unwrap()).sum();
    let m = server.finish();
    assert_eq!(m.write_lost, 0, "no device failed; every replica settles");
    (submitted, m)
}

fn bench_server(c: &mut Criterion) {
    let per_run = WINDOWS * 14; // S(2) requests per window, every window full

    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    group.throughput(Throughput::Elements(per_run));
    group.bench_function("end_to_end/flow", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::OptimalFlow, 4, 4)));
    });
    group.bench_function("end_to_end/eft", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::Eft, 4, 4)));
    });
    group.bench_function("end_to_end/flow_1_submitter", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::OptimalFlow, 1, 4)));
    });
    group.bench_function("end_to_end/flow_8_workers", |b| {
        b.iter(|| black_box(run_serve(AssignmentMode::OptimalFlow, 4, 8)));
    });
    group.bench_function("end_to_end/flow_mixed_rw", |b| {
        b.iter(|| black_box(run_mixed(AssignmentMode::OptimalFlow, 4, 4)));
    });
    group.finish();

    // One instrumented run per mode for the simulated-latency figures the
    // timing loop above cannot see.
    let (n_flow, flow) = run_serve(AssignmentMode::OptimalFlow, 4, 4);
    let (n_eft, eft) = run_serve(AssignmentMode::Eft, 4, 4);

    let mut json = String::from("{\n  \"bench\": \"server\",\n");
    json.push_str(&format!(
        "  \"config\": {{ \"design\": \"(9,3,1)\", \"accesses\": 2, \"limit\": 14, \"windows\": {WINDOWS}, \"requests_per_run\": {per_run} }},\n"
    ));
    json.push_str("  \"timing\": [\n");
    for (i, r) in c.results.iter().enumerate() {
        let req_per_s = per_run as f64 / (r.median_ns * 1e-9);
        let sep = if i + 1 == c.results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"id\": \"{}\", \"median_ns\": {:.0}, \"throughput_req_per_s\": {:.0} }}{sep}\n",
            r.id, r.median_ns, req_per_s
        ));
    }
    json.push_str("  ],\n  \"latency\": [\n");
    for (i, (mode, n, m)) in [("flow", n_flow, &flow), ("eft", n_eft, &eft)]
        .into_iter()
        .enumerate()
    {
        let sep = if i == 1 { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"mode\": \"{mode}\", \"requests\": {n}, \"served\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.0}, \"deadline_violations\": {} }}{sep}\n",
            m.served, m.p50_latency_ns, m.p99_latency_ns, m.p999_latency_ns, m.max_latency_ns, m.mean_latency_ns, m.deadline_violations
        ));
    }

    // One instrumented mixed read/write run against the small FTL: the
    // write-path and garbage-collection figures CI tracks for trend.
    let (n_mix, mix) = run_mixed(AssignmentMode::OptimalFlow, 4, 4);
    let write_amp = if mix.gc_host_pages == 0 {
        1.0
    } else {
        (mix.gc_host_pages + mix.gc_pages) as f64 / mix.gc_host_pages as f64
    };
    json.push_str("  ],\n  \"writes\": {\n");
    json.push_str(&format!(
        "    \"requests\": {n_mix}, \"served\": {}, \"write_settled\": {}, \"write_lost\": {}, \"delayed\": {},\n",
        mix.served, mix.write_settled, mix.write_lost, mix.delayed
    ));
    json.push_str(&format!(
        "    \"gc_host_pages\": {}, \"gc_pages\": {}, \"gc_relocated\": {}, \"gc_erases\": {}, \"write_amplification\": {write_amp:.4},\n",
        mix.gc_host_pages, mix.gc_pages, mix.gc_relocated, mix.gc_erases
    ));
    json.push_str(&format!(
        "    \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \"deadline_violations\": {}\n",
        mix.p50_latency_ns, mix.p99_latency_ns, mix.p999_latency_ns, mix.max_latency_ns, mix.deadline_violations
    ));
    json.push_str("  }\n}\n");

    let path = "BENCH_server.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_server(&mut criterion);
}
