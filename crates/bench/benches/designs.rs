//! Design-construction and sampling benchmarks: Steiner systems, axiom
//! verification, and the Monte-Carlo `P_k` estimate behind Fig. 4 and the
//! statistical admission controller.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqos_decluster::sampling::optimal_retrieval_probabilities;
use fqos_decluster::DesignTheoretic;
use fqos_designs::steiner::steiner_triple_system;
use std::hint::black_box;

fn bench_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("designs");
    for &v in &[9usize, 13, 33, 99] {
        if steiner_triple_system(v).is_err() {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("construct_sts", v), &v, |b, &v| {
            b.iter(|| steiner_triple_system(black_box(v)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("verify_sts", v), &v, |b, &v| {
            let d = steiner_triple_system(v).unwrap();
            b.iter(|| black_box(&d).verify().unwrap());
        });
    }

    let scheme = DesignTheoretic::paper_9_3_1();
    group.bench_function("p_k_sampling_1k_trials", |b| {
        b.iter(|| optimal_retrieval_probabilities(black_box(&scheme), 10, 1_000, 7));
    });
    group.finish();
}

criterion_group!(benches, bench_designs);
criterion_main!(benches);
