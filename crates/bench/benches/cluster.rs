//! Fleet-scaling benchmarks for the cluster tier: N arrays behind the
//! consistent-hash router, one submitter thread per array, every array's
//! admission controller full at S(2) = 14 per window.
//!
//! Besides the per-benchmark lines, the run writes `BENCH_cluster.json`
//! (aggregate req/s, per-array utilization spread, worst-array p99/p99.9,
//! rebalance counts, and the 4-array vs single-array admitted-throughput
//! speedup) and asserts the cluster conservation law on every run.

use criterion::{Criterion, Throughput};
use fqos_cluster::{ClusterConfig, ClusterMetrics, QosCluster};
use fqos_core::{OverloadPolicy, QosConfig};
use fqos_server::ServerConfig;
use std::hint::black_box;
use std::io::Write;

const WINDOWS: u64 = 120;
const TENANTS_PER_ARRAY: usize = 2;

/// Drive one fleet run: `arrays` identical (9,3,1) arrays at M = 2, two
/// pinned tenants per array splitting its S(2) = 14, one submitter thread
/// per array replaying `WINDOWS` full intervals. Returns the submission
/// count and the final fleet metrics.
fn run_fleet(arrays: usize) -> (u64, ClusterMetrics) {
    let qos = QosConfig::paper_9_3_1().with_accesses(2); // S(2) = 14
    let t = qos.interval_ns;
    let limit = qos.request_limit();
    let cluster = QosCluster::new(ClusterConfig::uniform(
        arrays,
        &ServerConfig::new(qos).with_workers(4).with_queue_depth(64),
    ))
    .expect("valid config");

    let base = limit / TENANTS_PER_ARRAY;
    let extra = limit % TENANTS_PER_ARRAY;
    let plan: Vec<(usize, Vec<(u64, usize)>)> = (0..arrays)
        .map(|a| {
            let tenants: Vec<(u64, usize)> = (0..TENANTS_PER_ARRAY)
                .map(|i| ((a * 10 + i + 1) as u64, base + usize::from(i < extra)))
                .collect();
            for &(tenant, reserved) in &tenants {
                cluster
                    .register_pinned(a, tenant, reserved, OverloadPolicy::Delay)
                    .expect("within S(M)");
            }
            (a, tenants)
        })
        .collect();

    let threads: Vec<_> = plan
        .into_iter()
        .map(|(a, tenants)| {
            let mut h = cluster.handle();
            std::thread::spawn(move || {
                let mut n = 0u64;
                for w in 0..WINDOWS {
                    let mut i = 0u64;
                    for &(tenant, reserved) in &tenants {
                        for _ in 0..reserved as u64 {
                            h.submit(tenant, ((a as u64) << 32) | (w * 31 + i), w * t + i);
                            n += 1;
                            i += 1;
                        }
                    }
                }
                n
            })
        })
        .collect();
    let submitted: u64 = threads.into_iter().map(|j| j.join().unwrap()).sum();
    let m = cluster.finish();
    assert!(
        m.conserved(),
        "cluster law must close: {}",
        m.render_audit()
    );
    for s in &m.arrays {
        assert_eq!(
            s.guaranteed_violations, 0,
            "bench workload must stay deterministic"
        );
    }
    (submitted, m)
}

/// The skew scenario at bench scale: everyone pinned on array 0 of 2,
/// tenant 1 overdriving 2×, one control tick per window. Exactly one
/// rebalance heals the fleet.
fn run_skew() -> ClusterMetrics {
    let qos = QosConfig::paper_9_3_1(); // S(1) = 5
    let t = qos.interval_ns;
    let cluster = QosCluster::new(ClusterConfig::uniform(
        2,
        &ServerConfig::new(qos).with_workers(4),
    ))
    .expect("valid config");
    for &(tenant, reserved) in &[(1u64, 2usize), (2, 2), (3, 1)] {
        cluster
            .register_pinned(0, tenant, reserved, OverloadPolicy::Delay)
            .expect("within S(M)");
    }
    let mut handle = cluster.handle();
    for w in 0..WINDOWS {
        let mut i = 0u64;
        for &(tenant, rate) in &[(1u64, 4u64), (2, 2), (3, 1)] {
            for _ in 0..rate {
                handle.submit(tenant, w * 31 + i, w * t + i * 1_000);
                i += 1;
            }
        }
        cluster.control_tick();
    }
    drop(handle);
    let m = cluster.finish();
    assert!(
        m.conserved(),
        "cluster law must close: {}",
        m.render_audit()
    );
    m
}

fn bench_cluster(c: &mut Criterion) {
    let per_array = WINDOWS * 14; // S(2) requests per window, every window full

    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.throughput(Throughput::Elements(per_array));
    group.bench_function("fleet/1_array", |b| {
        b.iter(|| black_box(run_fleet(1)));
    });
    group.bench_function("fleet/2_arrays", |b| {
        b.iter(|| black_box(run_fleet(2)));
    });
    group.bench_function("fleet/4_arrays", |b| {
        b.iter(|| black_box(run_fleet(4)));
    });
    group.finish();

    // Instrumented runs for the figures the timing loop cannot see.
    let (n1, m1) = run_fleet(1);
    let (n4, m4) = run_fleet(4);
    let skew = run_skew();

    // Admitted-throughput speedup: what the fleet sustains per simulated
    // interval vs one array. This is the QoS-relevant capacity figure —
    // each window the 4-array fleet admits 4 × S(2) against deadlines the
    // audit then verifies — and unlike the wall-clock medians above (CPU
    // cost of simulation, bounded by host cores) it is machine-independent.
    let per_window_1 = m1.admitted_total() as f64 / WINDOWS as f64;
    let per_window_4 = m4.admitted_total() as f64 / WINDOWS as f64;
    let speedup = per_window_4 / per_window_1;
    assert!(
        speedup >= 3.0,
        "4-array fleet must sustain >= 3x single-array admitted throughput, got {speedup:.2}x"
    );

    let mut json = String::from("{\n  \"bench\": \"cluster\",\n");
    json.push_str(&format!(
        "  \"config\": {{ \"design\": \"(9,3,1)\", \"accesses\": 2, \"limit_per_array\": 14, \"windows\": {WINDOWS}, \"tenants_per_array\": {TENANTS_PER_ARRAY}, \"requests_per_array\": {per_array} }},\n"
    ));
    json.push_str("  \"timing\": [\n");
    for (i, r) in c.results.iter().enumerate() {
        let arrays = if r.id.contains("4_arrays") {
            4
        } else if r.id.contains("2_arrays") {
            2
        } else {
            1
        };
        let req_per_s = (arrays as u64 * per_array) as f64 / (r.median_ns * 1e-9);
        let sep = if i + 1 == c.results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"id\": \"{}\", \"arrays\": {arrays}, \"median_ns\": {:.0}, \"aggregate_req_per_s\": {req_per_s:.0} }}{sep}\n",
            r.id, r.median_ns
        ));
    }
    json.push_str("  ],\n  \"fleet\": [\n");
    for (i, (n, m)) in [(n1, &m1), (n4, &m4)].into_iter().enumerate() {
        let sep = if i == 1 { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"arrays\": {}, \"submitted\": {n}, \"admitted\": {}, \"utilization_spread\": {:.4}, \"p99_ns\": {}, \"p999_ns\": {}, \"rebalances\": {}, \"deadline_violations\": {}, \"law_conserved\": {} }}{sep}\n",
            m.arrays.len(),
            m.admitted_total(),
            m.utilization_spread(),
            m.p99_latency_ns(),
            m.p999_latency_ns(),
            m.rebalances,
            m.deadline_violations(),
            m.conserved(),
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_admitted_throughput_4x1\": {speedup:.2},\n  \"admitted_per_window\": {{ \"1_array\": {per_window_1:.1}, \"4_arrays\": {per_window_4:.1} }},\n"
    ));
    json.push_str(&format!(
        "  \"rebalance_scenario\": {{ \"arrays\": 2, \"rebalances\": {}, \"admitted\": {}, \"rejected\": {}, \"deadline_violations\": {}, \"law_conserved\": {} }}\n",
        skew.rebalances,
        skew.admitted_total(),
        skew.rejected(),
        skew.deadline_violations(),
        skew.conserved(),
    ));
    json.push_str("}\n");

    let path = "BENCH_cluster.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_cluster(&mut criterion);
}
