//! Retrieval algorithm micro-benchmarks — the §III-C complexity claim:
//! design-theoretic retrieval is `O(b)` and much cheaper than the exact
//! `O(b³)` max-flow, which is why the hybrid only falls back on demand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqos_decluster::retrieval::{design_theoretic_retrieval, hybrid_retrieval, max_flow_retrieval};
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use std::hint::black_box;

fn random_request(scheme: &DesignTheoretic, b: usize, seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    (0..b)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % scheme.num_buckets()
        })
        .collect()
}

fn bench_retrieval(c: &mut Criterion) {
    let scheme = DesignTheoretic::paper_9_3_1();
    let mut group = c.benchmark_group("retrieval");
    for &b in &[5usize, 14, 27, 36, 72] {
        let buckets = random_request(&scheme, b, 42);
        let reqs: Vec<&[usize]> = buckets.iter().map(|&x| scheme.replicas(x)).collect();
        group.bench_with_input(
            BenchmarkId::new("design_theoretic", b),
            &reqs,
            |bench, reqs| bench.iter(|| design_theoretic_retrieval(black_box(reqs), 9)),
        );
        group.bench_with_input(BenchmarkId::new("max_flow", b), &reqs, |bench, reqs| {
            bench.iter(|| max_flow_retrieval(black_box(reqs), 9));
        });
        group.bench_with_input(BenchmarkId::new("hybrid", b), &reqs, |bench, reqs| {
            bench.iter(|| hybrid_retrieval(black_box(reqs), 9));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
