//! Admission-control micro-benchmarks: the §III-A claim that admission is
//! "quite simple" (O(1)) and the statistical `Q < ε` test, plus the
//! incremental max-flow probe used online.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqos_core::{AppAdmission, StatisticalCounters};
use fqos_decluster::sampling::optimal_retrieval_probabilities;
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use fqos_maxflow::IncrementalRetrieval;
use std::hint::black_box;

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission");

    group.bench_function("deterministic_register", |b| {
        b.iter(|| {
            let mut ac = AppAdmission::new(5);
            for app in 0..5u64 {
                black_box(ac.register(app, 1));
            }
            black_box(ac.register(99, 1))
        });
    });

    // Statistical Q with a populated history.
    let scheme = DesignTheoretic::paper_9_3_1();
    let p = optimal_retrieval_probabilities(&scheme, 20, 2_000, 1);
    let mut counters = StatisticalCounters::new();
    let mut state = 1u64;
    for _ in 0..10_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        counters.record_interval(((state >> 33) % 12) as usize);
    }
    group.bench_function("statistical_would_admit", |b| {
        b.iter(|| black_box(counters.would_admit(black_box(9), &p, 0.01)));
    });

    // Online feasibility probe via incremental max-flow.
    for &m in &[1usize, 2] {
        group.bench_with_input(BenchmarkId::new("incremental_try_add", m), &m, |b, &m| {
            b.iter(|| {
                let mut inc = IncrementalRetrieval::new(9, m);
                let mut admitted = 0;
                for bucket in 0..36usize {
                    if inc.try_add(scheme.replicas(bucket)) {
                        admitted += 1;
                    }
                }
                black_box(admitted)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
