//! End-to-end pipeline benchmarks: the Fig. 8 (online), Fig. 12 (interval)
//! and Table III (baseline) pathways on a reduced Exchange workload, plus
//! the original-layout replay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fqos_core::mapping::MappingStrategy;
use fqos_core::{QosConfig, QosPipeline};
use fqos_decluster::Raid1Mirrored;
use fqos_traces::models::exchange::ExchangeConfig;
use fqos_traces::Trace;
use std::hint::black_box;

fn workload() -> Trace {
    fqos_traces::models::exchange(ExchangeConfig {
        intervals: 4,
        interval_ns: 100_000_000,
        peak_rate_per_s: 5_000.0,
        seed: 9,
    })
    .generate()
}

fn bench_pipeline(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);

    let fim = QosPipeline::new(QosConfig::paper_9_3_1());
    let modulo = QosPipeline::new(QosConfig::paper_9_3_1()).with_mapping(MappingStrategy::Modulo);

    group.bench_function("online_fim", |b| {
        b.iter(|| black_box(fim.run_online(&trace)));
    });
    group.bench_function("online_modulo", |b| {
        b.iter(|| black_box(modulo.run_online(&trace)));
    });
    group.bench_function("interval_design_theoretic", |b| {
        b.iter(|| black_box(modulo.run_interval().run(&trace)));
    });
    group.bench_function("baseline_mirrored", |b| {
        let scheme = Raid1Mirrored::paper();
        b.iter(|| black_box(modulo.run_interval().run_baseline(&trace, &scheme)));
    });
    group.bench_function("original_replay", |b| {
        b.iter(|| black_box(fim.run_original(&trace)));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
