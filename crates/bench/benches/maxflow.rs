//! Max-flow algorithm comparison on retrieval-shaped networks: Dinic vs
//! Edmonds–Karp vs push–relabel, across request sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqos_maxflow::{dinic, edmonds_karp, push_relabel, FlowNetwork};
use std::hint::black_box;

/// Build a retrieval network: b blocks × 9 devices, 3 replicas each,
/// device capacity ⌈b/9⌉.
fn retrieval_network(b: usize, seed: u64) -> FlowNetwork {
    let devices = 9;
    let sink = b + devices + 1;
    let mut net = FlowNetwork::new(sink + 1, 0, sink);
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    for i in 0..b {
        net.add_edge(0, 1 + i, 1);
        let base = next() % devices;
        for c in 0..3 {
            net.add_edge(1 + i, 1 + b + (base + c * 3) % devices, 1);
        }
    }
    let cap = b.div_ceil(devices) as u64;
    for d in 0..devices {
        net.add_edge(1 + b + d, sink, cap);
    }
    net
}

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow");
    for &b in &[9usize, 36, 144, 576] {
        let net = retrieval_network(b, 7);
        group.bench_with_input(BenchmarkId::new("dinic", b), &net, |bench, net| {
            bench.iter(|| {
                let mut g = net.clone();
                black_box(dinic::max_flow(&mut g))
            });
        });
        group.bench_with_input(BenchmarkId::new("edmonds_karp", b), &net, |bench, net| {
            bench.iter(|| {
                let mut g = net.clone();
                black_box(edmonds_karp::max_flow(&mut g))
            });
        });
        group.bench_with_input(BenchmarkId::new("push_relabel", b), &net, |bench, net| {
            bench.iter(|| {
                let mut g = net.clone();
                black_box(push_relabel::max_flow(&mut g))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maxflow);
criterion_main!(benches);
