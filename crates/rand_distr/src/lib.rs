//! Offline stand-in for the `rand_distr` crate (0.4 API subset).
//!
//! Ships the distributions the workload models consume: [`Normal`] and
//! [`LogNormal`] (Box–Muller), [`Poisson`] (exponential inter-arrival
//! counting, normal approximation for large rates) and bounded [`Zipf`]
//! (midpoint-envelope rejection). Sampling quality is adequate for the
//! statistical assertions in this repo's tests (tolerances of a few
//! percent); streams differ from upstream.

use rand::Rng;
use std::fmt;

/// Types that can be sampled with an [`Rng`].
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid-parameter error shared by all constructors here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Uniform `f64` in `(0, 1]` — safe as a logarithm argument.
fn unit_open_zero<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    1.0 - u
}

/// Standard normal via Box–Muller (one value per draw; the discarded twin
/// keeps the implementation stateless).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_open_zero(rng);
    let u2 = unit_open_zero(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(ParamError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Construct from the underlying normal's `mu` and `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Poisson distribution with rate `lambda`.
///
/// Exact for `lambda <= 720` (count of unit-exponential inter-arrivals
/// within `lambda`); normal approximation `N(lambda, lambda)` beyond, where
/// the relative discretization error is < 0.2 %.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

/// Largest rate sampled exactly. Chosen so the O(lambda) loop stays cheap
/// and `(-lambda).exp()` style underflow is never approached.
const POISSON_EXACT_MAX: f64 = 720.0;

impl Poisson {
    /// Construct; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("Poisson requires lambda > 0"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda <= POISSON_EXACT_MAX {
            // Count unit-rate exponential inter-arrival times fitting in
            // lambda: k ~ Poisson(lambda), exactly.
            let mut acc = 0.0;
            let mut k = 0u64;
            loop {
                acc += -unit_open_zero(rng).ln();
                if acc > self.lambda {
                    return k as f64;
                }
                k += 1;
            }
        }
        (self.lambda + self.lambda.sqrt() * standard_normal(rng))
            .round()
            .max(0.0)
    }
}

/// Bounded Zipf distribution on `{1, …, n}` with exponent `s > 0`:
/// `P(k) ∝ k⁻ˢ`.
///
/// Rejection sampling against the continuous envelope `x⁻ˢ` on
/// `[0.5, n + 0.5]`; the midpoint rule under-estimates the integral of a
/// convex function, so each integer's envelope mass dominates its target
/// mass and acceptance is exact.
#[derive(Debug, Clone, Copy)]
pub struct Zipf<F> {
    n: u64,
    s: F,
    /// `h_int(0.5)` and `h_int(n + 0.5)` cached.
    h_lo: F,
    h_hi: F,
}

impl Zipf<f64> {
    /// Construct; `n >= 1`, `s > 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ParamError("Zipf requires s > 0"));
        }
        let h = |x: f64| h_int(x, s);
        Ok(Zipf {
            n,
            s,
            h_lo: h(0.5),
            h_hi: h(n as f64 + 0.5),
        })
    }
}

/// `∫ x⁻ˢ dx`: `x^(1-s)/(1-s)` for `s ≠ 1`, `ln x` at `s = 1`.
fn h_int(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        x.powf(1.0 - s) / (1.0 - s)
    }
}

/// Inverse of [`h_int`].
fn h_int_inv(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        y.exp()
    } else {
        (y * (1.0 - s)).powf(1.0 / (1.0 - s))
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.n == 1 {
            return 1.0;
        }
        let s = self.s;
        loop {
            let u = self.h_lo + unit_open_zero(rng) * (self.h_hi - self.h_lo);
            let x = h_int_inv(u, s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let envelope = h_int(k + 0.5, s) - h_int(k - 0.5, s);
            let target = k.powf(-s);
            if unit_open_zero(rng) * envelope <= target {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(samples: impl Iterator<Item = f64>) -> (f64, usize) {
        let v: Vec<f64> = samples.collect();
        (v.iter().sum::<f64>() / v.len() as f64, v.len())
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "{mean}");
        assert!((var - 4.0).abs() < 0.15, "{var}");
    }

    #[test]
    fn lognormal_with_mean_one_parameterization() {
        // mu = -sigma^2/2 gives E[X] = 1, the workload models' convention.
        let sigma = 1.0f64;
        let d = LogNormal::new(-sigma * sigma / 2.0, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let (mean, _) = mean_of((0..200_000).map(|_| d.sample(&mut rng)));
        assert!((mean - 1.0).abs() < 0.05, "{mean}");
    }

    #[test]
    fn poisson_small_lambda_exact_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Poisson::new(4.5).unwrap();
        let (mean, _) = mean_of((0..100_000).map(|_| d.sample(&mut rng)));
        assert!((mean - 4.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn poisson_large_lambda_approximate_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Poisson::new(5_000.0).unwrap();
        let (mean, _) = mean_of((0..5_000).map(|_| d.sample(&mut rng)));
        assert!((mean - 5_000.0).abs() < 10.0, "{mean}");
        let mut rng2 = StdRng::seed_from_u64(5);
        assert!(d.sample(&mut rng2) >= 0.0);
    }

    #[test]
    fn poisson_rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(1e-12).is_ok());
    }

    #[test]
    fn zipf_frequencies_follow_power_law() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = Zipf::new(100, 1.0).unwrap();
        let mut counts = [0u32; 101];
        let trials = 200_000;
        for _ in 0..trials {
            let k = d.sample(&mut rng) as usize;
            assert!((1..=100).contains(&k));
            counts[k] += 1;
        }
        // P(1)/P(2) should be ~2, P(1)/P(10) ~10 for s = 1.
        let r12 = counts[1] as f64 / counts[2] as f64;
        let r1_10 = counts[1] as f64 / counts[10] as f64;
        assert!((1.8..2.2).contains(&r12), "{r12}");
        assert!((8.5..11.5).contains(&r1_10), "{r1_10}");
    }

    #[test]
    fn zipf_sub_unit_exponent_covers_tail() {
        // s < 1 (the workload models use 0.8–0.9) still reaches large ranks.
        let mut rng = StdRng::seed_from_u64(7);
        let d = Zipf::new(10_000, 0.8).unwrap();
        let mut max_seen = 0.0f64;
        for _ in 0..50_000 {
            let k = d.sample(&mut rng);
            assert!((1.0..=10_000.0).contains(&k));
            max_seen = max_seen.max(k);
        }
        assert!(max_seen > 5_000.0, "{max_seen}");
    }

    #[test]
    fn zipf_degenerate_n1() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = Zipf::new(1, 0.9).unwrap();
        assert_eq!(d.sample(&mut rng), 1.0);
    }
}
