//! The allocation-scheme abstraction.

pub use fqos_designs::{BucketId, DeviceId};

/// A replicated declustering scheme: a fixed table mapping every bucket to
/// the ordered tuple of devices holding its replicas (first = primary copy).
pub trait AllocationScheme {
    /// Scheme name for reports.
    fn name(&self) -> &str;

    /// Number of devices `N`.
    fn devices(&self) -> usize;

    /// Replication factor `c`.
    fn copies(&self) -> usize;

    /// Number of distinct buckets the scheme supports.
    fn num_buckets(&self) -> usize;

    /// Ordered replica tuple of a bucket (`bucket < num_buckets`).
    fn replicas(&self, bucket: BucketId) -> &[DeviceId];

    /// Map an arbitrary data-block number onto a bucket (the paper's modulo
    /// rule for blocks not matched by FIM).
    fn bucket_for_lbn(&self, lbn: u64) -> BucketId {
        (lbn % self.num_buckets() as u64) as usize
    }

    /// Validate structural invariants: every tuple has `c` distinct in-range
    /// devices. Returns a description of the first violation.
    fn validate(&self) -> Result<(), String> {
        for b in 0..self.num_buckets() {
            let r = self.replicas(b);
            if r.len() != self.copies() {
                return Err(format!(
                    "bucket {b}: {} replicas, expected {}",
                    r.len(),
                    self.copies()
                ));
            }
            for (i, &d) in r.iter().enumerate() {
                if d >= self.devices() {
                    return Err(format!("bucket {b}: device {d} out of range"));
                }
                if r[..i].contains(&d) {
                    return Err(format!("bucket {b}: device {d} repeated"));
                }
            }
        }
        Ok(())
    }

    /// Per-device primary-copy load over all buckets (a balance diagnostic).
    fn primary_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.devices()];
        for b in 0..self.num_buckets() {
            loads[self.replicas(b)[0]] += 1;
        }
        loads
    }
}

/// A boxed scheme, handy for heterogeneous comparisons in the benches.
pub type DynScheme = Box<dyn AllocationScheme + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        table: Vec<Vec<usize>>,
    }

    impl AllocationScheme for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn devices(&self) -> usize {
            3
        }
        fn copies(&self) -> usize {
            2
        }
        fn num_buckets(&self) -> usize {
            self.table.len()
        }
        fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
            &self.table[bucket]
        }
    }

    #[test]
    fn validate_catches_violations() {
        let good = Toy {
            table: vec![vec![0, 1], vec![1, 2]],
        };
        assert!(good.validate().is_ok());
        let dup = Toy {
            table: vec![vec![1, 1]],
        };
        assert!(dup.validate().is_err());
        let out = Toy {
            table: vec![vec![0, 7]],
        };
        assert!(out.validate().is_err());
        let short = Toy {
            table: vec![vec![0]],
        };
        assert!(short.validate().is_err());
    }

    #[test]
    fn lbn_mapping_wraps() {
        let s = Toy {
            table: vec![vec![0, 1], vec![1, 2]],
        };
        assert_eq!(s.bucket_for_lbn(0), 0);
        assert_eq!(s.bucket_for_lbn(3), 1);
    }

    #[test]
    fn primary_loads_count_first_copies() {
        let s = Toy {
            table: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
        };
        assert_eq!(s.primary_loads(), vec![2, 1, 0]);
    }
}
