//! Dependent periodic allocation (Tosun & Ferhatosmanoglu, ICPP 2002).
//!
//! Copy `j` of bucket `b` is stored at device `(b + j·shift) mod N` — each
//! additional copy is a shifted version of the first allocation. Good for
//! range/connected queries (neighbouring buckets spread over neighbouring
//! devices), weaker for arbitrary queries (§II-B2).

use crate::scheme::{AllocationScheme, BucketId, DeviceId};

/// Dependent periodic allocation with a configurable shift.
#[derive(Debug, Clone)]
pub struct DependentPeriodic {
    devices: usize,
    copies: usize,
    table: Vec<Vec<DeviceId>>,
    name: String,
}

impl DependentPeriodic {
    /// Build with the given `shift` between consecutive copies. `shift = 1`
    /// coincides with RAID-1 chained; larger coprime shifts spread copies
    /// further apart.
    pub fn new(devices: usize, copies: usize, shift: usize, num_buckets: usize) -> Self {
        assert!(copies <= devices);
        assert!(shift >= 1);
        // Distinctness of the c devices requires j·shift mod N distinct for
        // j in 0..c, which holds when shift·(c−1) < N or gcd(shift, N) has
        // large enough order; validate eagerly.
        let table: Vec<Vec<DeviceId>> = (0..num_buckets)
            .map(|b| (0..copies).map(|j| (b + j * shift) % devices).collect())
            .collect();
        let s = DependentPeriodic {
            devices,
            copies,
            table,
            name: format!("dependent periodic (shift {shift}, {devices} devices, {copies} copies)"),
        };
        s.validate()
            .expect("shift must place copies on distinct devices");
        s
    }
}

impl AllocationScheme for DependentPeriodic {
    fn name(&self) -> &str {
        &self.name
    }
    fn devices(&self) -> usize {
        self.devices
    }
    fn copies(&self) -> usize {
        self.copies
    }
    fn num_buckets(&self) -> usize {
        self.table.len()
    }
    fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        &self.table[bucket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_one_is_chained() {
        let p = DependentPeriodic::new(9, 3, 1, 36);
        let c = crate::Raid1Chained::paper();
        for b in 0..36 {
            assert_eq!(p.replicas(b), c.replicas(b));
        }
    }

    #[test]
    fn larger_shift_spreads_copies() {
        let p = DependentPeriodic::new(9, 3, 4, 36);
        p.validate().unwrap();
        assert_eq!(p.replicas(0), &[0, 4, 8]);
        assert_eq!(p.replicas(1), &[1, 5, 0]);
    }

    #[test]
    #[should_panic]
    fn degenerate_shift_panics() {
        // shift 3 with 9 devices puts copies 0 and 3 apart, but copy 3·3 = 9
        // ≡ 0 would collide if copies = 4.
        DependentPeriodic::new(9, 4, 3, 36);
    }
}
