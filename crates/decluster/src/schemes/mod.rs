//! Concrete allocation schemes.

pub mod design_theoretic;
pub mod orthogonal;
pub mod partitioned;
pub mod periodic;
pub mod raid;
pub mod rda;
