//! Partitioned allocation (Ferhatosmanoglu et al., DAPD 2006).
//!
//! Devices are split into groups and every bucket is replicated on all
//! devices of one group, cycling over the groups. Reasonable for range
//! queries, poor for arbitrary queries (§II-B2) — requests that happen to
//! map to the same group serialize at `⌈b_g / c⌉`.

use crate::scheme::{AllocationScheme, BucketId, DeviceId};

/// Partitioned replication with groups of size `copies`.
#[derive(Debug, Clone)]
pub struct Partitioned {
    devices: usize,
    copies: usize,
    table: Vec<Vec<DeviceId>>,
    name: String,
}

impl Partitioned {
    /// Build with `devices` split into `devices / copies` groups, assigning
    /// buckets to groups round-robin and rotating the in-group order.
    ///
    /// Unlike [`crate::Raid1Mirrored`] (whose groups are contiguous device
    /// ranges), partitioned groups stride across the array: group `g` holds
    /// devices `{g, g + G, g + 2G, …}` where `G` is the group count.
    pub fn new(devices: usize, copies: usize, num_buckets: usize) -> Self {
        assert!(copies >= 1 && devices.is_multiple_of(copies));
        let groups = devices / copies;
        let table = (0..num_buckets)
            .map(|b| {
                let g = b % groups;
                let rot = (b / groups) % copies;
                (0..copies)
                    .map(|p| g + ((p + rot) % copies) * groups)
                    .collect()
            })
            .collect();
        Partitioned {
            devices,
            copies,
            table,
            name: format!("partitioned ({devices} devices, {copies} copies)"),
        }
    }
}

impl AllocationScheme for Partitioned {
    fn name(&self) -> &str {
        &self.name
    }
    fn devices(&self) -> usize {
        self.devices
    }
    fn copies(&self) -> usize {
        self.copies
    }
    fn num_buckets(&self) -> usize {
        self.table.len()
    }
    fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        &self.table[bucket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_groups() {
        let s = Partitioned::new(9, 3, 36);
        s.validate().unwrap();
        // Group 0 = {0, 3, 6}, group 1 = {1, 4, 7}, group 2 = {2, 5, 8}.
        let mut r0 = s.replicas(0).to_vec();
        r0.sort_unstable();
        assert_eq!(r0, vec![0, 3, 6]);
        let mut r1 = s.replicas(1).to_vec();
        r1.sort_unstable();
        assert_eq!(r1, vec![1, 4, 7]);
    }

    #[test]
    fn buckets_in_same_group_conflict() {
        // Buckets 0, 3, 6, ... all map to group 0 — the weakness for
        // arbitrary queries.
        let s = Partitioned::new(9, 3, 36);
        let set0: std::collections::BTreeSet<_> = s.replicas(0).iter().copied().collect();
        let set3: std::collections::BTreeSet<_> = s.replicas(3).iter().copied().collect();
        assert_eq!(set0, set3);
    }

    #[test]
    fn rotations_shift_primary() {
        let s = Partitioned::new(9, 3, 36);
        assert_ne!(s.replicas(0)[0], s.replicas(3)[0]);
    }
}
