//! Design-theoretic allocation — the paper's scheme.

use crate::scheme::{AllocationScheme, BucketId, DeviceId};
use fqos_designs::{Design, RetrievalGuarantee, RotatedDesign};

/// Buckets are assigned to devices by the (rotated) blocks of an
/// `(N, c, 1)` design, giving the worst-case guarantee
/// `S(M) = (c−1)M² + cM` buckets in `M` accesses.
#[derive(Debug, Clone)]
pub struct DesignTheoretic {
    rotated: RotatedDesign,
    name: String,
}

impl DesignTheoretic {
    /// Build from a verified design.
    pub fn new(design: Design) -> Self {
        let name = format!(
            "design-theoretic ({},{},{})",
            design.v(),
            design.k(),
            design.lambda()
        );
        DesignTheoretic {
            rotated: RotatedDesign::new(design),
            name,
        }
    }

    /// The paper's `(9,3,1)` configuration.
    pub fn paper_9_3_1() -> Self {
        DesignTheoretic::new(fqos_designs::known::design_9_3_1())
    }

    /// The `(13,3,1)` configuration used for TPC-E.
    pub fn paper_13_3_1() -> Self {
        DesignTheoretic::new(fqos_designs::known::design_13_3_1())
    }

    /// The underlying rotated design.
    pub fn rotated(&self) -> &RotatedDesign {
        &self.rotated
    }

    /// The worst-case retrieval guarantee.
    pub fn guarantee(&self) -> RetrievalGuarantee {
        self.rotated.guarantee()
    }
}

impl AllocationScheme for DesignTheoretic {
    fn name(&self) -> &str {
        &self.name
    }

    fn devices(&self) -> usize {
        self.rotated.devices()
    }

    fn copies(&self) -> usize {
        self.rotated.copies()
    }

    fn num_buckets(&self) -> usize {
        self.rotated.num_buckets()
    }

    fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        self.rotated.replicas(bucket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_valid() {
        let s = DesignTheoretic::paper_9_3_1();
        s.validate().unwrap();
        assert_eq!(s.devices(), 9);
        assert_eq!(s.copies(), 3);
        assert_eq!(s.num_buckets(), 36);
        assert_eq!(s.guarantee().buckets_in(1), 5);
    }

    #[test]
    fn tpce_configuration_is_valid() {
        let s = DesignTheoretic::paper_13_3_1();
        s.validate().unwrap();
        assert_eq!(s.devices(), 13);
        assert_eq!(s.num_buckets(), 78);
    }

    #[test]
    fn every_device_pair_shares_at_most_one_block() {
        // The λ = 1 property seen through the scheme interface: over the 12
        // base blocks (buckets 0, 3, 6, ... are rotation-0), each unordered
        // device pair appears exactly once.
        let s = DesignTheoretic::paper_9_3_1();
        let mut pair_seen = std::collections::HashSet::new();
        for base in (0..s.num_buckets()).step_by(3) {
            let r = s.replicas(base);
            for i in 0..r.len() {
                for j in (i + 1)..r.len() {
                    let key = (r[i].min(r[j]), r[i].max(r[j]));
                    assert!(pair_seen.insert(key), "pair {key:?} repeated");
                }
            }
        }
        assert_eq!(pair_seen.len(), 36);
    }
}
