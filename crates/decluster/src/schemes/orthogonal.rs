//! Orthogonal allocation (Tosun SAC 2004; Ferhatosmanoglu et al. PODS 2004).
//!
//! Two single-copy allocations are *orthogonal* when, viewing the pair of
//! devices each bucket lands on, every ordered pair appears at most once.
//! With `N` devices and up to `N²` buckets, bucket `b = i·N + j` stores its
//! first copy on device `j` and its second on `(i + j) mod N`: the pair
//! `(j, (i+j) mod N)` is distinct for every `(i, j)`, so the allocation is
//! orthogonal. It guarantees `⌈√b⌉ + 1`-ish retrieval for arbitrary
//! queries — weaker than the design-theoretic bound (§II-B3).

use crate::scheme::{AllocationScheme, BucketId, DeviceId};

/// Orthogonal two-copy allocation over `N` devices and up to `N·(N−1)`
/// buckets (diagonal buckets with both copies on one device are skipped).
#[derive(Debug, Clone)]
pub struct Orthogonal {
    devices: usize,
    table: Vec<Vec<DeviceId>>,
    name: String,
}

impl Orthogonal {
    /// Build with `num_buckets <= N·(N−1)` buckets.
    pub fn new(devices: usize, num_buckets: usize) -> Self {
        assert!(devices >= 2);
        assert!(
            num_buckets <= devices * (devices - 1),
            "orthogonal supports N(N-1) buckets"
        );
        let mut table = Vec::with_capacity(num_buckets);
        // Enumerate (i, j) pairs skipping i = 0 (where both copies coincide).
        'outer: for i in 1..devices {
            for j in 0..devices {
                if table.len() == num_buckets {
                    break 'outer;
                }
                table.push(vec![j, (i + j) % devices]);
            }
        }
        Orthogonal {
            devices,
            table,
            name: format!("orthogonal ({devices} devices, 2 copies)"),
        }
    }
}

impl AllocationScheme for Orthogonal {
    fn name(&self) -> &str {
        &self.name
    }
    fn devices(&self) -> usize {
        self.devices
    }
    fn copies(&self) -> usize {
        2
    }
    fn num_buckets(&self) -> usize {
        self.table.len()
    }
    fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        &self.table[bucket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_are_valid() {
        let s = Orthogonal::new(9, 72);
        s.validate().unwrap();
        assert_eq!(s.num_buckets(), 72);
    }

    #[test]
    fn ordered_pairs_are_unique() {
        let s = Orthogonal::new(9, 72);
        let mut seen = std::collections::HashSet::new();
        for b in 0..s.num_buckets() {
            let r = s.replicas(b);
            assert!(
                seen.insert((r[0], r[1])),
                "pair ({}, {}) repeated",
                r[0],
                r[1]
            );
        }
    }

    #[test]
    fn rejects_oversized_bucket_space() {
        let r = std::panic::catch_unwind(|| Orthogonal::new(3, 7));
        assert!(r.is_err());
    }
}
