//! The RAID-1 baselines of Table III (Fig. 7 layouts).

use crate::scheme::{AllocationScheme, BucketId, DeviceId};

/// RAID-1 *mirrored*: the `N` devices form `N/c` groups of `c` devices that
/// mirror each other completely. Bucket `b` belongs to group `b mod (N/c)`;
/// rotations of the in-group order spread primary copies (Fig. 7 shows
/// b0→{d0,d1,d2}, b1→{d3,d4,d5}, b2→{d6,d7,d8}, b3→{d0,d1,d2}, …).
#[derive(Debug, Clone)]
pub struct Raid1Mirrored {
    devices: usize,
    copies: usize,
    table: Vec<Vec<DeviceId>>,
    name: String,
}

impl Raid1Mirrored {
    /// Build with `devices` devices, `copies` copies per bucket and
    /// `num_buckets` supported buckets. `devices` must divide into groups of
    /// `copies`.
    pub fn new(devices: usize, copies: usize, num_buckets: usize) -> Self {
        assert!(
            copies >= 1 && devices.is_multiple_of(copies),
            "devices must split into c-sized groups"
        );
        let groups = devices / copies;
        // Fig. 7 lists num_buckets/copies base blocks cycling over the
        // groups in order; the remaining buckets are their rotations.
        let base = num_buckets.div_ceil(copies).max(1);
        let table = (0..num_buckets)
            .map(|b| {
                let g = b % groups;
                let rot = (b / base) % copies;
                (0..copies)
                    .map(|p| g * copies + (p + rot) % copies)
                    .collect()
            })
            .collect();
        Raid1Mirrored {
            devices,
            copies,
            table,
            name: format!("RAID-1 mirrored ({devices} devices, {copies} copies)"),
        }
    }

    /// The Table III configuration: 9 devices, 3 copies, 36 buckets.
    pub fn paper() -> Self {
        Raid1Mirrored::new(9, 3, 36)
    }
}

impl AllocationScheme for Raid1Mirrored {
    fn name(&self) -> &str {
        &self.name
    }
    fn devices(&self) -> usize {
        self.devices
    }
    fn copies(&self) -> usize {
        self.copies
    }
    fn num_buckets(&self) -> usize {
        self.table.len()
    }
    fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        &self.table[bucket]
    }
}

/// RAID-1 *chained* declustering: if the primary copy of bucket `b` is on
/// device `i`, the other copies are on `(i+1) mod N, …, (i+c−1) mod N`
/// (Fig. 7's second layout).
#[derive(Debug, Clone)]
pub struct Raid1Chained {
    devices: usize,
    copies: usize,
    table: Vec<Vec<DeviceId>>,
    name: String,
}

impl Raid1Chained {
    /// Build with `devices` devices, `copies` copies and `num_buckets`
    /// buckets; bucket `b`'s primary is device `b mod N`.
    pub fn new(devices: usize, copies: usize, num_buckets: usize) -> Self {
        assert!(copies <= devices);
        let table = (0..num_buckets)
            .map(|b| (0..copies).map(|p| (b + p) % devices).collect())
            .collect();
        Raid1Chained {
            devices,
            copies,
            table,
            name: format!("RAID-1 chained ({devices} devices, {copies} copies)"),
        }
    }

    /// The Table III configuration: 9 devices, 3 copies, 36 buckets.
    pub fn paper() -> Self {
        Raid1Chained::new(9, 3, 36)
    }
}

impl AllocationScheme for Raid1Chained {
    fn name(&self) -> &str {
        &self.name
    }
    fn devices(&self) -> usize {
        self.devices
    }
    fn copies(&self) -> usize {
        self.copies
    }
    fn num_buckets(&self) -> usize {
        self.table.len()
    }
    fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        &self.table[bucket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrored_matches_fig7() {
        let s = Raid1Mirrored::paper();
        s.validate().unwrap();
        assert_eq!(s.replicas(0), &[0, 1, 2]);
        assert_eq!(s.replicas(1), &[3, 4, 5]);
        assert_eq!(s.replicas(2), &[6, 7, 8]);
        assert_eq!(s.replicas(3), &[0, 1, 2]); // wraps to group 0 again
                                               // Rotation after a full pass over the rotations: b12 has rot
                                               // (12/3) % 3 = 1, so its primary shifts to d1 within group 0.
        assert_eq!(s.replicas(12), &[1, 2, 0]);
    }

    #[test]
    fn mirrored_groups_are_closed() {
        // All replicas of a bucket live in one mirror group.
        let s = Raid1Mirrored::paper();
        for b in 0..s.num_buckets() {
            let r = s.replicas(b);
            let g = r[0] / 3;
            assert!(r.iter().all(|&d| d / 3 == g), "bucket {b}: {r:?}");
        }
    }

    #[test]
    fn chained_matches_fig7() {
        let s = Raid1Chained::paper();
        s.validate().unwrap();
        assert_eq!(s.replicas(0), &[0, 1, 2]);
        assert_eq!(s.replicas(7), &[7, 8, 0]);
        assert_eq!(s.replicas(8), &[8, 0, 1]);
        assert_eq!(s.replicas(9), &[0, 1, 2]);
    }

    #[test]
    fn chained_primaries_are_balanced() {
        let s = Raid1Chained::paper();
        let loads = s.primary_loads();
        assert!(loads.iter().all(|&l| l == 4), "{loads:?}");
    }

    #[test]
    fn mirrored_requires_divisible_devices() {
        let r = std::panic::catch_unwind(|| Raid1Mirrored::new(10, 3, 30));
        assert!(r.is_err());
    }
}
