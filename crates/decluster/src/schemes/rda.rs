//! Random duplicate allocation (RDA) — Sanders, Egner & Korst (SODA 2000).
//!
//! Each bucket's `c` replicas go to devices chosen uniformly at random
//! (without repetition). Retrieval cost is at most one above optimal with
//! high probability, but — being random — the scheme can give no
//! deterministic guarantee (§II-B2).

use crate::scheme::{AllocationScheme, BucketId, DeviceId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// RDA with a seeded table so experiments are reproducible.
#[derive(Debug, Clone)]
pub struct RandomDuplicate {
    devices: usize,
    copies: usize,
    table: Vec<Vec<DeviceId>>,
    name: String,
}

impl RandomDuplicate {
    /// Build an RDA table of `num_buckets` buckets.
    pub fn new(devices: usize, copies: usize, num_buckets: usize, seed: u64) -> Self {
        assert!(copies <= devices);
        let mut rng = StdRng::seed_from_u64(seed);
        let all: Vec<DeviceId> = (0..devices).collect();
        let table = (0..num_buckets)
            .map(|_| {
                let mut choice = all.clone();
                choice.shuffle(&mut rng);
                choice.truncate(copies);
                choice
            })
            .collect();
        RandomDuplicate {
            devices,
            copies,
            table,
            name: format!("RDA ({devices} devices, {copies} copies)"),
        }
    }
}

impl AllocationScheme for RandomDuplicate {
    fn name(&self) -> &str {
        &self.name
    }
    fn devices(&self) -> usize {
        self.devices
    }
    fn copies(&self) -> usize {
        self.copies
    }
    fn num_buckets(&self) -> usize {
        self.table.len()
    }
    fn replicas(&self, bucket: BucketId) -> &[DeviceId] {
        &self.table[bucket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_tuples() {
        let s = RandomDuplicate::new(9, 3, 36, 7);
        s.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomDuplicate::new(9, 3, 36, 7);
        let b = RandomDuplicate::new(9, 3, 36, 7);
        let c = RandomDuplicate::new(9, 3, 36, 8);
        for i in 0..36 {
            assert_eq!(a.replicas(i), b.replicas(i));
        }
        assert!((0..36).any(|i| a.replicas(i) != c.replicas(i)));
    }

    #[test]
    fn covers_devices_roughly_uniformly() {
        let s = RandomDuplicate::new(9, 3, 3600, 42);
        let mut counts = vec![0usize; 9];
        for b in 0..s.num_buckets() {
            for &d in s.replicas(b) {
                counts[d] += 1;
            }
        }
        // 3600 × 3 / 9 = 1200 expected per device; allow ±15 %.
        assert!(
            counts.iter().all(|&c| (1020..1380).contains(&c)),
            "{counts:?}"
        );
    }
}
