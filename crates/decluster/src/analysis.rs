//! Worst-case retrieval-cost analysis of allocation schemes.
//!
//! §II-B2 ranks declustering schemes by their worst-case retrieval cost for
//! arbitrary queries. This module measures that cost empirically-exactly:
//! exhaustive enumeration for small request sizes, adversarial local search
//! plus random probing beyond — always scoring with the *exact* max-flow
//! scheduler so no heuristic slack leaks into the comparison.

use crate::scheme::AllocationScheme;
use fqos_maxflow::RetrievalNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Search effort for [`worst_case_accesses`].
#[derive(Debug, Clone, Copy)]
pub struct SearchEffort {
    /// Exhaustive enumeration is used while `C(num_buckets, b)` stays below
    /// this bound.
    pub exhaustive_limit: u64,
    /// Random starting sets for the adversarial search.
    pub random_starts: usize,
    /// Hill-climbing steps per start (swap one bucket, keep if cost does
    /// not decrease).
    pub climb_steps: usize,
}

impl Default for SearchEffort {
    fn default() -> Self {
        SearchEffort {
            exhaustive_limit: 200_000,
            random_starts: 200,
            climb_steps: 400,
        }
    }
}

/// The worst observed number of accesses to retrieve any `b` distinct
/// buckets of `scheme`, scored by exact max-flow. Exact (exhaustive) for
/// small instances, a lower bound on the true worst case otherwise.
pub fn worst_case_accesses<S: AllocationScheme + ?Sized>(
    scheme: &S,
    b: usize,
    effort: SearchEffort,
    seed: u64,
) -> usize {
    let n = scheme.num_buckets();
    assert!(b >= 1 && b <= n);
    let net = RetrievalNetwork::new(scheme.devices());
    let cost = |set: &[usize]| -> usize {
        let reqs: Vec<&[usize]> = set.iter().map(|&x| scheme.replicas(x)).collect();
        net.optimal_schedule(&reqs).accesses
    };

    if binomial(n, b) <= effort.exhaustive_limit {
        let mut worst = 0;
        let mut set: Vec<usize> = (0..b).collect();
        loop {
            worst = worst.max(cost(&set));
            if !next_combination(&mut set, n) {
                return worst;
            }
        }
    }

    // Adversarial: random restarts + hill climbing on single-bucket swaps.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = 0;
    for _ in 0..effort.random_starts {
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..b {
            let j = rng.gen_range(i..n);
            pool.swap(i, j);
        }
        let mut current = cost(&pool[..b]);
        for _ in 0..effort.climb_steps {
            let i = rng.gen_range(0..b);
            let j = rng.gen_range(b..n);
            pool.swap(i, j);
            let new_cost = cost(&pool[..b]);
            if new_cost >= current {
                current = new_cost; // accept sideways moves to escape plateaus
            } else {
                pool.swap(i, j); // revert
            }
        }
        worst = worst.max(current);
    }
    worst
}

/// Worst-case profile: worst accesses for each request size `1..=b_max`.
pub fn worst_case_profile<S: AllocationScheme + ?Sized>(
    scheme: &S,
    b_max: usize,
    effort: SearchEffort,
    seed: u64,
) -> Vec<usize> {
    (1..=b_max.min(scheme.num_buckets()))
        .map(|b| worst_case_accesses(scheme, b, effort, seed ^ b as u64))
        .collect()
}

fn binomial(n: usize, k: usize) -> u64 {
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u64) / (i + 1) as u64;
        if acc > 10_000_000_000 {
            return u64::MAX;
        }
    }
    acc
}

/// Advance `set` (sorted combination of `0..n`) to the next combination in
/// lexicographic order; false when exhausted.
fn next_combination(set: &mut [usize], n: usize) -> bool {
    let k = set.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if set[i] < n - k + i {
            set[i] += 1;
            for j in (i + 1)..k {
                set[j] = set[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignTheoretic, Raid1Chained, Raid1Mirrored};

    #[test]
    fn combination_iterator_is_complete() {
        let mut set = vec![0, 1];
        let mut count = 1;
        while next_combination(&mut set, 5) {
            count += 1;
        }
        assert_eq!(count, 10); // C(5,2)
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(36, 2), 630);
        assert_eq!(binomial(9, 9), 1);
        assert_eq!(binomial(36, 3), 7140);
    }

    #[test]
    fn design_worst_case_matches_guarantee_at_small_sizes() {
        // Exhaustive: any 1..=5 buckets of (9,3,1) cost exactly 1 access.
        let s = DesignTheoretic::paper_9_3_1();
        let effort = SearchEffort {
            exhaustive_limit: 500_000,
            ..Default::default()
        };
        for b in 1..=5 {
            assert_eq!(worst_case_accesses(&s, b, effort, 1), 1, "b = {b}");
        }
        // And the guarantee is tight: some 6-set costs 2.
        assert_eq!(worst_case_accesses(&s, 6, effort, 1), 2);
    }

    #[test]
    fn mirrored_worst_case_is_inferior() {
        // 4 buckets of one mirror group serialize: worst case ⌈4/3⌉ = 2 at
        // b = 4 already, while the design holds 1 until b = 6.
        let effort = SearchEffort {
            exhaustive_limit: 500_000,
            ..Default::default()
        };
        let mir = Raid1Mirrored::paper();
        let design = DesignTheoretic::paper_9_3_1();
        assert!(worst_case_accesses(&mir, 4, effort, 2) >= 2);
        assert_eq!(worst_case_accesses(&design, 4, effort, 2), 1);
    }

    #[test]
    fn chained_worst_case_between() {
        let effort = SearchEffort {
            exhaustive_limit: 500_000,
            ..Default::default()
        };
        let chained = Raid1Chained::paper();
        // Chained buckets {i, i+1, i+2}: buckets 0 and 9 share all devices…
        // 4 buckets from one 3-device chain window force 2 accesses.
        let w4 = worst_case_accesses(&chained, 4, effort, 3);
        assert!(w4 >= 2, "chained worst case at b=4 was {w4}");
    }

    #[test]
    fn adversarial_search_finds_known_bad_sets() {
        // Beyond the exhaustive limit, the adversarial search must still
        // discover that 10 buckets need 2 accesses (⌈10/9⌉) and that the
        // design guarantee S(2) = 14 holds.
        let s = DesignTheoretic::paper_9_3_1();
        let effort = SearchEffort {
            exhaustive_limit: 1, // force the adversarial path
            random_starts: 40,
            climb_steps: 120,
        };
        let w10 = worst_case_accesses(&s, 10, effort, 4);
        assert!(w10 == 2, "w10 = {w10}");
        let w14 = worst_case_accesses(&s, 14, effort, 4);
        assert!(w14 <= 2, "S(2) = 14 must cost ≤ 2, found {w14}");
    }
}
