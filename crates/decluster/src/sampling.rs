//! Monte-Carlo estimation of optimal-retrieval probabilities (Fig. 4).
//!
//! `P_k` is the probability that `k` buckets drawn uniformly from the
//! scheme's rotation-expanded bucket space are retrievable in the optimal
//! `⌈k/N⌉` accesses.
//!
//! The paper samples **with replacement** ("the same design block is
//! allowed to be chosen multiple times for fair results", §III-B1) and
//! treats every draw as a separate request needing its own device slot.
//! That reproduces the paper's reported values — `P_6 ≈ 0.99`,
//! `P_7 ≈ 0.98`, `P_8 ≈ 0.95`, `P_9 ≈ 0.75` (the dominant `P_9` failure
//! mode is nine draws not covering all nine devices:
//! `1 − 9·(2/3)⁹ ≈ 0.76`) — at the cost of making `P_k` for `k ≤ S(1)`
//! land slightly below 1 (duplicate draws of one bucket can exceed its
//! replica count, something a real system would coalesce). Fig. 4 plots
//! these as 1 at its resolution. [`Sampling::DistinctBuckets`] is the
//! coalesced alternative where the `S(M)` guarantees hold exactly.

use crate::scheme::AllocationScheme;
use fqos_maxflow::RetrievalNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// How request sets are drawn for the `P_k` estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sampling {
    /// The paper's method: draws with replacement, duplicates kept.
    #[default]
    WithReplacement,
    /// Draw `k` distinct buckets (duplicate requests coalesced); under this
    /// mode `P_k = 1` exactly for `k ≤ S(1)`.
    DistinctBuckets,
}

/// Estimated `P_k` table for `k = 1..=k_max`.
#[derive(Debug, Clone)]
pub struct OptimalRetrievalProbabilities {
    /// `p[k-1]` = estimated `P_k`.
    pub p: Vec<f64>,
    /// Trials used per request size.
    pub trials: usize,
    /// Sampling mode used.
    pub sampling: Sampling,
}

impl OptimalRetrievalProbabilities {
    /// `P_k` (1-based `k`); sizes beyond the table return 1.0 — by the time
    /// `k` is large the optimum `⌈k/N⌉` is loose enough that retrieval is
    /// essentially always optimal (Fig. 4 converges to 1).
    pub fn p_k(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        self.p.get(k - 1).copied().unwrap_or(1.0)
    }
}

/// Estimate `P_k` for `k = 1..=k_max` with `trials` samples each, using the
/// paper's with-replacement sampling. See [`optimal_retrieval_probabilities_with`]
/// to choose the sampling mode.
pub fn optimal_retrieval_probabilities<S: AllocationScheme + Sync + ?Sized>(
    scheme: &S,
    k_max: usize,
    trials: usize,
    seed: u64,
) -> OptimalRetrievalProbabilities {
    optimal_retrieval_probabilities_with(scheme, k_max, trials, seed, Sampling::WithReplacement)
}

/// Estimate `P_k` under an explicit sampling mode. Request sizes are
/// embarrassingly parallel; each `k` gets its own deterministic RNG stream
/// so results are reproducible regardless of thread scheduling.
pub fn optimal_retrieval_probabilities_with<S: AllocationScheme + Sync + ?Sized>(
    scheme: &S,
    k_max: usize,
    trials: usize,
    seed: u64,
    sampling: Sampling,
) -> OptimalRetrievalProbabilities {
    assert!(trials > 0);
    if sampling == Sampling::DistinctBuckets {
        assert!(
            k_max <= scheme.num_buckets(),
            "cannot draw more distinct buckets than the scheme supports"
        );
    }
    let net = RetrievalNetwork::new(scheme.devices());
    let n = scheme.num_buckets();
    let p: Vec<f64> = (1..=k_max)
        .into_par_iter()
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let mut optimal = 0usize;
            let mut pool: Vec<usize> = (0..n).collect();
            let mut reqs: Vec<&[usize]> = Vec::with_capacity(k);
            for _ in 0..trials {
                reqs.clear();
                match sampling {
                    Sampling::WithReplacement => {
                        for _ in 0..k {
                            reqs.push(scheme.replicas(rng.gen_range(0..n)));
                        }
                    }
                    Sampling::DistinctBuckets => {
                        // Partial Fisher–Yates: first k entries are the sample.
                        for i in 0..k {
                            let j = rng.gen_range(i..n);
                            pool.swap(i, j);
                            reqs.push(scheme.replicas(pool[i]));
                        }
                    }
                }
                if net.is_optimal_retrievable(&reqs) {
                    optimal += 1;
                }
            }
            optimal as f64 / trials as f64
        })
        .collect();
    OptimalRetrievalProbabilities {
        p,
        trials,
        sampling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignTheoretic, Raid1Mirrored};

    #[test]
    fn paper_fig4_values_for_9_3_1() {
        // Fig. 4 / §III-B1: P_6 ≈ 0.99, P_7 ≈ 0.98, P_8 ≈ 0.95, P_9 ≈ 0.75,
        // P_10 = 1 (the optimum becomes 2 accesses); P_1..P_5 plot as 1.
        let scheme = DesignTheoretic::paper_9_3_1();
        let probs = optimal_retrieval_probabilities(&scheme, 10, 20_000, 42);
        for k in 1..=5 {
            assert!(
                probs.p_k(k) > 0.995,
                "P_{k} = {} must plot as 1",
                probs.p_k(k)
            );
        }
        assert!((probs.p_k(6) - 0.99).abs() < 0.01, "P_6 = {}", probs.p_k(6));
        assert!(
            (probs.p_k(7) - 0.98).abs() < 0.015,
            "P_7 = {}",
            probs.p_k(7)
        );
        assert!((probs.p_k(8) - 0.95).abs() < 0.02, "P_8 = {}", probs.p_k(8));
        assert!((probs.p_k(9) - 0.75).abs() < 0.05, "P_9 = {}", probs.p_k(9));
        assert!(
            probs.p_k(10) > 0.999,
            "P_10: ⌈10/9⌉ = 2 accesses is near-always reachable"
        );
    }

    #[test]
    fn distinct_sampling_respects_deterministic_guarantee() {
        // With coalesced (distinct) sampling, the S(1) = 5 guarantee is
        // exact: P_k = 1 for k ≤ 5.
        let scheme = DesignTheoretic::paper_9_3_1();
        let probs =
            optimal_retrieval_probabilities_with(&scheme, 6, 5_000, 11, Sampling::DistinctBuckets);
        for k in 1..=5 {
            assert_eq!(probs.p_k(k), 1.0, "P_{k} under distinct sampling");
        }
    }

    #[test]
    fn out_of_table_sizes_default_to_one() {
        let scheme = DesignTheoretic::paper_9_3_1();
        let probs = optimal_retrieval_probabilities(&scheme, 3, 100, 1);
        assert_eq!(probs.p_k(0), 1.0);
        assert_eq!(probs.p_k(99), 1.0);
    }

    #[test]
    fn design_theoretic_dominates_mirrored() {
        // The qualitative ranking of §II-B2: at k = 5 the design scheme is
        // (essentially) always optimal while mirrored often is not — five
        // random blocks can land 4+ in one 3-device mirror group.
        let dt = DesignTheoretic::paper_9_3_1();
        let mir = Raid1Mirrored::paper();
        let p_dt = optimal_retrieval_probabilities(&dt, 5, 4_000, 7);
        let p_mir = optimal_retrieval_probabilities(&mir, 5, 4_000, 7);
        assert!(p_dt.p_k(5) > 0.99);
        assert!(p_mir.p_k(5) < 0.9, "mirrored P_5 = {}", p_mir.p_k(5));
    }

    #[test]
    fn deterministic_across_runs() {
        let scheme = DesignTheoretic::paper_9_3_1();
        let a = optimal_retrieval_probabilities(&scheme, 6, 500, 5);
        let b = optimal_retrieval_probabilities(&scheme, 6, 500, 5);
        assert_eq!(a.p, b.p);
    }
}
