//! Replicated declustering: allocation schemes and retrieval algorithms.
//!
//! An *allocation scheme* decides which `c` devices store each bucket's
//! replicas; a *retrieval algorithm* decides, for a set of requested
//! buckets, which replica each request is served from and therefore how many
//! parallel accesses the set costs.
//!
//! # Allocation schemes
//!
//! * [`DesignTheoretic`] — the paper's scheme, backed by an `(N, c, 1)`
//!   design ([`fqos_designs`]).
//! * [`Raid1Mirrored`] / [`Raid1Chained`] — the two high-performance RAID
//!   baselines of Table III (Fig. 7 layouts).
//! * [`RandomDuplicate`] — RDA (Sanders et al.), near-optimal with high
//!   probability but no deterministic guarantee.
//! * [`Partitioned`], [`DependentPeriodic`], [`Orthogonal`] — the remaining
//!   background schemes of §II-B2.
//!
//! # Retrieval algorithms
//!
//! * [`retrieval::design_theoretic_retrieval`] — the paper's `O(b)` initial
//!   mapping + remapping heuristic.
//! * [`retrieval::max_flow_retrieval`] — exact optimum via max-flow.
//! * [`retrieval::hybrid_retrieval`] — the paper's production policy: run
//!   the heuristic, fall back to max-flow only when it is non-optimal.
//! * [`retrieval::pick_online_device`] — the §IV-B online rule (idle replica
//!   first, else earliest-finish-time).
//!
//! # Sampling
//!
//! [`sampling::optimal_retrieval_probabilities`] reproduces Fig. 4: the
//! Monte-Carlo estimate of `P_k`, the probability that `k` random buckets
//! are retrievable in the optimal `⌈k/N⌉` accesses.
//!
//! # Example
//!
//! ```
//! use fqos_decluster::{AllocationScheme, DesignTheoretic};
//! use fqos_decluster::retrieval::hybrid_retrieval;
//!
//! let scheme = DesignTheoretic::paper_9_3_1();
//! // Any 5 distinct buckets retrieve in a single parallel access.
//! let requests: Vec<&[usize]> = (0..5).map(|b| scheme.replicas(b)).collect();
//! let (schedule, used_max_flow) = hybrid_retrieval(&requests, scheme.devices());
//! assert_eq!(schedule.accesses, 1);
//! assert!(!used_max_flow); // the O(b) heuristic sufficed
//! ```

pub mod analysis;
pub mod retrieval;
pub mod sampling;
pub mod scheme;
pub mod schemes;

pub use scheme::{AllocationScheme, BucketId, DeviceId};
pub use schemes::design_theoretic::DesignTheoretic;
pub use schemes::orthogonal::Orthogonal;
pub use schemes::partitioned::Partitioned;
pub use schemes::periodic::DependentPeriodic;
pub use schemes::raid::{Raid1Chained, Raid1Mirrored};
pub use schemes::rda::RandomDuplicate;
