//! The online replica-selection rule of §IV-B.
//!
//! Requests are served on arrival (FCFS). "A block is preferably retrieved
//! from the device having the earliest finish time if no idle device is
//! available": pick an idle replica if one exists (primary first), else the
//! replica whose queue drains soonest.

use fqos_designs::DeviceId;

/// Choose the replica to serve a request arriving at `now`, given each
/// device's next-free time. Ties break toward the earlier copy in the
/// tuple (the primary).
pub fn pick_online_device(replicas: &[DeviceId], device_free: &[u64], now: u64) -> DeviceId {
    debug_assert!(!replicas.is_empty());
    *replicas
        .iter()
        .min_by_key(|&&d| device_free[d].max(now))
        .expect("non-empty replica tuple")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_primary_wins() {
        let free = vec![0u64, 0, 0];
        assert_eq!(pick_online_device(&[1, 2, 0], &free, 100), 1);
    }

    #[test]
    fn idle_beats_busy() {
        let free = vec![500u64, 0, 900];
        // Primary 0 busy until 500; replica 1 idle.
        assert_eq!(pick_online_device(&[0, 1, 2], &free, 100), 1);
    }

    #[test]
    fn earliest_finish_when_all_busy() {
        let free = vec![500u64, 300, 900];
        assert_eq!(pick_online_device(&[0, 1, 2], &free, 100), 1);
    }

    #[test]
    fn tie_breaks_to_primary_order() {
        let free = vec![400u64, 400, 400];
        assert_eq!(pick_online_device(&[2, 0, 1], &free, 100), 2);
    }
}
