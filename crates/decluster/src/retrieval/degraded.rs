//! Degraded-mode retrieval: scheduling around failed devices.
//!
//! Replication is the paper's vehicle for QoS, but it is also what keeps
//! the array serving through device failures — an `(N, c, 1)` declustering
//! tolerates any `c − 1` device failures with zero data loss, and the
//! max-flow scheduler extends naturally: failed devices simply leave the
//! bipartite graph. Retrieval cost rises smoothly as survivors absorb the
//! failed devices' load.

use fqos_designs::DeviceId;
use fqos_maxflow::{RetrievalNetwork, RetrievalSchedule};

/// Outcome of a degraded-mode schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedSchedule {
    /// The schedule over surviving replicas (assignment indices align with
    /// the *served* requests — see `lost`).
    pub schedule: RetrievalSchedule,
    /// Indices of requests whose every replica failed (data unavailable).
    pub lost: Vec<usize>,
}

/// Schedule `requests` with the devices in `failed` marked down.
///
/// Requests that still have at least one live replica are scheduled
/// optimally (exact max-flow) over the survivors; requests with no live
/// replica are reported in `lost`. The assignment vector covers the served
/// requests in their original relative order.
pub fn degraded_retrieval(
    requests: &[&[DeviceId]],
    devices: usize,
    failed: &[bool],
) -> DegradedSchedule {
    assert_eq!(failed.len(), devices);
    let mut served_replicas: Vec<Vec<DeviceId>> = Vec::with_capacity(requests.len());
    let mut lost = Vec::new();
    for (i, replicas) in requests.iter().enumerate() {
        let live: Vec<DeviceId> = replicas.iter().copied().filter(|&d| !failed[d]).collect();
        if live.is_empty() {
            lost.push(i);
        } else {
            served_replicas.push(live);
        }
    }
    let refs: Vec<&[DeviceId]> = served_replicas.iter().map(|r| r.as_slice()).collect();
    let schedule = RetrievalNetwork::new(devices).optimal_schedule(&refs);
    DegradedSchedule { schedule, lost }
}

/// The fault-tolerance level of an allocation scheme: the largest `f` such
/// that **any** `f` device failures leave every bucket with a live replica.
/// For a well-formed `c`-copy scheme this is `c − 1`; schemes that
/// accidentally co-locate copies score lower.
pub fn fault_tolerance<S: crate::scheme::AllocationScheme + ?Sized>(scheme: &S) -> usize {
    // Every bucket's replicas are distinct devices (validated), so any
    // bucket survives f failures iff f < number of distinct replica
    // devices. The scheme-wide tolerance is the minimum over buckets.
    (0..scheme.num_buckets())
        .map(|b| {
            let mut devs: Vec<DeviceId> = scheme.replicas(b).to_vec();
            devs.sort_unstable();
            devs.dedup();
            devs.len() - 1
        })
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::AllocationScheme;
    use crate::DesignTheoretic;

    #[test]
    fn design_tolerates_two_failures() {
        let s = DesignTheoretic::paper_9_3_1();
        assert_eq!(fault_tolerance(&s), 2);
    }

    #[test]
    fn no_failures_equals_normal_retrieval() {
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..5).map(|b| s.replicas(b)).collect();
        let d = degraded_retrieval(&reqs, 9, &[false; 9]);
        assert!(d.lost.is_empty());
        assert_eq!(d.schedule.accesses, 1);
    }

    #[test]
    fn single_failure_preserves_availability() {
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..s.num_buckets()).map(|b| s.replicas(b)).collect();
        for dead in 0..9 {
            let mut failed = [false; 9];
            failed[dead] = true;
            let d = degraded_retrieval(&reqs, 9, &failed);
            assert!(d.lost.is_empty(), "device {dead} failure lost data");
            // All 36 buckets over 8 survivors: at least ⌈36/8⌉ accesses.
            assert!(d.schedule.accesses >= 5);
            // Nothing scheduled on the dead device.
            assert!(d.schedule.assignment.iter().all(|&a| a != dead));
        }
    }

    #[test]
    fn double_failure_still_serves_everything() {
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..s.num_buckets()).map(|b| s.replicas(b)).collect();
        for a in 0..9 {
            for b in (a + 1)..9 {
                let mut failed = [false; 9];
                failed[a] = true;
                failed[b] = true;
                let d = degraded_retrieval(&reqs, 9, &failed);
                assert!(d.lost.is_empty(), "failures {a},{b} lost data");
            }
        }
    }

    #[test]
    fn triple_failure_loses_exactly_the_shared_bucket_groups() {
        // Killing all three devices of one design block loses exactly that
        // block's three rotations.
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..s.num_buckets()).map(|b| s.replicas(b)).collect();
        let mut failed = [false; 9];
        for &d in s.replicas(0) {
            failed[d] = true; // devices 0, 1, 2
        }
        let d = degraded_retrieval(&reqs, 9, &failed);
        assert_eq!(
            d.lost,
            vec![0, 1, 2],
            "the three rotations of block (0,1,2)"
        );
    }

    #[test]
    fn cost_degrades_gracefully() {
        // Worst case cost is monotone in the number of failures.
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..18).map(|b| s.replicas(b)).collect();
        let mut prev = 0;
        for f in 0..3 {
            let mut failed = [false; 9];
            failed[..f].fill(true);
            let d = degraded_retrieval(&reqs, 9, &failed);
            assert!(d.schedule.accesses >= prev);
            prev = d.schedule.accesses;
        }
    }
}
