//! Degraded-mode retrieval: scheduling around failed devices.
//!
//! Replication is the paper's vehicle for QoS, but it is also what keeps
//! the array serving through device failures — an `(N, c, 1)` declustering
//! tolerates any `c − 1` device failures with zero data loss, and the
//! max-flow scheduler extends naturally: failed devices simply leave the
//! bipartite graph. Retrieval cost rises smoothly as survivors absorb the
//! failed devices' load.

use fqos_designs::DeviceId;
use fqos_maxflow::{IncrementalRetrieval, RetrievalNetwork, RetrievalSchedule};

/// Outcome of a degraded-mode schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedSchedule {
    /// The schedule over surviving replicas (assignment indices align with
    /// the *served* requests — see `lost`).
    pub schedule: RetrievalSchedule,
    /// Indices of requests whose every replica failed (data unavailable).
    pub lost: Vec<usize>,
}

/// Schedule `requests` with the devices in `failed` marked down.
///
/// Requests that still have at least one live replica are scheduled
/// optimally (exact max-flow) over the survivors; requests with no live
/// replica are reported in `lost`. The assignment vector covers the served
/// requests in their original relative order.
pub fn degraded_retrieval(
    requests: &[&[DeviceId]],
    devices: usize,
    failed: &[bool],
) -> DegradedSchedule {
    assert_eq!(failed.len(), devices);
    let mut served_replicas: Vec<Vec<DeviceId>> = Vec::with_capacity(requests.len());
    let mut lost = Vec::new();
    for (i, replicas) in requests.iter().enumerate() {
        let live: Vec<DeviceId> = replicas.iter().copied().filter(|&d| !failed[d]).collect();
        if live.is_empty() {
            lost.push(i);
        } else {
            served_replicas.push(live);
        }
    }
    let refs: Vec<&[DeviceId]> = served_replicas
        .iter()
        .map(std::vec::Vec::as_slice)
        .collect();
    let schedule = RetrievalNetwork::new(devices).optimal_schedule(&refs);
    DegradedSchedule { schedule, lost }
}

/// Outcome of one [`DegradedWindow::try_add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedAdmit {
    /// Admitted: the whole window remains schedulable within the access
    /// budget over the surviving devices.
    Admitted,
    /// The request has a live replica, but admitting it would push some
    /// surviving device past the access budget.
    Infeasible,
    /// Every replica of the request sits on a failed device — within a
    /// `c`-copy scheme this can only happen once ≥ `c` co-hosting devices
    /// are down (beyond the design's `c − 1` tolerance).
    Unavailable,
}

/// Incremental degraded-mode feasibility for one serving window.
///
/// The online serving path admits requests one at a time and needs the
/// degraded analogue of [`IncrementalRetrieval`]: the same re-augmenting
/// max-flow schedule, but with failed devices excluded from the bipartite
/// graph, exactly as [`degraded_retrieval`] excludes them for a batch.
/// Requests whose every replica is down are refused (`Unavailable`), never
/// silently dropped — the caller decides whether to delay or reject.
#[derive(Debug, Clone)]
pub struct DegradedWindow {
    inc: IncrementalRetrieval,
    failed: Vec<bool>,
    live_devices: usize,
}

impl DegradedWindow {
    /// Feasibility state for one window over `devices` devices with a
    /// per-device budget of `accesses`, with `failed` devices down.
    pub fn new(devices: usize, accesses: usize, failed: &[bool]) -> Self {
        assert_eq!(failed.len(), devices);
        DegradedWindow {
            inc: IncrementalRetrieval::new(devices, accesses),
            live_devices: failed.iter().filter(|&&f| !f).count(),
            failed: failed.to_vec(),
        }
    }

    /// Number of admitted requests.
    pub fn len(&self) -> usize {
        self.inc.len()
    }

    /// True if no request has been admitted.
    pub fn is_empty(&self) -> bool {
        self.inc.is_empty()
    }

    /// Surviving (non-failed) device count.
    pub fn live_devices(&self) -> usize {
        self.live_devices
    }

    /// The degraded per-window capacity bound: with `f` devices down, no
    /// window can schedule more than `M · (N − f)` requests. The caller
    /// tightens its aggregate admission limit to
    /// `min(S(M), degraded_limit())` while any device is down.
    pub fn degraded_limit(&self) -> usize {
        self.inc.accesses() * self.live_devices
    }

    /// True iff `replicas` mentions at least one failed device (the request
    /// would be re-routed onto survivors if admitted).
    pub fn touches_failed(&self, replicas: &[DeviceId]) -> bool {
        replicas.iter().any(|&d| self.failed[d])
    }

    /// Try to admit one request, scheduling it on a surviving replica.
    pub fn try_add(&mut self, replicas: &[DeviceId]) -> DegradedAdmit {
        if !self.touches_failed(replicas) {
            // Fast path: all replicas live, no filtering allocation.
            return if self.inc.try_add(replicas) {
                DegradedAdmit::Admitted
            } else {
                DegradedAdmit::Infeasible
            };
        }
        let live: Vec<DeviceId> = replicas
            .iter()
            .copied()
            .filter(|&d| !self.failed[d])
            .collect();
        if live.is_empty() {
            DegradedAdmit::Unavailable
        } else if self.inc.try_add(&live) {
            DegradedAdmit::Admitted
        } else {
            DegradedAdmit::Infeasible
        }
    }

    /// Device assignment of every admitted request, in admission order.
    /// Never names a failed device.
    pub fn assignments(&self) -> Vec<DeviceId> {
        self.inc.assignments()
    }

    /// Per-device load of the current schedule.
    pub fn device_loads(&self) -> Vec<usize> {
        self.inc.device_loads()
    }
}

/// The fault-tolerance level of an allocation scheme: the largest `f` such
/// that **any** `f` device failures leave every bucket with a live replica.
/// For a well-formed `c`-copy scheme this is `c − 1`; schemes that
/// accidentally co-locate copies score lower.
pub fn fault_tolerance<S: crate::scheme::AllocationScheme + ?Sized>(scheme: &S) -> usize {
    // Every bucket's replicas are distinct devices (validated), so any
    // bucket survives f failures iff f < number of distinct replica
    // devices. The scheme-wide tolerance is the minimum over buckets.
    (0..scheme.num_buckets())
        .map(|b| {
            let mut devs: Vec<DeviceId> = scheme.replicas(b).to_vec();
            devs.sort_unstable();
            devs.dedup();
            devs.len() - 1
        })
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::AllocationScheme;
    use crate::DesignTheoretic;

    #[test]
    fn design_tolerates_two_failures() {
        let s = DesignTheoretic::paper_9_3_1();
        assert_eq!(fault_tolerance(&s), 2);
    }

    #[test]
    fn no_failures_equals_normal_retrieval() {
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..5).map(|b| s.replicas(b)).collect();
        let d = degraded_retrieval(&reqs, 9, &[false; 9]);
        assert!(d.lost.is_empty());
        assert_eq!(d.schedule.accesses, 1);
    }

    #[test]
    fn single_failure_preserves_availability() {
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..s.num_buckets()).map(|b| s.replicas(b)).collect();
        for dead in 0..9 {
            let mut failed = [false; 9];
            failed[dead] = true;
            let d = degraded_retrieval(&reqs, 9, &failed);
            assert!(d.lost.is_empty(), "device {dead} failure lost data");
            // All 36 buckets over 8 survivors: at least ⌈36/8⌉ accesses.
            assert!(d.schedule.accesses >= 5);
            // Nothing scheduled on the dead device.
            assert!(d.schedule.assignment.iter().all(|&a| a != dead));
        }
    }

    #[test]
    fn double_failure_still_serves_everything() {
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..s.num_buckets()).map(|b| s.replicas(b)).collect();
        for a in 0..9 {
            for b in (a + 1)..9 {
                let mut failed = [false; 9];
                failed[a] = true;
                failed[b] = true;
                let d = degraded_retrieval(&reqs, 9, &failed);
                assert!(d.lost.is_empty(), "failures {a},{b} lost data");
            }
        }
    }

    #[test]
    fn triple_failure_loses_exactly_the_shared_bucket_groups() {
        // Killing all three devices of one design block loses exactly that
        // block's three rotations.
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..s.num_buckets()).map(|b| s.replicas(b)).collect();
        let mut failed = [false; 9];
        for &d in s.replicas(0) {
            failed[d] = true; // devices 0, 1, 2
        }
        let d = degraded_retrieval(&reqs, 9, &failed);
        assert_eq!(
            d.lost,
            vec![0, 1, 2],
            "the three rotations of block (0,1,2)"
        );
    }

    #[test]
    fn degraded_window_matches_batch_schedule() {
        let s = DesignTheoretic::paper_9_3_1();
        let mut failed = [false; 9];
        failed[4] = true;
        let mut win = DegradedWindow::new(9, 1, &failed);
        assert_eq!(win.live_devices(), 8);
        assert_eq!(win.degraded_limit(), 8);
        for b in 0..5 {
            assert_eq!(win.try_add(s.replicas(b)), DegradedAdmit::Admitted);
        }
        assert_eq!(win.len(), 5);
        let assign = win.assignments();
        assert!(assign.iter().all(|&d| d != 4), "never the failed device");
        for (b, &d) in assign.iter().enumerate() {
            assert!(s.replicas(b).contains(&d));
        }
    }

    #[test]
    fn degraded_window_refuses_past_the_degraded_budget() {
        // 3 devices, M = 1, one down: only 2 requests fit however they
        // replicate — the third is Infeasible, not lost.
        let mut win = DegradedWindow::new(3, 1, &[false, true, false]);
        assert_eq!(win.degraded_limit(), 2);
        assert_eq!(win.try_add(&[0, 1]), DegradedAdmit::Admitted);
        assert_eq!(win.try_add(&[1, 2]), DegradedAdmit::Admitted);
        assert_eq!(win.try_add(&[0, 1, 2]), DegradedAdmit::Infeasible);
        assert_eq!(win.len(), 2);
    }

    #[test]
    fn degraded_window_reports_unavailable_buckets() {
        let mut win = DegradedWindow::new(4, 2, &[true, true, false, false]);
        assert_eq!(win.try_add(&[0, 1]), DegradedAdmit::Unavailable);
        assert!(win.is_empty());
        assert!(win.touches_failed(&[1, 2]));
        assert!(!win.touches_failed(&[2, 3]));
        assert_eq!(win.try_add(&[1, 2]), DegradedAdmit::Admitted);
        assert_eq!(win.assignments(), vec![2]);
    }

    #[test]
    fn degraded_window_healthy_equals_incremental() {
        // With nothing failed the fast path is exact incremental retrieval.
        let mut win = DegradedWindow::new(2, 1, &[false, false]);
        assert_eq!(win.try_add(&[0, 1]), DegradedAdmit::Admitted);
        assert_eq!(win.try_add(&[0]), DegradedAdmit::Admitted);
        // The flow re-routes the first request to device 1.
        assert_eq!(win.assignments(), vec![1, 0]);
        assert_eq!(win.try_add(&[0, 1]), DegradedAdmit::Infeasible);
    }

    #[test]
    fn cost_degrades_gracefully() {
        // Worst case cost is monotone in the number of failures.
        let s = DesignTheoretic::paper_9_3_1();
        let reqs: Vec<&[usize]> = (0..18).map(|b| s.replicas(b)).collect();
        let mut prev = 0;
        for f in 0..3 {
            let mut failed = [false; 9];
            failed[..f].fill(true);
            let d = degraded_retrieval(&reqs, 9, &failed);
            assert!(d.schedule.accesses >= prev);
            prev = d.schedule.accesses;
        }
    }
}
