//! Retrieval algorithms: assign each requested bucket to one of its
//! replicas, minimizing the number of parallel accesses.

pub mod degraded;
pub mod design_theoretic;
pub mod hybrid;
pub mod online;

pub use degraded::{
    degraded_retrieval, fault_tolerance, DegradedAdmit, DegradedSchedule, DegradedWindow,
};
pub use design_theoretic::design_theoretic_retrieval;
pub use fqos_maxflow::RetrievalSchedule;
pub use hybrid::{hybrid_retrieval, max_flow_retrieval};
pub use online::pick_online_device;
