//! The paper's design-theoretic retrieval: initial first-copy mapping plus
//! remapping of conflicting blocks to alternate replicas (§III-C, Fig. 5).
//!
//! Runs in `O(b)` per pass with a bounded number of passes — the fast path
//! that handles every request within the deterministic limit `S(M)`; the
//! exact max-flow solver is only consulted when this heuristic is
//! non-optimal (see [`crate::retrieval::hybrid`]).

use fqos_designs::DeviceId;
use fqos_maxflow::RetrievalSchedule;

/// Compute a retrieval schedule by initial mapping + greedy remapping.
///
/// 1. Every block is mapped to the device of its first (primary) copy.
/// 2. While some device's load exceeds the current maximum elsewhere by ≥ 2,
///    remap one of its blocks to the replica device with the lowest load.
///
/// The result is locally optimal: no single remapping can reduce the
/// maximum load. For request sizes within the design guarantee `S(M)` the
/// achieved cost is at most `M`.
pub fn design_theoretic_retrieval(requests: &[&[DeviceId]], devices: usize) -> RetrievalSchedule {
    let b = requests.len();
    if b == 0 {
        return RetrievalSchedule {
            accesses: 0,
            assignment: Vec::new(),
        };
    }

    // Initial mapping: primary copies.
    let mut assignment: Vec<DeviceId> = requests.iter().map(|r| r[0]).collect();
    let mut loads = vec![0usize; devices];
    for &d in &assignment {
        loads[d] += 1;
    }
    // Blocks currently assigned to each device.
    let mut on_device: Vec<Vec<usize>> = vec![Vec::new(); devices];
    for (i, &d) in assignment.iter().enumerate() {
        on_device[d].push(i);
    }

    // Remapping: repeatedly move a block off the most-loaded device onto its
    // least-loaded replica when that strictly improves the balance. Each
    // move reduces Σ load² by ≥ 2, so at most O(b²) moves happen; in
    // practice a handful suffice.
    loop {
        let dmax = (0..devices).max_by_key(|&d| loads[d]).unwrap();
        let max_load = loads[dmax];
        if max_load <= 1 {
            break;
        }
        let mut best: Option<(usize, DeviceId)> = None; // (block index, target)
        for &i in &on_device[dmax] {
            for &alt in requests[i].iter() {
                if alt != dmax
                    && loads[alt] + 1 < max_load
                    && best.is_none_or(|(_, t)| loads[alt] < loads[t])
                {
                    best = Some((i, alt));
                }
            }
        }
        match best {
            Some((i, target)) => {
                on_device[dmax].retain(|&x| x != i);
                on_device[target].push(i);
                loads[dmax] -= 1;
                loads[target] += 1;
                assignment[i] = target;
            }
            None => break,
        }
    }

    let accesses = loads.iter().copied().max().unwrap_or(0);
    RetrievalSchedule {
        accesses,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::AllocationScheme;
    use crate::DesignTheoretic;

    fn refs(reqs: &[Vec<usize>]) -> Vec<&[usize]> {
        reqs.iter().map(std::vec::Vec::as_slice).collect()
    }

    #[test]
    fn empty_request() {
        let s = design_theoretic_retrieval(&[], 9);
        assert_eq!(s.accesses, 0);
    }

    #[test]
    fn paper_fig5_t0_t2_need_one_access() {
        // Periods T0–T2 of Table I: initial mapping needs 1 access.
        let t0 = vec![vec![0, 3, 6], vec![5, 7, 0]];
        let s = design_theoretic_retrieval(&refs(&t0), 9);
        assert_eq!(s.accesses, 1);

        let t1 = vec![
            vec![0, 3, 6],
            vec![5, 7, 0],
            vec![0, 4, 8],
            vec![8, 0, 4],
            vec![7, 0, 5],
        ];
        // T1 carries Application 1's two blocks plus its (0,4,8) and App 2's
        // pair; primaries are 0,5,0,8,7 → device 0 conflicts, remapping
        // resolves it within 1 access.
        let s = design_theoretic_retrieval(&refs(&t1), 9);
        assert_eq!(s.accesses, 1);

        let t2 = vec![vec![1, 2, 0], vec![6, 0, 3]];
        let s = design_theoretic_retrieval(&refs(&t2), 9);
        assert_eq!(s.accesses, 1);
    }

    #[test]
    fn paper_fig5_t3_remapping() {
        // Period T3: blocks (1,4,7), (1,3,8), (0,5,7), (0,1,2). Initial
        // mapping has device 1 twice and device 0 twice; the paper remaps
        // (0,1,2)→2 and (1,3,8)→3 to reach 1 access... with 4 blocks the
        // optimal is 1 access.
        let t3 = vec![vec![1, 4, 7], vec![1, 3, 8], vec![0, 5, 7], vec![0, 1, 2]];
        let s = design_theoretic_retrieval(&refs(&t3), 9);
        assert_eq!(s.accesses, 1);
        // Assignment only uses true replicas.
        let reqs = t3;
        for (i, r) in reqs.iter().enumerate() {
            assert!(r.contains(&s.assignment[i]));
        }
    }

    #[test]
    fn guarantee_holds_for_any_5_buckets_of_9_3_1() {
        // Exhaustively spot-check: any 5 of the 36 buckets retrieve in 1
        // access (the S(1) = 5 deterministic guarantee), sampled densely.
        let scheme = DesignTheoretic::paper_9_3_1();
        let mut checked = 0;
        for a in 0..36 {
            for b in (a + 1)..36 {
                // deterministic sub-sampling to keep the test quick
                if (a * 31 + b * 17) % 11 != 0 {
                    continue;
                }
                for c in (b + 1)..36 {
                    let (d, e) = ((c + 7) % 36, (c + 19) % 36);
                    let set = [a, b, c, d, e];
                    let mut uniq: Vec<_> = set.to_vec();
                    uniq.sort_unstable();
                    uniq.dedup();
                    if uniq.len() < 5 {
                        continue;
                    }
                    let reqs: Vec<&[usize]> = set.iter().map(|&x| scheme.replicas(x)).collect();
                    let s = design_theoretic_retrieval(&reqs, 9);
                    assert!(s.accesses <= 1, "set {set:?} took {} accesses", s.accesses);
                    checked += 1;
                }
            }
        }
        assert!(checked > 500, "only {checked} sets checked");
    }

    #[test]
    fn serial_case_without_alternatives() {
        let reqs = vec![vec![2usize], vec![2], vec![2]];
        let s = design_theoretic_retrieval(&refs(&reqs), 9);
        assert_eq!(s.accesses, 3);
    }

    #[test]
    fn never_below_information_bound() {
        let reqs: Vec<Vec<usize>> = (0..20).map(|i| vec![i % 4, (i + 1) % 4]).collect();
        let s = design_theoretic_retrieval(&refs(&reqs), 4);
        assert!(s.accesses >= 5); // 20 blocks / 4 devices
    }
}
