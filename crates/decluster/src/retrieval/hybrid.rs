//! Exact and hybrid retrieval.
//!
//! The paper's production policy (§III-C): run the `O(b)` design-theoretic
//! heuristic first; only when its access count exceeds the optimum
//! `⌈b/N⌉` solve the `O(b³)` maximum-flow problem.

use super::design_theoretic::design_theoretic_retrieval;
use fqos_designs::DeviceId;
use fqos_maxflow::{RetrievalNetwork, RetrievalSchedule};

/// Exact optimal retrieval via max-flow.
pub fn max_flow_retrieval(requests: &[&[DeviceId]], devices: usize) -> RetrievalSchedule {
    RetrievalNetwork::new(devices).optimal_schedule(requests)
}

/// The paper's hybrid policy. Returns the schedule and whether the max-flow
/// fallback was needed.
pub fn hybrid_retrieval(requests: &[&[DeviceId]], devices: usize) -> (RetrievalSchedule, bool) {
    let fast = design_theoretic_retrieval(requests, devices);
    let optimal = requests.len().div_ceil(devices);
    if fast.accesses <= optimal {
        (fast, false)
    } else {
        let exact = max_flow_retrieval(requests, devices);
        // The heuristic may already have been optimal for this set even
        // though it exceeded ⌈b/N⌉ (when no schedule reaches the bound);
        // keep the better of the two.
        if exact.accesses < fast.accesses {
            (exact, true)
        } else {
            (fast, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(reqs: &[Vec<usize>]) -> Vec<&[usize]> {
        reqs.iter().map(std::vec::Vec::as_slice).collect()
    }

    #[test]
    fn hybrid_skips_max_flow_when_heuristic_optimal() {
        let reqs = vec![vec![0usize, 3, 6], vec![1, 4, 7], vec![2, 5, 8]];
        let (s, used_flow) = hybrid_retrieval(&refs(&reqs), 9);
        assert_eq!(s.accesses, 1);
        assert!(!used_flow);
    }

    #[test]
    fn hybrid_falls_back_when_heuristic_stuck() {
        // A set engineered so greedy primary mapping + local moves can lag:
        // many blocks share primaries but alternates chain. Even if the
        // heuristic solves it, the hybrid answer must equal the exact one.
        let reqs: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![0, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
            vec![0, 1],
            vec![2, 0],
        ];
        let exact = max_flow_retrieval(&refs(&reqs), 4);
        let (hybrid, _) = hybrid_retrieval(&refs(&reqs), 4);
        assert_eq!(hybrid.accesses, exact.accesses);
    }

    #[test]
    fn hybrid_never_worse_than_exact() {
        // Deterministic pseudo-random request sets.
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        for trial in 0..200 {
            let n = 3 + trial % 6;
            let b = 1 + next() % 20;
            let reqs: Vec<Vec<usize>> = (0..b)
                .map(|_| {
                    let a = next() % n;
                    let mut c = next() % n;
                    if c == a {
                        c = (a + 1) % n;
                    }
                    vec![a, c]
                })
                .collect();
            let exact = max_flow_retrieval(&refs(&reqs), n);
            let (h, _) = hybrid_retrieval(&refs(&reqs), n);
            assert_eq!(h.accesses, exact.accesses, "trial {trial}: {reqs:?}");
        }
    }
}
