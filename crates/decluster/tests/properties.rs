//! Property-based tests for allocation schemes and retrieval algorithms.

use fqos_decluster::retrieval::{design_theoretic_retrieval, hybrid_retrieval, max_flow_retrieval};
use fqos_decluster::{
    AllocationScheme, DependentPeriodic, DesignTheoretic, Orthogonal, Partitioned, Raid1Chained,
    Raid1Mirrored, RandomDuplicate,
};
use proptest::prelude::*;

fn all_schemes() -> Vec<Box<dyn AllocationScheme>> {
    vec![
        Box::new(DesignTheoretic::paper_9_3_1()),
        Box::new(DesignTheoretic::paper_13_3_1()),
        Box::new(Raid1Mirrored::paper()),
        Box::new(Raid1Chained::paper()),
        Box::new(RandomDuplicate::new(9, 3, 36, 1)),
        Box::new(Partitioned::new(9, 3, 36)),
        Box::new(DependentPeriodic::new(9, 3, 2, 36)),
        Box::new(Orthogonal::new(9, 72)),
    ]
}

#[test]
fn every_scheme_validates() {
    for s in all_schemes() {
        s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name()));
    }
}

#[test]
fn every_scheme_has_balanced_total_load() {
    // Each device should hold roughly num_buckets·c/N replicas (exactly, for
    // the structured schemes).
    for s in all_schemes() {
        let mut loads = vec![0usize; s.devices()];
        for b in 0..s.num_buckets() {
            for &d in s.replicas(b) {
                loads[d] += 1;
            }
        }
        let expected = s.num_buckets() * s.copies() / s.devices();
        let name = s.name().to_string();
        if name.starts_with("RDA") {
            // Random: just require every device is used.
            assert!(loads.iter().all(|&l| l > 0), "{name}: {loads:?}");
        } else {
            assert!(
                loads.iter().all(|&l| l == expected),
                "{name}: {loads:?} expected {expected}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The design-theoretic heuristic always produces a valid schedule whose
    /// access count is sandwiched between the information bound and the
    /// exact optimum + slack, and never uses a non-replica device.
    #[test]
    fn dtr_schedule_validity(
        scheme_idx in 0usize..8,
        buckets in prop::collection::vec(0usize..36, 1..30),
    ) {
        let schemes = all_schemes();
        let s = &schemes[scheme_idx];
        let reqs: Vec<&[usize]> =
            buckets.iter().map(|&b| s.replicas(b % s.num_buckets())).collect();
        let sched = design_theoretic_retrieval(&reqs, s.devices());
        let lb = reqs.len().div_ceil(s.devices());
        prop_assert!(sched.accesses >= lb);
        for (i, r) in reqs.iter().enumerate() {
            prop_assert!(r.contains(&sched.assignment[i]));
        }
        let loads = sched.device_loads(s.devices());
        prop_assert_eq!(loads.iter().copied().max().unwrap_or(0), sched.accesses);
    }

    /// The heuristic never beats the exact max-flow optimum, and the hybrid
    /// always equals the optimum.
    #[test]
    fn dtr_vs_exact_vs_hybrid(
        scheme_idx in 0usize..8,
        buckets in prop::collection::vec(0usize..36, 1..25),
    ) {
        let schemes = all_schemes();
        let s = &schemes[scheme_idx];
        let reqs: Vec<&[usize]> =
            buckets.iter().map(|&b| s.replicas(b % s.num_buckets())).collect();
        let heuristic = design_theoretic_retrieval(&reqs, s.devices());
        let exact = max_flow_retrieval(&reqs, s.devices());
        let (hybrid, _) = hybrid_retrieval(&reqs, s.devices());
        prop_assert!(heuristic.accesses >= exact.accesses);
        prop_assert_eq!(hybrid.accesses, exact.accesses);
    }

    /// Design guarantee as a property: any ≤ S(M) distinct buckets of the
    /// (9,3,1) design retrieve within M accesses via the exact scheduler.
    #[test]
    fn design_guarantee_bounds_exact_cost(
        seed in any::<u64>(),
        m in 1usize..4,
    ) {
        let s = DesignTheoretic::paper_9_3_1();
        let g = s.guarantee();
        let k = g.buckets_in(m).min(s.num_buckets());
        // Draw k distinct buckets deterministically from the seed.
        let mut pool: Vec<usize> = (0..s.num_buckets()).collect();
        let mut state = seed | 1;
        for i in 0..k {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = i + (state >> 33) as usize % (pool.len() - i);
            pool.swap(i, j);
        }
        let reqs: Vec<&[usize]> = pool[..k].iter().map(|&b| s.replicas(b)).collect();
        let exact = max_flow_retrieval(&reqs, s.devices());
        prop_assert!(
            exact.accesses <= m,
            "S({m}) = {k} buckets took {} accesses", exact.accesses
        );
    }

    /// The same guarantee also holds through the heuristic (the paper's
    /// claim that DTR achieves the bound for loads within S(M)).
    #[test]
    fn design_guarantee_bounds_heuristic_cost(
        seed in any::<u64>(),
        m in 1usize..3,
    ) {
        let s = DesignTheoretic::paper_9_3_1();
        let k = s.guarantee().buckets_in(m);
        let mut pool: Vec<usize> = (0..s.num_buckets()).collect();
        let mut state = seed | 1;
        for i in 0..k {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = i + (state >> 33) as usize % (pool.len() - i);
            pool.swap(i, j);
        }
        let reqs: Vec<&[usize]> = pool[..k].iter().map(|&b| s.replicas(b)).collect();
        let sched = design_theoretic_retrieval(&reqs, s.devices());
        prop_assert!(sched.accesses <= m, "heuristic took {} > {m}", sched.accesses);
    }
}
