//! Property tests for the routing tier: the bounded-load ring never
//! exceeds an array's bound under churn, and placement is stable —
//! topology changes move only the tenants they must.

use fqos_cluster::Router;
use proptest::prelude::*;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under an arbitrary interleaving of assigns and releases, no array's
    /// load ever exceeds its bound, loads reconcile exactly against the
    /// assignment map, and a weight-1 tenant is never refused while the
    /// fleet has room.
    #[test]
    fn ring_stays_within_bounds_under_churn(
        arrays in 2..6usize,
        cap in 1..8usize,
        ops in 8..120u64,
        seed in any::<u64>(),
    ) {
        let caps = vec![cap; arrays];
        let mut r = Router::new(&caps, 32);
        let mut live: Vec<u64> = Vec::new();
        for i in 0..ops {
            let roll = splitmix64(seed ^ i);
            if roll.is_multiple_of(3) && !live.is_empty() {
                let victim = live.swap_remove((roll / 3) as usize % live.len());
                prop_assert!(r.release(victim).is_some());
            } else {
                let tenant = roll / 7;
                if live.contains(&tenant) {
                    continue;
                }
                let total: usize = (0..arrays).map(|a| r.load(a)).sum();
                let placed = r.assign(tenant, 1);
                if total < arrays * cap {
                    prop_assert!(placed.is_some(), "room left but tenant refused");
                }
                if placed.is_some() {
                    live.push(tenant);
                }
            }
            for a in 0..arrays {
                prop_assert!(r.load(a) <= cap, "array {a} over bound");
            }
        }
        // Loads reconcile against the assignment map exactly.
        let mut per_array = vec![0usize; arrays];
        for (_, assignment) in r.assignments() {
            per_array[assignment.array] += assignment.weight;
        }
        for (a, &n) in per_array.iter().enumerate() {
            prop_assert_eq!(n, r.load(a));
        }
        prop_assert_eq!(r.assignments().len(), live.len());
    }

    /// Consistent-hashing stability, scale-out direction: recomputing
    /// placement from scratch with one more (unbounded) array moves
    /// tenants only TO the new array.
    #[test]
    fn scale_out_steals_tenants_only_for_the_new_array(
        arrays in 2..6usize,
        tenants in 1..80u64,
        seed in any::<u64>(),
    ) {
        let unbounded = usize::MAX / 2;
        let mut small = Router::new(&vec![unbounded; arrays], 32);
        let mut big = Router::new(&vec![unbounded; arrays + 1], 32);
        for i in 0..tenants {
            let t = splitmix64(seed ^ i);
            let a = small.assign(t, 1);
            let b = big.assign(t, 1);
            prop_assert!(a.is_some() && b.is_some());
            if a != b {
                prop_assert_eq!(
                    b, Some(arrays),
                    "tenant moved between old arrays on scale-out"
                );
            }
        }
    }

    /// Removing an array re-places its tenants and ONLY its tenants.
    #[test]
    fn remove_array_moves_only_the_displaced(
        arrays in 2..6usize,
        tenants in 1..80u64,
        seed in any::<u64>(),
        victim_pick in any::<u64>(),
    ) {
        let unbounded = usize::MAX / 2;
        let mut r = Router::new(&vec![unbounded; arrays], 32);
        let ids: Vec<u64> = (0..tenants).map(|i| splitmix64(seed ^ i)).collect();
        for &t in &ids {
            prop_assert!(r.assign(t, 1).is_some());
        }
        let before: Vec<(u64, usize)> = ids
            .iter()
            .filter_map(|&t| Some((t, r.route(t)?)))
            .collect();
        let victim = (victim_pick as usize) % arrays;
        let moved = r.tombstone_array(victim);
        for &(t, was) in &before {
            let now = r.route(t);
            if was == victim {
                prop_assert!(now.is_some() && now != Some(victim));
                prop_assert!(moved.iter().any(|&(mt, to)| mt == t && to == now));
            } else {
                prop_assert_eq!(now, Some(was), "undisplaced tenant moved");
            }
        }
    }

    /// Arbitrary interleavings of assign / release / add / tombstone /
    /// revive — the full elastic-membership op set: loads stay within
    /// bounds, a tenant never routes to a tombstoned array, a tombstoned
    /// array's load is zero, and at the end the load map reconciles
    /// exactly against the assignment map.
    #[test]
    fn membership_churn_preserves_ring_invariants(
        arrays in 2..5usize,
        cap in 2..6usize,
        ops in 16..160u64,
        seed in any::<u64>(),
    ) {
        let mut r = Router::new(&vec![cap; arrays], 32);
        let mut live: Vec<u64> = Vec::new();
        for i in 0..ops {
            let roll = splitmix64(seed ^ (i << 8));
            match roll % 8 {
                0 if r.arrays() < 8 => {
                    let added = r.add_array(cap);
                    prop_assert!(r.is_live(added));
                }
                1 => {
                    let victim = (roll >> 3) as usize % r.arrays();
                    if (0..r.arrays()).filter(|&a| r.is_live(a)).count() > 1 {
                        for (t, to) in r.tombstone_array(victim) {
                            prop_assert!(to != Some(victim), "re-placed on the tombstone");
                            if to.is_none() {
                                // No survivor had room: the tenant is gone.
                                live.retain(|&x| x != t);
                            }
                        }
                        prop_assert_eq!(r.load(victim), 0, "tombstone kept load");
                    }
                }
                2 => {
                    let target = (roll >> 3) as usize % r.arrays();
                    r.revive_array(target);
                    prop_assert!(r.is_live(target));
                }
                3 | 4 if !live.is_empty() => {
                    let t = live.swap_remove((roll >> 3) as usize % live.len());
                    prop_assert!(r.release(t).is_some());
                }
                _ => {
                    let tenant = roll >> 3;
                    if !live.contains(&tenant) && r.assign(tenant, 1).is_some() {
                        live.push(tenant);
                    }
                }
            }
            for a in 0..r.arrays() {
                prop_assert!(r.load(a) <= r.capacity(a), "array {} over bound", a);
            }
            for (t, a) in r.assignments() {
                prop_assert!(
                    r.is_live(a.array),
                    "tenant {} routed to tombstoned array {}", t, a.array
                );
            }
        }
        let mut per_array = vec![0usize; r.arrays()];
        for (_, a) in r.assignments() {
            per_array[a.array] += a.weight;
        }
        for (a, &w) in per_array.iter().enumerate() {
            prop_assert_eq!(w, r.load(a), "load map diverged on array {}", a);
        }
        prop_assert_eq!(r.assignments().len(), live.len());
    }
}
