//! Deterministic whole-array chaos scenarios (seed via `FQOS_TEST_SEED`):
//! scripted fail-stop / fail-slow / restore events drive the health plane,
//! emergency evacuation and elastic membership end to end, and every run
//! must close the extended conservation law
//! `Σ served + Σ fault_lost + Σ hedges_cancelled + migrated_in_flight +
//! evacuation_lost == Σ admitted_total` exactly.

use fqos_cluster::{ArrayHealth, ClusterConfig, ClusterError, ClusterFaultSchedule, QosCluster};
use fqos_core::QosConfig;
use fqos_server::{OverloadPolicy, RejectReason, ServerConfig, SubmitOutcome};

/// One paper window (`T`), matching `QosConfig::paper_9_3_1`.
const BASE_T: u64 = 133_000;
const DEFAULT_SEED: u64 = 0x5EED_F00D;

fn seed() -> u64 {
    match std::env::var("FQOS_TEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = s
                .strip_prefix("0x")
                .map_or_else(|| s.parse(), |hex| u64::from_str_radix(hex, 16));
            parsed.unwrap_or(DEFAULT_SEED)
        }
        Err(_) => DEFAULT_SEED,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fresh scratch directory for a WAL-backed array.
fn scratch_path(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "fqos-chaos-{tag}-{}-{:x}",
        std::process::id(),
        splitmix64(seed() ^ tag.len() as u64)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Wait (bounded, real time) for the worker threads to finish what was
/// dispatched: device health samples are observed at completion, so a
/// tick that must see them cannot run before the workers catch up. Soft —
/// requests whose replicas are all scorer-condemned stay parked until a
/// probe window readmits a device, so a small in-flight residue is
/// legitimate during a fail-slow episode and everything still settles at
/// `finish()`.
fn drain(cluster: &QosCluster) {
    let mut last = u64::MAX;
    let mut stable = 0;
    for _ in 0..5_000 {
        let now = cluster.metrics().in_flight_total();
        if now == 0 {
            return;
        }
        stable = if now == last { stable + 1 } else { 0 };
        if stable >= 50 {
            return; // parked on the slow path, not worker lag
        }
        last = now;
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
}

/// `arrays` paper arrays, rebalancing off (chaos dynamics only), two
/// weight-1 tenants pinned per array: array `a` serves tenants
/// `2a + 1` and `2a + 2`.
fn pinned_fleet(arrays: usize, chaos: ClusterFaultSchedule) -> QosCluster {
    let array = ServerConfig::new(QosConfig::paper_9_3_1());
    let cluster = QosCluster::new(
        ClusterConfig::uniform(arrays, &array)
            .with_rebalance(false)
            .with_chaos(chaos),
    )
    .unwrap();
    for a in 0..arrays {
        for t in [2 * a as u64 + 1, 2 * a as u64 + 2] {
            cluster
                .register_pinned(a, t, 1, OverloadPolicy::Delay)
                .unwrap();
        }
    }
    cluster
}

/// The acceptance matrix: kill ANY of four arrays at an arbitrary control
/// tick. Every tenant of the victim must be evacuated within the health
/// plane's detection bound (`dead_after = 2` ticks of the kill), the
/// detection gap must surface only as typed `ArrayUnavailable` refusals
/// (never a hang, never a spurious `UnknownTenant`), the extended law must
/// close exactly, and the survivors must keep fleet deadline compliance
/// at ≥ 99%.
#[test]
fn killing_any_array_at_any_tick_evacuates_within_bound_and_conserves() {
    const ARRAYS: usize = 4;
    const WINDOWS: u64 = 16;
    let seed = seed();
    for victim in 0..ARRAYS {
        for kill_tick in [3u64, 9] {
            let chaos = ClusterFaultSchedule::parse(&format!("kill:{victim}@{kill_tick}")).unwrap();
            let cluster = pinned_fleet(ARRAYS, chaos);
            let mut handle = cluster.handle();
            let mut refused = 0u64;
            for w in 0..WINDOWS {
                for t in 1..=(2 * ARRAYS as u64) {
                    let lbn = splitmix64(seed ^ (w << 16) ^ t);
                    if let SubmitOutcome::Rejected(r) = handle.submit(t, lbn, w * BASE_T + t * 500)
                    {
                        // The only legal refusal in this scenario is
                        // the transport-typed outage report for the
                        // victim's tenants during the detection gap.
                        assert_eq!(r, RejectReason::ArrayUnavailable);
                        assert!(t == 2 * victim as u64 + 1 || t == 2 * victim as u64 + 2);
                        assert!(w + 1 >= kill_tick, "refused before the kill");
                        refused += 1;
                    }
                }
                cluster.control_tick();
            }
            assert!(refused >= 1, "the detection gap was never observed");
            drop(handle);

            let m = cluster.finish();
            assert!(m.conserved(), "{}", m.render_audit());
            assert_eq!(m.health[victim], ArrayHealth::Dead);
            assert_eq!(m.evacuations.len(), 1, "exactly one evacuation");
            let e = &m.evacuations[0];
            assert_eq!(e.array, victim);
            assert!(
                e.tick <= kill_tick + 2,
                "evacuation at tick {} missed the dead_after bound for a kill at {}",
                e.tick,
                kill_tick
            );
            assert!(e.unplaced.is_empty(), "survivors had headroom for weight 1");
            let mut moved: Vec<u64> = e.moved.iter().map(|&(t, _)| t).collect();
            moved.sort_unstable();
            assert_eq!(moved, vec![2 * victim as u64 + 1, 2 * victim as u64 + 2]);
            for &(_, to) in &e.moved {
                assert_ne!(to, victim, "evacuated onto the corpse");
            }
            assert_eq!(m.evacuated_tenants, 2);
            assert!(m.refused_unavailable >= refused);
            // Survivors stay compliant: ≥ 99% of completions met their
            // deadline across the whole run, outage included.
            let compliant = m.completed() - m.deadline_violations();
            assert!(
                compliant * 100 >= m.completed() * 99,
                "compliance collapsed: {compliant}/{} ({})",
                m.completed(),
                m.render_audit()
            );
        }
    }
}

/// A WAL-backed array fail-stops with admissions in flight and later
/// restores: recovery replays the durable record, the `evacuation_lost`
/// charge is reversed exactly, tenants the evacuation already moved stay
/// on their survivors (the recovered registration is dropped as a drain
/// record), and the law closes with nothing lost.
#[test]
fn wal_restore_reverses_the_evacuation_charge() {
    let wal0 = scratch_path("wal0");
    let wal1 = scratch_path("wal1");
    let base = ServerConfig::new(QosConfig::paper_9_3_1());
    let cluster = QosCluster::new(
        ClusterConfig::new(vec![
            base.clone().with_wal(&wal0).with_wal_fsync_batch(1),
            base.clone().with_wal(&wal1).with_wal_fsync_batch(1),
        ])
        .with_rebalance(false),
    )
    .unwrap();
    cluster
        .register_pinned(0, 1, 2, OverloadPolicy::Delay)
        .unwrap();
    cluster
        .register_pinned(1, 2, 2, OverloadPolicy::Delay)
        .unwrap();
    let mut handle = cluster.handle();
    // Three admissions parked in array 0's open window: stranded by the
    // kill, durable in its log.
    for i in 0..3u64 {
        assert!(handle.submit(1, 100 + i, i * 1_000).is_admitted());
    }
    let stranded = cluster.kill_array(0).unwrap();
    assert_eq!(stranded, 3, "open-window admissions never settled");
    assert_eq!(cluster.evacuation_lost(), 3);

    // Two bad heartbeats → Dead verdict → evacuation to the survivor.
    cluster.control_tick();
    cluster.control_tick();
    assert_eq!(
        cluster.route_of(1),
        Some(1),
        "tenant 1 evacuated to array 1"
    );

    // Restore from the log: the ledger charge is reversed — the stranded
    // work is the recovered engine's own accounting now.
    assert_eq!(cluster.restore_array(0), Ok(true));
    assert_eq!(cluster.evacuation_lost(), 0, "charge fully reversed");
    assert_eq!(
        cluster.route_of(1),
        Some(1),
        "evacuated tenant stays on the survivor after the source returns"
    );

    // Both tenants keep submitting; the recovered in-flight settles at
    // the restored array's own seals.
    for w in 1..6u64 {
        assert!(handle.submit(1, 200 + w, w * BASE_T).is_admitted());
        assert!(handle.submit(2, 300 + w, w * BASE_T).is_admitted());
        cluster.control_tick();
    }
    drop(handle);
    let m = cluster.finish();
    assert!(m.conserved(), "{}", m.render_audit());
    assert_eq!(m.evacuation_lost, 0);
    assert_eq!(m.migrated_in_flight, 0, "recovered drain fully settled");
    assert_eq!(
        m.health[0],
        ArrayHealth::Healthy,
        "restore resets the verdict"
    );
    let _ = std::fs::remove_dir_all(&wal0);
    let _ = std::fs::remove_dir_all(&wal1);
}

/// Without a WAL the restore starts an empty incarnation: the frozen
/// counters are archived as permanent history (still part of the fleet
/// totals), the stranded residue stays charged to `evacuation_lost`
/// forever, and the law closes around the archive.
#[test]
fn fresh_restore_archives_the_frozen_history_and_keeps_the_charge() {
    let cluster = pinned_fleet(2, ClusterFaultSchedule::new());
    let mut handle = cluster.handle();
    assert!(handle.submit(1, 0, 0).is_admitted());
    let stranded = cluster.kill_array(0).unwrap();
    assert_eq!(stranded, 1);
    assert_eq!(cluster.restore_array(0), Ok(false), "no log to recover");
    assert_eq!(cluster.evacuation_lost(), 1, "losses are permanent");
    // The restored incarnation serves its still-routed tenants again.
    for w in 1..4u64 {
        for t in 1..=4u64 {
            assert!(handle.submit(t, w * 16 + t, w * BASE_T).is_admitted());
        }
        cluster.control_tick();
    }
    drop(handle);
    let m = cluster.finish();
    assert!(m.conserved(), "{}", m.render_audit());
    assert_eq!(m.evacuation_lost, 1);
    assert_eq!(m.past.len(), 1, "one archived incarnation");
    assert_eq!(m.past[0].admitted_total(), 1, "the archive holds the kill");
}

/// Elastic membership under load: grow the fleet at runtime, then retire
/// an original member. The retiree's tenants re-register on survivors
/// and its in-flight drains cooperatively — at the end the law closes
/// with zero migrated in-flight and every tenant routed to a live array.
#[test]
fn elastic_add_and_remove_under_load_conserve_the_law() {
    let cluster = pinned_fleet(2, ClusterFaultSchedule::new());
    let mut handle = cluster.handle();
    for w in 0..4u64 {
        for t in 1..=4u64 {
            assert!(handle.submit(t, w * 16 + t, w * BASE_T).is_admitted());
        }
        cluster.control_tick();
    }
    let epoch_before = cluster.epoch();
    let added = cluster
        .add_array(ServerConfig::new(QosConfig::paper_9_3_1()))
        .unwrap();
    assert_eq!(added, 2);
    assert!(cluster.epoch() > epoch_before, "membership bumps the epoch");

    // Retire array 0: both its tenants must land on the survivors.
    let placements = cluster.remove_array(0).unwrap();
    assert_eq!(placements.len(), 2);
    for &(t, to) in &placements {
        let to = to.expect("survivors had headroom");
        assert_ne!(to, 0);
        assert_eq!(cluster.route_of(t), Some(to));
    }
    assert!(matches!(
        cluster.remove_array(0),
        Err(ClusterError::ArrayNotLive { .. })
    ));

    for w in 4..8u64 {
        for t in 1..=4u64 {
            assert!(
                handle.submit(t, w * 16 + t, w * BASE_T).is_admitted(),
                "tenant {t} lost service during membership churn"
            );
        }
        cluster.control_tick();
    }
    drop(handle);
    let m = cluster.finish();
    assert!(m.conserved(), "{}", m.render_audit());
    assert_eq!(m.migrated_in_flight, 0, "retiree drained fully");
    assert!(m.retired[0], "array 0 left the fleet");
    assert_eq!(
        m.admitted_total(),
        8 * 4,
        "every submission admitted across the churn"
    );
}

/// Fail-slow: a scripted 20× whole-array degradation draws a `Slow`
/// verdict from the health plane (no evacuation — the data is readable),
/// and healing it draws a recovery after the configured clean streak.
/// The array-level verdict rides on the per-device scorer, so the
/// timeline is warm-up (EWMA baselines) → degrade → device condemned on
/// its first anomalous sample (promote streak 1 here) → array `Slow`
/// after `slow_after` ticks → heal → device re-probed and cleared →
/// array `Healthy` after `recover_after` clean ticks.
#[test]
fn fail_slow_draws_a_slow_verdict_and_recovery() {
    let array = ServerConfig::new(QosConfig::paper_9_3_1())
        .with_health_streaks(1, 1)
        .with_health_probe_windows(1);
    let chaos = ClusterFaultSchedule::new().slow(0, 4, 20).restore(0, 9);
    let cluster = QosCluster::new(
        ClusterConfig::uniform(2, &array)
            .with_rebalance(false)
            .with_chaos(chaos),
    )
    .unwrap();
    cluster
        .register_pinned(0, 1, 2, OverloadPolicy::Delay)
        .unwrap();
    cluster
        .register_pinned(1, 2, 1, OverloadPolicy::Delay)
        .unwrap();
    let mut handle = cluster.handle();
    let mut saw_slow = false;
    for w in 0..20u64 {
        // One bucket's worth of traffic so its replica devices sample
        // densely enough for the scorer to act within the run.
        handle.submit(1, 0, w * BASE_T);
        handle.submit(1, 0, w * BASE_T + 1_000);
        handle.submit(2, 1, w * BASE_T);
        // Seal window `w` and let its completions reach the scorer before
        // the tick probes the verdict — sampling is asynchronous.
        handle.advance_all((w + 1) * BASE_T);
        drain(&cluster);
        cluster.control_tick();
        saw_slow |= cluster.health()[0] == ArrayHealth::Slow;
    }
    assert!(saw_slow, "the degradation never drew a Slow verdict");
    assert_eq!(
        cluster.health()[0],
        ArrayHealth::Healthy,
        "the heal never drew a recovery"
    );
    drop(handle);
    let m = cluster.finish();
    assert!(m.conserved(), "{}", m.render_audit());
    assert!(m.health_verdicts_slow >= 1);
    assert!(m.health_recoveries >= 1);
    assert_eq!(m.evacuations.len(), 0, "fail-slow must not evacuate");
}

/// The gnarly interleaving: a rebalancing migration moves the hot tenant
/// to a target array, and the target is then killed before the source
/// drain has settled. The Dead verdict evacuates the tenant again (back
/// to the original array) and the extended law must absorb both the
/// migration drain and the frozen target's residue at once.
#[test]
fn killing_the_migration_target_mid_drain_conserves() {
    let seed = seed();
    let array = ServerConfig::new(QosConfig::paper_9_3_1());
    let chaos = ClusterFaultSchedule::new().kill(1, 4);
    let cluster = QosCluster::new(
        ClusterConfig::uniform(2, &array)
            .with_rebalance(true)
            .with_cooldown(2)
            .with_chaos(chaos),
    )
    .unwrap();
    // The rebalance.rs skew, minus one bystander: tenant 1 overdrives
    // its reservation so the control loop migrates it (resized to its
    // observed demand of 4), and the home array keeps enough headroom
    // (S − 1 = 4) that the later evacuation can bring it back.
    cluster
        .register_pinned(0, 1, 2, OverloadPolicy::Reject)
        .unwrap();
    cluster
        .register_pinned(0, 3, 1, OverloadPolicy::Delay)
        .unwrap();
    let mut handle = cluster.handle();
    let mut event = None;
    for w in 0..12u64 {
        let mut i = 0u64;
        for &(tenant, n) in &[(1u64, 4u64), (3, 1)] {
            for _ in 0..n {
                let lbn = splitmix64(seed ^ (w << 8) ^ i);
                handle.submit(tenant, lbn, w * BASE_T + i * 1_000);
                i += 1;
            }
        }
        if let Some(e) = cluster.control_tick() {
            event.get_or_insert(e);
        }
    }
    drop(handle);
    let event = event.expect("saturation must trigger the migration");
    assert_eq!(event.tenant, 1);
    assert_eq!((event.from, event.to), (0, 1));

    let m = cluster.finish();
    assert!(m.conserved(), "{}", m.render_audit());
    assert_eq!(m.health[1], ArrayHealth::Dead);
    assert_eq!(m.evacuations.len(), 1, "the dead target was evacuated");
    assert_eq!(m.evacuations[0].array, 1);
    assert!(
        m.evacuations[0]
            .moved
            .iter()
            .any(|&(t, to)| t == 1 && to == 0),
        "the migrated tenant must come home: {:?}",
        m.evacuations[0]
    );
    assert_eq!(
        m.migrated_in_flight, 0,
        "frozen source skipped, live drained"
    );
}
