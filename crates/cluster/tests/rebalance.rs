//! Deterministic saturation → rebalance scenario (seed via
//! `FQOS_TEST_SEED`): one array's ε-budget saturates under a skewed
//! pinning, the control loop migrates the hot tenant to fleet headroom,
//! and fleet-wide deadline compliance returns to ≥ 99%.

use fqos_cluster::{ClusterConfig, ClusterMetrics, QosCluster};
use fqos_core::QosConfig;
use fqos_server::{OverloadPolicy, ServerConfig};

const BASE_T: u64 = 133_000;
const DEFAULT_SEED: u64 = 0x5EED_F00D;

fn seed() -> u64 {
    match std::env::var("FQOS_TEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = s
                .strip_prefix("0x")
                .map_or_else(|| s.parse(), |hex| u64::from_str_radix(hex, 16));
            parsed.unwrap_or(DEFAULT_SEED)
        }
        Err(_) => DEFAULT_SEED,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Two paper arrays (S(1) = 5, ε = 0), all three tenants pinned onto
/// array 0. Tenant 1 submits 4/window against a reservation of 2.
fn skewed_cluster(rebalance: bool) -> QosCluster {
    let array = ServerConfig::new(QosConfig::paper_9_3_1());
    let cluster = QosCluster::new(
        ClusterConfig::uniform(2, &array)
            .with_rebalance(rebalance)
            .with_cooldown(2),
    )
    .unwrap();
    cluster
        .register_pinned(0, 1, 2, OverloadPolicy::Reject)
        .unwrap();
    cluster
        .register_pinned(0, 2, 2, OverloadPolicy::Delay)
        .unwrap();
    cluster
        .register_pinned(0, 3, 1, OverloadPolicy::Delay)
        .unwrap();
    cluster
}

/// Per-window demand: (tenant, requests). Tenant 1 overdrives its
/// reservation by 2×.
const DEMAND: &[(u64, u64)] = &[(1, 4), (2, 2), (3, 1)];

fn submitted_per_window() -> u64 {
    DEMAND.iter().map(|&(_, n)| n).sum()
}

/// `(compliant, submitted)` deltas between two fleet snapshots:
/// completions that met their deadline vs. everything the phase asked for.
fn phase_compliance(at_start: &ClusterMetrics, at_end: &ClusterMetrics) -> (u64, u64) {
    let compliant = (at_end.completed() - at_start.completed())
        .saturating_sub(at_end.deadline_violations() - at_start.deadline_violations());
    let submitted = (at_end.admitted_total() + at_end.rejected() + at_end.unrouted)
        - (at_start.admitted_total() + at_start.rejected() + at_start.unrouted);
    (compliant, submitted)
}

#[test]
fn saturated_epsilon_budget_triggers_a_compliance_restoring_rebalance() {
    let seed = seed();
    let cluster = skewed_cluster(true);
    let mut handle = cluster.handle();
    let windows = 12u64;
    let mut event = None;
    let mut at_event = None;
    for w in 0..windows {
        let mut i = 0u64;
        for &(tenant, n) in DEMAND {
            for _ in 0..n {
                let lbn = splitmix64(seed ^ (w << 8) ^ i);
                handle.submit(tenant, lbn, w * BASE_T + i * 1_000);
                i += 1;
            }
        }
        if let Some(e) = cluster.control_tick() {
            assert!(event.is_none(), "a second migration fired: {e:?}");
            event = Some(e);
            at_event = Some(cluster.metrics());
        }
    }
    drop(handle);

    // The rebalance happened, off the saturated array, on the first tick
    // that saw pressure, with the reservation resized to observed demand.
    let event = event.expect("saturation must trigger a rebalance");
    assert_eq!(event.tick, 1);
    assert_eq!(event.tenant, 1, "the overdriving tenant migrates");
    assert_eq!(event.from, 0);
    assert_eq!(event.to, 1);
    assert_eq!(event.reserved, 4, "reservation resized to observed demand");

    let at_event = at_event.expect("snapshot at the rebalance");
    // Mid-run law: fleet in-flight bounds the migrated share.
    assert!(at_event.in_flight_total() >= at_event.migrated_in_flight);

    let finished = cluster.finish();
    assert!(finished.conserved(), "{}", finished.render_audit());
    assert_eq!(finished.migrated_in_flight, 0, "drain fully settled");
    assert_eq!(finished.rebalances, 1);
    assert_eq!(finished.events, vec![event]);
    assert_eq!(
        finished.admitted_total() + finished.rejected(),
        windows * submitted_per_window(),
        "every submission accounted"
    );

    // Phase 1 (before the migration): tenant 1's overdrive is rejected at
    // its home array, so compliance cannot reach 99%.
    let submitted_p1 = at_event.admitted_total() + at_event.rejected() + at_event.unrouted;
    let admitted_p1 = at_event.admitted_total();
    assert!(
        (admitted_p1 as f64) < 0.99 * submitted_p1 as f64,
        "phase 1 should saturate: {admitted_p1}/{submitted_p1}"
    );

    // Phase 2 (after): the fleet serves everything within deadline.
    let (compliant_p2, submitted_p2) = phase_compliance(&at_event, &finished);
    assert!(submitted_p2 > 0);
    assert!(
        compliant_p2 as f64 >= 0.99 * submitted_p2 as f64,
        "post-rebalance compliance {compliant_p2}/{submitted_p2}"
    );
    // And nothing was rejected again after the migration.
    assert_eq!(finished.rejected(), at_event.rejected());
    assert_eq!(finished.deadline_violations(), 0);
}

/// Regression: a migration to a lower-index array must not poison the
/// controller's per-tenant baseline. The source's departed record (frozen,
/// large cumulative counters) used to overwrite the fresh counters of the
/// tenant's new home on every re-baseline; once the new array became the
/// hottest, the delta underflowed — a debug panic, or astronomical
/// pressure/demand driving garbage migrations in release.
#[test]
fn migration_to_a_lower_index_array_keeps_tenant_deltas_sane() {
    let array = ServerConfig::new(QosConfig::paper_9_3_1());
    let cluster = QosCluster::new(
        ClusterConfig::uniform(2, &array)
            .with_rebalance(true)
            .with_cooldown(2),
    )
    .unwrap();
    // Everyone pinned on array 1, array 0 empty: the rebalance goes 1 → 0.
    cluster
        .register_pinned(1, 1, 2, OverloadPolicy::Reject)
        .unwrap();
    cluster
        .register_pinned(1, 2, 2, OverloadPolicy::Delay)
        .unwrap();
    cluster
        .register_pinned(1, 3, 1, OverloadPolicy::Delay)
        .unwrap();
    let mut handle = cluster.handle();

    // Phase 1: five windows of 2× overdrive before the first control tick,
    // so the source record freezes with counters well above anything the
    // fresh record accumulates by the next eligible tick.
    let mut w = 0u64;
    for _ in 0..5 {
        let mut i = 0u64;
        for &(tenant, n) in &[(1u64, 4u64), (2, 2), (3, 1)] {
            for _ in 0..n {
                handle.submit(tenant, (w << 8) | i, w * BASE_T + i * 1_000);
                i += 1;
            }
        }
        w += 1;
    }
    let event = cluster
        .control_tick()
        .expect("saturation must trigger the migration");
    assert_eq!((event.tenant, event.from, event.to), (1, 1, 0));

    // Phase 2: the tenant overdrives its resized reservation on array 0,
    // which becomes the hottest array. Every eligible tick differentiates
    // its fresh counters against the baseline — and must not underflow.
    // The only escape (back to array 1) has too little headroom to beat
    // the tenant's current reservation, so no second migration fires.
    for _ in 0..6 {
        let mut i = 0u64;
        for &(tenant, n) in &[(1u64, 6u64), (2, 2), (3, 1)] {
            for _ in 0..n {
                handle.submit(tenant, (w << 8) | i, w * BASE_T + i * 1_000);
                i += 1;
            }
        }
        w += 1;
        assert!(
            cluster.control_tick().is_none(),
            "no profitable second move exists"
        );
    }
    drop(handle);
    let m = cluster.finish();
    assert!(m.conserved(), "{}", m.render_audit());
    assert_eq!(m.rebalances, 1);
}

#[test]
fn without_rebalancing_the_saturation_persists() {
    let seed = seed();
    let cluster = skewed_cluster(false);
    let mut handle = cluster.handle();
    let windows = 6u64;
    for w in 0..windows {
        let mut i = 0u64;
        for &(tenant, n) in DEMAND {
            for _ in 0..n {
                let lbn = splitmix64(seed ^ (w << 8) ^ i);
                handle.submit(tenant, lbn, w * BASE_T + i * 1_000);
                i += 1;
            }
        }
        assert!(cluster.control_tick().is_none(), "rebalancing is off");
    }
    drop(handle);
    let m = cluster.finish();
    assert!(m.conserved(), "{}", m.render_audit());
    assert_eq!(m.rebalances, 0);
    // Tenant 1 keeps losing its overdrive every single window.
    assert_eq!(m.rejected(), 2 * windows);
    assert_eq!(m.arrays[1].admitted_total(), 0, "array 1 stays idle");
}
