//! The global control loop's state and pressure algebra.
//!
//! Each array already enforces the paper's per-interval guarantees; the
//! cluster controller only watches *pressure* — rejections, delays and
//! overflow beyond the array's ε-budget — and migrates one tenant per
//! tick from a saturated array to one with headroom. Migration is a
//! cooperative drain: the source keeps settling the tenant's in-flight
//! admissions (departed records stay resolvable at seal), the target
//! registers the tenant fresh, and a router epoch bump invalidates every
//! handle's route cache.

use fqos_server::OverloadPolicy;
use std::collections::HashMap;

/// One executed migration, as reported by
/// [`crate::QosCluster::control_tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceEvent {
    /// Control tick (1-based) the migration executed on.
    pub tick: u64,
    /// The migrated tenant.
    pub tenant: u64,
    /// Source array (budget saturated).
    pub from: usize,
    /// Target array (fleet headroom).
    pub to: usize,
    /// Reservation granted on the target (≥ the old reservation when the
    /// tenant's observed demand exceeded it).
    pub reserved: usize,
}

/// Cumulative per-array counters the controller differentiates per tick.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ArrayObs {
    pub rejected: u64,
    pub delayed: u64,
    pub overflow: u64,
}

/// Cumulative per-tenant counters. Keyed by `(array, tenant)`: a tenant's
/// counters restart from zero on every array it registers on, so the
/// baseline must not follow it across a migration.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TenantObs {
    pub rejected: u64,
    pub delayed: u64,
    pub overflow: u64,
    pub admitted: u64,
}

/// A tenant drained off `from`; its departed record's unsettled
/// admissions are the cluster law's `migrated_in_flight` term.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Drained {
    pub tenant: u64,
    pub from: usize,
}

/// One emergency evacuation, executed by the control loop on the tick an
/// array's health verdict reached `Dead`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvacuationEvent {
    /// Control tick (1-based) the Dead verdict fired on.
    pub tick: u64,
    /// The condemned array.
    pub array: usize,
    /// `(tenant, survivor)` placements that succeeded (register-on-target;
    /// the dead source has nothing left to drain).
    pub moved: Vec<(u64, usize)>,
    /// Tenants no survivor could take; they are released from the router
    /// and must re-register.
    pub unplaced: Vec<u64>,
}

/// Controller state behind the `cluster.ctrl` lock.
#[derive(Debug, Default)]
pub(crate) struct CtrlState {
    /// Ticks taken so far.
    pub tick: u64,
    /// Tick of the last executed migration (cooldown basis).
    pub last_rebalance: Option<u64>,
    /// Per-array observation basis from the previous tick.
    pub prev: Vec<ArrayObs>,
    /// Per-tenant observation basis from the previous tick, keyed by
    /// `(array, tenant)`. Live records only: a departed record's counters
    /// are frozen and must never overwrite the baseline of the fresh
    /// record the tenant gets on (re-)registration.
    pub prev_tenants: HashMap<(usize, u64), TenantObs>,
    /// Every migration executed, in order.
    pub events: Vec<RebalanceEvent>,
    /// Drain records for the conservation audit.
    pub drained: Vec<Drained>,
    /// Every emergency evacuation, in order.
    pub evacuations: Vec<EvacuationEvent>,
    /// Fleet-wide tenant → overload policy directory. The engines own the
    /// authoritative records, but a fail-stopped engine takes its records
    /// with it — evacuation re-registers tenants on survivors from here.
    pub directory: HashMap<u64, OverloadPolicy>,
}

/// Pressure of one observation delta against an ε-budget: rejections and
/// delays always count; overflow only counts past the array's statistical
/// allowance of `ε · S(M)` admissions per interval (§III-B2 runs windows
/// at tick cadence, so one tick ≈ one interval of budget).
pub(crate) fn pressure(delta: ArrayObs, epsilon: f64, limit: usize) -> u64 {
    let budget = (epsilon * limit as f64).ceil() as u64;
    delta.rejected + delta.delayed + delta.overflow.saturating_sub(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_within_epsilon_budget_is_not_pressure() {
        // ε = 0.3 on S(M) = 10: up to 3 overflow admissions per tick are
        // the statistical path working as designed.
        let calm = ArrayObs {
            rejected: 0,
            delayed: 0,
            overflow: 3,
        };
        assert_eq!(pressure(calm, 0.3, 10), 0);
        let hot = ArrayObs {
            rejected: 2,
            delayed: 1,
            overflow: 5,
        };
        assert_eq!(pressure(hot, 0.3, 10), 2 + 1 + (5 - 3));
    }

    #[test]
    fn deterministic_arrays_have_zero_budget() {
        let obs = ArrayObs {
            rejected: 0,
            delayed: 0,
            overflow: 1,
        };
        assert_eq!(pressure(obs, 0.0, 5), 1, "ε = 0 ⇒ any overflow counts");
    }
}
