//! The array health plane: liveness scoring and the chaos schedule.
//!
//! The cluster-tier analogue of the device scorer in
//! `fqos-server/src/fault.rs`: each array slot carries a
//! [`ArrayHealth::Healthy`] / `Suspect` / `Dead` / `Slow` verdict, fed by
//! two signals the control loop gathers once per tick:
//!
//! * a **heartbeat probe** — is the slot's engine alive, and does its own
//!   device scorer report a live-slow device (the array-level fail-slow
//!   symptom)?
//! * **submit outcomes** — every cluster handle that routes a submission
//!   to a fail-stopped slot records a refusal; refusals since the last
//!   tick count as a failed heartbeat (a dead array fails fast at the
//!   transport level, but *deciding* it is dead is policy).
//!
//! A failed signal promotes `Healthy → Suspect` immediately;
//! [`ClusterHealthParams::dead_after`] consecutive failures promote
//! `Suspect → Dead`, the verdict that triggers emergency evacuation in
//! `QosCluster::control_tick`. Sustained slow signals promote to `Slow`
//! (the slot is excluded as a migration/evacuation target); clean probes
//! demote `Suspect`/`Slow` back to `Healthy`. `Dead` is sticky — only an
//! explicit `restore_array` resets it.
//!
//! Faults themselves are injected by a scripted [`ClusterFaultSchedule`]
//! (`kill:A@T,restore:A@T,slow:A@T[xF]`, ticks being control ticks) or the
//! live `kill_array` / `restore_array` calls; the scorer never sees the
//! script, only the symptoms.
//!
//! The plane is plain data; `QosCluster` wraps it in a mutex (lock class
//! `cluster.health`, field `liveness`).

/// Service-time multiplier applied by `slow:A@T` tokens without an
/// explicit `x<factor>` suffix (mirrors the device-level default).
pub const DEFAULT_ARRAY_SLOW_FACTOR: u32 = 10;

/// The scorer's verdict for one array slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayHealth {
    /// Serving normally.
    Healthy,
    /// At least one bad signal; not yet condemned.
    Suspect,
    /// Fail-stopped: enough consecutive failed heartbeats. Sticky until
    /// `restore_array`.
    Dead,
    /// Serving, but its own device scorer reports sustained degradation;
    /// excluded as a migration/evacuation target.
    Slow,
}

/// What happens to an array at a scheduled control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterFaultKind {
    /// The array fail-stops at the start of the tick (its engine halts
    /// without draining; in-flight work is stranded).
    Kill,
    /// The array returns to service: a killed slot restarts (recovering
    /// from its WAL when it has one), a degraded one heals its devices.
    Restore,
    /// Every device of the array silently serves at `factor`× calibrated
    /// latency — the whole-array fail-slow case (thermal event, firmware
    /// regression). Admission is not told; detection is the scorer's job.
    Slow(u32),
}

/// One scripted array transition at the start of control tick `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterFaultEvent {
    /// Array slot index.
    pub array: usize,
    /// Control tick (1-based, matching `RebalanceEvent::tick`) at whose
    /// start the transition applies.
    pub tick: u64,
    /// Kill, restore or slow.
    pub kind: ClusterFaultKind,
}

/// A malformed or fleet-violating chaos schedule, reported at parse /
/// validation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterFaultSpecError {
    /// A token did not match `kind:<array>@<tick>[x<factor>]`.
    BadToken {
        /// The offending token.
        token: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The event keyword was not `kill`/`restore`/`slow`.
    UnknownEvent {
        /// The offending token.
        token: String,
        /// The unrecognized keyword.
        event: String,
    },
    /// An event names an array the fleet does not have.
    ArrayOutOfRange {
        /// Array index named by the event.
        array: usize,
        /// Arrays in the fleet.
        arrays: usize,
    },
    /// A `slow` event carries a factor that does not slow anything down.
    SlowFactorTooSmall {
        /// Array index named by the event.
        array: usize,
        /// The offending factor.
        factor: u32,
    },
}

impl std::fmt::Display for ClusterFaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterFaultSpecError::BadToken { token, reason } => {
                write!(f, "chaos schedule token '{token}': {reason}")
            }
            ClusterFaultSpecError::UnknownEvent { token, event } => write!(
                f,
                "chaos schedule token '{token}': unknown event '{event}' \
                 (expected kill, restore or slow)"
            ),
            ClusterFaultSpecError::ArrayOutOfRange { array, arrays } => write!(
                f,
                "chaos event names array {array} but the fleet has only {arrays} \
                 arrays (0..={})",
                arrays.saturating_sub(1)
            ),
            ClusterFaultSpecError::SlowFactorTooSmall { array, factor } => write!(
                f,
                "slow event for array {array} has factor {factor}; a fail-slow \
                 multiplier must be at least 2 (use restore to clear)"
            ),
        }
    }
}

impl std::error::Error for ClusterFaultSpecError {}

/// A scripted sequence of whole-array kills, restores and fail-slow
/// degradations, applied by the control loop at tick boundaries.
///
/// ```
/// use fqos_cluster::ClusterFaultSchedule;
/// let s = ClusterFaultSchedule::new()
///     .kill(1, 6)
///     .restore(1, 14)
///     .slow(2, 4, 8);
/// assert_eq!(
///     s,
///     ClusterFaultSchedule::parse("kill:1@6,restore:1@14,slow:2@4x8").unwrap()
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterFaultSchedule {
    events: Vec<ClusterFaultEvent>,
}

impl ClusterFaultSchedule {
    /// Empty schedule: no scripted array faults.
    pub fn new() -> Self {
        ClusterFaultSchedule::default()
    }

    /// Script `array` to fail-stop at the start of control tick `tick`.
    pub fn kill(mut self, array: usize, tick: u64) -> Self {
        self.events.push(ClusterFaultEvent {
            array,
            tick,
            kind: ClusterFaultKind::Kill,
        });
        self
    }

    /// Script `array` to return to service at the start of `tick`.
    pub fn restore(mut self, array: usize, tick: u64) -> Self {
        self.events.push(ClusterFaultEvent {
            array,
            tick,
            kind: ClusterFaultKind::Restore,
        });
        self
    }

    /// Script every device of `array` to serve at `factor`× calibrated
    /// latency from the start of `tick` (silent whole-array fail-slow).
    pub fn slow(mut self, array: usize, tick: u64, factor: u32) -> Self {
        self.events.push(ClusterFaultEvent {
            array,
            tick,
            kind: ClusterFaultKind::Slow(factor),
        });
        self
    }

    /// True when no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[ClusterFaultEvent] {
        &self.events
    }

    /// Events firing at control tick `tick`, in insertion order.
    pub fn at(&self, tick: u64) -> impl Iterator<Item = &ClusterFaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }

    /// Parse a schedule spec: comma- or whitespace-separated
    /// `kill:<array>@<tick>`, `restore:<array>@<tick>` and
    /// `slow:<array>@<tick>[x<factor>]` tokens (factor defaults to
    /// [`DEFAULT_ARRAY_SLOW_FACTOR`]).
    pub fn parse(spec: &str) -> Result<Self, ClusterFaultSpecError> {
        let bad = |token: &str, reason: &str| ClusterFaultSpecError::BadToken {
            token: token.to_string(),
            reason: reason.to_string(),
        };
        let mut schedule = ClusterFaultSchedule::new();
        for token in spec.split([',', ' ']).filter(|t| !t.trim().is_empty()) {
            let token = token.trim();
            let (event, rest) = token
                .split_once(':')
                .ok_or_else(|| bad(token, "expected kind:<array>@<tick>"))?;
            let (array, at) = rest
                .split_once('@')
                .ok_or_else(|| bad(token, "expected <array>@<tick> after ':'"))?;
            let array: usize = array
                .parse()
                .map_err(|_| bad(token, "array index is not a number"))?;
            let (tick_str, factor) = match at.split_once('x') {
                Some((t, f)) => {
                    if event != "slow" {
                        return Err(bad(token, "only slow events take an x<factor>"));
                    }
                    let factor: u32 = f
                        .parse()
                        .map_err(|_| bad(token, "slow factor is not a number"))?;
                    (t, factor)
                }
                None => (at, DEFAULT_ARRAY_SLOW_FACTOR),
            };
            let tick: u64 = tick_str
                .parse()
                .map_err(|_| bad(token, "tick is not a number"))?;
            let kind = match event {
                "kill" => ClusterFaultKind::Kill,
                "restore" => ClusterFaultKind::Restore,
                "slow" => {
                    if factor < 2 {
                        return Err(ClusterFaultSpecError::SlowFactorTooSmall { array, factor });
                    }
                    ClusterFaultKind::Slow(factor)
                }
                other => {
                    return Err(ClusterFaultSpecError::UnknownEvent {
                        token: token.to_string(),
                        event: other.to_string(),
                    })
                }
            };
            schedule
                .events
                .push(ClusterFaultEvent { array, tick, kind });
        }
        Ok(schedule)
    }

    /// Check every event against the fleet size.
    pub fn validate(&self, arrays: usize) -> Result<(), ClusterFaultSpecError> {
        for e in &self.events {
            if e.array >= arrays {
                return Err(ClusterFaultSpecError::ArrayOutOfRange {
                    array: e.array,
                    arrays,
                });
            }
            if let ClusterFaultKind::Slow(factor) = e.kind {
                if factor < 2 {
                    return Err(ClusterFaultSpecError::SlowFactorTooSmall {
                        array: e.array,
                        factor,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Scorer knobs, in control ticks.
#[derive(Debug, Clone, Copy)]
pub struct ClusterHealthParams {
    /// Consecutive bad ticks (failed heartbeat or submit refusals seen)
    /// promoting `Suspect → Dead`. The evacuation latency bound: a kill at
    /// tick `T` is evacuated no later than tick `T + dead_after`.
    pub dead_after: u32,
    /// Consecutive slow ticks promoting `Suspect → Slow`.
    pub slow_after: u32,
    /// Consecutive clean ticks demoting `Suspect`/`Slow → Healthy`.
    pub recover_after: u32,
}

impl Default for ClusterHealthParams {
    fn default() -> Self {
        ClusterHealthParams {
            dead_after: 2,
            slow_after: 2,
            recover_after: 4,
        }
    }
}

/// One tick's heartbeat observation for an array slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Probe {
    /// The slot's engine answered (false for a fail-stopped slot).
    pub alive: bool,
    /// The engine's own device scorer reports a live-slow device.
    pub slow: bool,
}

#[derive(Debug, Clone, Copy)]
struct ArrayScore {
    state: ArrayHealth,
    bad_streak: u32,
    slow_streak: u32,
    clean_streak: u32,
    /// Submit refusals recorded by handles since the last tick.
    refusals: u64,
}

impl ArrayScore {
    fn fresh() -> Self {
        ArrayScore {
            state: ArrayHealth::Healthy,
            bad_streak: 0,
            slow_streak: 0,
            clean_streak: 0,
            refusals: 0,
        }
    }
}

/// Per-slot scorer state (behind the `cluster.health` lock) plus plane
/// counters.
#[derive(Debug)]
pub(crate) struct HealthPlane {
    params: ClusterHealthParams,
    scores: Vec<ArrayScore>,
    /// `Healthy → Suspect` promotions.
    pub suspects: u64,
    /// `Suspect → Dead` verdicts (each triggers one evacuation).
    pub verdicts_dead: u64,
    /// `Suspect → Slow` verdicts.
    pub verdicts_slow: u64,
    /// Demotions back to `Healthy`.
    pub recoveries: u64,
}

impl HealthPlane {
    pub fn new(arrays: usize, params: ClusterHealthParams) -> Self {
        HealthPlane {
            params,
            scores: vec![ArrayScore::fresh(); arrays],
            suspects: 0,
            verdicts_dead: 0,
            verdicts_slow: 0,
            recoveries: 0,
        }
    }

    /// Track a new slot (scale-out).
    pub fn push_array(&mut self) {
        self.scores.push(ArrayScore::fresh());
    }

    /// A handle routed a submission to `array` and was refused because the
    /// slot is fail-stopped.
    pub fn note_refusal(&mut self, array: usize) {
        if let Some(s) = self.scores.get_mut(array) {
            s.refusals += 1;
        }
    }

    /// Current verdict for `array`.
    #[cfg(test)]
    pub fn state(&self, array: usize) -> ArrayHealth {
        self.scores[array].state
    }

    /// Current verdict per slot.
    pub fn states(&self) -> Vec<ArrayHealth> {
        self.scores.iter().map(|s| s.state).collect()
    }

    /// Reset `array` to `Healthy` (after `restore_array`).
    pub fn reset(&mut self, array: usize) {
        self.scores[array] = ArrayScore::fresh();
    }

    /// Fold one tick's heartbeat into `array`'s score. Returns the new
    /// verdict exactly on the tick a promotion to `Dead` or `Slow` fires
    /// (the control loop evacuates on `Some(Dead)`).
    pub fn observe(&mut self, array: usize, probe: Probe) -> Option<ArrayHealth> {
        let p = self.params;
        let s = &mut self.scores[array];
        let bad = !probe.alive || s.refusals > 0;
        s.refusals = 0;
        if s.state == ArrayHealth::Dead {
            return None; // sticky until restore_array
        }
        if bad {
            s.clean_streak = 0;
            s.slow_streak = 0;
            s.bad_streak += 1;
            if s.state == ArrayHealth::Healthy {
                s.state = ArrayHealth::Suspect;
                self.suspects += 1;
            }
            if s.bad_streak >= p.dead_after {
                s.state = ArrayHealth::Dead;
                self.verdicts_dead += 1;
                return Some(ArrayHealth::Dead);
            }
            return None;
        }
        if probe.slow {
            s.bad_streak = 0;
            s.clean_streak = 0;
            s.slow_streak += 1;
            if s.state == ArrayHealth::Healthy {
                s.state = ArrayHealth::Suspect;
                self.suspects += 1;
            }
            if s.state != ArrayHealth::Slow && s.slow_streak >= p.slow_after {
                s.state = ArrayHealth::Slow;
                self.verdicts_slow += 1;
                return Some(ArrayHealth::Slow);
            }
            return None;
        }
        s.bad_streak = 0;
        s.slow_streak = 0;
        if s.state != ArrayHealth::Healthy {
            s.clean_streak += 1;
            if s.clean_streak >= p.recover_after {
                s.state = ArrayHealth::Healthy;
                s.clean_streak = 0;
                self.recoveries += 1;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: Probe = Probe {
        alive: true,
        slow: false,
    };
    const DOWN: Probe = Probe {
        alive: false,
        slow: false,
    };
    const SLOW: Probe = Probe {
        alive: true,
        slow: true,
    };

    #[test]
    fn parse_round_trips_the_builder() {
        let s = ClusterFaultSchedule::new()
            .kill(0, 3)
            .restore(0, 9)
            .slow(2, 5, 4);
        assert_eq!(
            ClusterFaultSchedule::parse("kill:0@3,restore:0@9,slow:2@5x4").unwrap(),
            s
        );
        assert_eq!(s.at(5).count(), 1);
        assert!(s.validate(3).is_ok());
        assert!(matches!(
            s.validate(2),
            Err(ClusterFaultSpecError::ArrayOutOfRange {
                array: 2,
                arrays: 2
            })
        ));
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        assert!(matches!(
            ClusterFaultSchedule::parse("explode:0@3"),
            Err(ClusterFaultSpecError::UnknownEvent { .. })
        ));
        assert!(matches!(
            ClusterFaultSchedule::parse("kill:0"),
            Err(ClusterFaultSpecError::BadToken { .. })
        ));
        assert!(matches!(
            ClusterFaultSchedule::parse("kill:0@3x2"),
            Err(ClusterFaultSpecError::BadToken { .. })
        ));
        assert!(matches!(
            ClusterFaultSchedule::parse("slow:1@4x1"),
            Err(ClusterFaultSpecError::SlowFactorTooSmall { .. })
        ));
        // A factor-less slow token takes the default.
        let s = ClusterFaultSchedule::parse("slow:1@4").unwrap();
        assert_eq!(
            s.events()[0].kind,
            ClusterFaultKind::Slow(DEFAULT_ARRAY_SLOW_FACTOR)
        );
    }

    #[test]
    fn dead_after_consecutive_failures_and_sticky() {
        let mut h = HealthPlane::new(2, ClusterHealthParams::default());
        assert_eq!(h.observe(0, DOWN), None);
        assert_eq!(h.state(0), ArrayHealth::Suspect);
        assert_eq!(h.observe(0, DOWN), Some(ArrayHealth::Dead));
        // Sticky: further probes change nothing until reset.
        assert_eq!(h.observe(0, OK), None);
        assert_eq!(h.state(0), ArrayHealth::Dead);
        h.reset(0);
        assert_eq!(h.state(0), ArrayHealth::Healthy);
        assert_eq!((h.suspects, h.verdicts_dead, h.verdicts_slow), (1, 1, 0));
    }

    #[test]
    fn one_clean_probe_clears_the_bad_streak() {
        let mut h = HealthPlane::new(1, ClusterHealthParams::default());
        assert_eq!(h.observe(0, DOWN), None);
        assert_eq!(h.observe(0, OK), None);
        // The streak restarted: one more failure is Suspect, not Dead.
        assert_eq!(h.observe(0, DOWN), None);
        assert_eq!(h.state(0), ArrayHealth::Suspect);
    }

    #[test]
    fn refusals_count_as_a_failed_heartbeat() {
        let mut h = HealthPlane::new(1, ClusterHealthParams::default());
        h.note_refusal(0);
        assert_eq!(h.observe(0, OK), None);
        assert_eq!(h.state(0), ArrayHealth::Suspect);
        h.note_refusal(0);
        assert_eq!(h.observe(0, OK), Some(ArrayHealth::Dead));
    }

    #[test]
    fn slow_promotes_then_recovers() {
        let p = ClusterHealthParams {
            recover_after: 2,
            ..ClusterHealthParams::default()
        };
        let mut h = HealthPlane::new(1, p);
        assert_eq!(h.observe(0, SLOW), None);
        assert_eq!(h.observe(0, SLOW), Some(ArrayHealth::Slow));
        assert_eq!(h.observe(0, OK), None);
        assert_eq!(h.observe(0, OK), None);
        assert_eq!(h.state(0), ArrayHealth::Healthy);
        assert_eq!(h.recoveries, 1);
    }
}
