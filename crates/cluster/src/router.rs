//! Consistent hashing with bounded loads over array groups.
//!
//! Tenants are placed on a vnode ring (`vnodes_per_array` points per
//! array, splitmix64-hashed) and walk clockwise past arrays whose load
//! bound is already met — the "consistent hashing with bounded loads"
//! construction. Placement is *sticky*: once a tenant is assigned, only an
//! explicit [`Router::reassign`] (rebalancing migration) or
//! [`Router::tombstone_array`] moves it, so topology changes disturb the
//! minimum set of tenants.
//!
//! The router is plain data; [`crate::QosCluster`] wraps it in a mutex
//! (lock class `cluster.router`) and pairs it with an epoch counter that
//! handles use to invalidate their per-thread route caches.

use std::collections::HashMap;

/// One tenant's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index of the array the tenant is served by.
    pub array: usize,
    /// Reservation weight counted against the array's load bound.
    pub weight: usize,
}

#[derive(Debug, Clone)]
struct ArrayShard {
    capacity: usize,
    load: usize,
    live: bool,
}

/// Consistent-hash ring with per-array load bounds.
#[derive(Debug, Clone)]
pub struct Router {
    /// Sorted `(hash point, array index)` ring over live arrays.
    vnodes: Vec<(u64, usize)>,
    arrays: Vec<ArrayShard>,
    assignments: HashMap<u64, Assignment>,
    vnodes_per_array: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn vnode_hash(array: usize, replica: usize) -> u64 {
    splitmix64((array as u64) << 32 | replica as u64)
}

impl Router {
    /// Ring over one array per entry of `capacities` (each array's load
    /// bound, normally its `S(M)`), with `vnodes_per_array` ring points
    /// per array.
    pub fn new(capacities: &[usize], vnodes_per_array: usize) -> Self {
        assert!(vnodes_per_array > 0, "ring needs at least one vnode");
        let mut r = Router {
            vnodes: Vec::new(),
            arrays: capacities
                .iter()
                .map(|&capacity| ArrayShard {
                    capacity,
                    load: 0,
                    live: true,
                })
                .collect(),
            assignments: HashMap::new(),
            vnodes_per_array,
        };
        r.rebuild_ring();
        r
    }

    fn rebuild_ring(&mut self) {
        self.vnodes.clear();
        for (i, a) in self.arrays.iter().enumerate() {
            if a.live {
                self.vnodes
                    .extend((0..self.vnodes_per_array).map(|v| (vnode_hash(i, v), i)));
            }
        }
        self.vnodes.sort_unstable();
    }

    /// Number of array slots (including removed ones, which stay as
    /// tombstones so indices remain stable).
    pub fn arrays(&self) -> usize {
        self.arrays.len()
    }

    /// Load currently assigned to `array`.
    pub fn load(&self, array: usize) -> usize {
        self.arrays[array].load
    }

    /// Load bound of `array`.
    pub fn capacity(&self, array: usize) -> usize {
        self.arrays[array].capacity
    }

    /// Current placement of `tenant`, if assigned.
    pub fn route(&self, tenant: u64) -> Option<usize> {
        self.assignments.get(&tenant).map(|a| a.array)
    }

    /// Full assignment (array and weight) of `tenant`, if assigned.
    pub fn assignment(&self, tenant: u64) -> Option<Assignment> {
        self.assignments.get(&tenant).copied()
    }

    /// All assignments, sorted by tenant id (test/report path).
    pub fn assignments(&self) -> Vec<(u64, Assignment)> {
        let mut all: Vec<_> = self.assignments.iter().map(|(&t, &a)| (t, a)).collect();
        all.sort_unstable_by_key(|&(t, _)| t);
        all
    }

    /// Ring walk from `tenant`'s hash point: live arrays in clockwise
    /// order, deduplicated.
    fn candidates(&self, tenant: u64) -> Vec<usize> {
        if self.vnodes.is_empty() {
            return Vec::new();
        }
        let h = splitmix64(tenant);
        let start = self.vnodes.partition_point(|&(p, _)| p < h) % self.vnodes.len();
        let mut seen = vec![false; self.arrays.len()];
        let mut order = Vec::new();
        for k in 0..self.vnodes.len() {
            let (_, a) = self.vnodes[(start + k) % self.vnodes.len()];
            if !seen[a] {
                seen[a] = true;
                order.push(a);
            }
        }
        order
    }

    /// Place `tenant` with `weight`: the first array clockwise from its
    /// hash point whose bound has room. Idempotent for an already-assigned
    /// tenant (returns its current array). `None` when no array can take
    /// the weight.
    pub fn assign(&mut self, tenant: u64, weight: usize) -> Option<usize> {
        if let Some(a) = self.assignments.get(&tenant) {
            return Some(a.array);
        }
        let target = self
            .candidates(tenant)
            .into_iter()
            .find(|&a| self.arrays[a].load + weight <= self.arrays[a].capacity)?;
        self.arrays[target].load += weight;
        self.assignments.insert(
            tenant,
            Assignment {
                array: target,
                weight,
            },
        );
        Some(target)
    }

    /// Place `tenant` on a specific array, bypassing the ring but not the
    /// load bound. Used by skew scenarios and the CLI's `--pin` option.
    pub fn assign_pinned(&mut self, tenant: u64, array: usize, weight: usize) -> bool {
        if self.assignments.contains_key(&tenant) || array >= self.arrays.len() {
            return false;
        }
        let shard = &mut self.arrays[array];
        if !shard.live || shard.load + weight > shard.capacity {
            return false;
        }
        shard.load += weight;
        self.assignments
            .insert(tenant, Assignment { array, weight });
        true
    }

    /// Drop `tenant`'s assignment, freeing its weight.
    pub fn release(&mut self, tenant: u64) -> Option<Assignment> {
        let a = self.assignments.remove(&tenant)?;
        self.arrays[a.array].load -= a.weight.min(self.arrays[a.array].load);
        Some(a)
    }

    /// Move `tenant` to `to` with `new_weight` (a rebalancing migration).
    /// Fails without side effects if the target bound has no room.
    pub fn reassign(&mut self, tenant: u64, to: usize, new_weight: usize) -> bool {
        let Some(&old) = self.assignments.get(&tenant) else {
            return false;
        };
        if to >= self.arrays.len() || !self.arrays[to].live {
            return false;
        }
        let headroom =
            self.arrays[to].capacity - self.arrays[to].load.min(self.arrays[to].capacity);
        let freed = if old.array == to { old.weight } else { 0 };
        if new_weight > headroom + freed {
            return false;
        }
        self.arrays[old.array].load -= old.weight.min(self.arrays[old.array].load);
        self.arrays[to].load += new_weight;
        self.assignments.insert(
            tenant,
            Assignment {
                array: to,
                weight: new_weight,
            },
        );
        true
    }

    /// Add an array with the given bound; returns its index. Existing
    /// assignments do not move (stability under scale-out).
    pub fn add_array(&mut self, capacity: usize) -> usize {
        self.arrays.push(ArrayShard {
            capacity,
            load: 0,
            live: true,
        });
        self.rebuild_ring();
        self.arrays.len() - 1
    }

    /// Whether `array` is live (present on the ring). Out-of-range counts
    /// as not live.
    pub fn is_live(&self, array: usize) -> bool {
        self.arrays.get(array).is_some_and(|a| a.live)
    }

    /// Return a tombstoned array to the ring (a fail-stopped array coming
    /// back through `restore_array`). Idempotent for a live array. Its old
    /// tenants do not move back — placement stays sticky; only new
    /// assignments and rebalancing migrations land on it.
    pub fn revive_array(&mut self, array: usize) {
        if array < self.arrays.len() && !self.arrays[array].live {
            self.arrays[array].live = true;
            self.rebuild_ring();
        }
    }

    /// Remove an array; its tenants (and only its tenants) are re-placed
    /// by ring walk. Returns `(tenant, new_array)` per displaced tenant,
    /// `None` where no remaining array had room.
    pub fn tombstone_array(&mut self, array: usize) -> Vec<(u64, Option<usize>)> {
        if array >= self.arrays.len() || !self.arrays[array].live {
            return Vec::new();
        }
        self.arrays[array].live = false;
        self.arrays[array].load = 0;
        self.rebuild_ring();
        let mut displaced: Vec<u64> = self
            .assignments
            .iter()
            .filter(|(_, a)| a.array == array)
            .map(|(&t, _)| t)
            .collect();
        displaced.sort_unstable();
        displaced
            .into_iter()
            .map(|t| {
                let weight = self.assignments.remove(&t).map_or(1, |a| a.weight);
                (t, self.assign(t, weight))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_walk_respects_capacity() {
        let mut r = Router::new(&[2, 2], 16);
        for t in 0..4u64 {
            assert!(r.assign(t, 1).is_some());
        }
        assert_eq!(r.load(0) + r.load(1), 4);
        assert!(r.load(0) <= 2 && r.load(1) <= 2);
        assert_eq!(r.assign(99, 1), None, "fleet is full");
        r.release(0);
        assert!(r.assign(99, 1).is_some());
    }

    #[test]
    fn assignment_is_sticky_and_idempotent() {
        let mut r = Router::new(&[10, 10], 16);
        let first = r.assign(7, 2).unwrap();
        assert_eq!(r.assign(7, 2), Some(first));
        assert_eq!(r.route(7), Some(first));
        assert_eq!(r.load(first), 2, "re-assign must not double-count");
    }

    #[test]
    fn reassign_moves_weight_atomically() {
        let mut r = Router::new(&[5, 5], 16);
        assert!(r.assign_pinned(1, 0, 2));
        assert!(r.reassign(1, 1, 4));
        assert_eq!(r.route(1), Some(1));
        assert_eq!((r.load(0), r.load(1)), (0, 4));
        // No room: 4 already held, 2 more than the bound allows.
        assert!(r.assign_pinned(2, 1, 1));
        assert!(!r.reassign(2, 1, 3), "same-array resize past bound");
        assert_eq!(r.load(1), 5);
    }

    #[test]
    fn removing_an_array_moves_only_its_tenants() {
        let mut r = Router::new(&[100, 100, 100], 32);
        for t in 0..60u64 {
            r.assign(t, 1);
        }
        let before: HashMap<u64, usize> = (0..60).filter_map(|t| Some((t, r.route(t)?))).collect();
        let moved = r.tombstone_array(1);
        for (t, &was) in &before {
            if was == 1 {
                let now = r.route(*t).unwrap();
                assert_ne!(now, 1);
                assert!(moved.iter().any(|&(mt, to)| mt == *t && to == Some(now)));
            } else {
                assert_eq!(r.route(*t), Some(was), "tenant {t} moved spuriously");
            }
        }
    }
}
