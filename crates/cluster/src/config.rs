//! Cluster construction parameters.

use crate::error::ClusterError;
use crate::health::{ClusterFaultSchedule, ClusterHealthParams};
use fqos_server::ServerConfig;

/// Configuration for a [`crate::QosCluster`]: one [`ServerConfig`] per
/// array plus routing and control-loop knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One entry per array; each array runs the paper's §III-A controller
    /// unchanged over its own geometry.
    pub arrays: Vec<ServerConfig>,
    /// Ring points per array for the consistent-hash router.
    pub vnodes_per_array: usize,
    /// Whether the global control loop may migrate tenants.
    pub rebalance: bool,
    /// Minimum control ticks between two rebalances (hysteresis: a
    /// migration must see its effect before the next one is considered).
    pub cooldown_ticks: u64,
    /// Per-tick pressure (rejections + delays + over-budget overflow) at
    /// which an array counts as saturated.
    pub min_pressure: u64,
    /// Array-level liveness scoring thresholds.
    pub health: ClusterHealthParams,
    /// Scripted whole-array faults, applied by the control loop at the
    /// start of their tick.
    pub chaos: ClusterFaultSchedule,
}

impl ClusterConfig {
    /// Cluster over the given arrays with default routing/control knobs.
    pub fn new(arrays: Vec<ServerConfig>) -> Self {
        ClusterConfig {
            arrays,
            vnodes_per_array: 64,
            rebalance: true,
            cooldown_ticks: 2,
            min_pressure: 1,
            health: ClusterHealthParams::default(),
            chaos: ClusterFaultSchedule::new(),
        }
    }

    /// `n` identical arrays.
    pub fn uniform(n: usize, array: &ServerConfig) -> Self {
        ClusterConfig::new(vec![array.clone(); n])
    }

    /// Builder: ring points per array.
    pub fn with_vnodes(mut self, vnodes_per_array: usize) -> Self {
        self.vnodes_per_array = vnodes_per_array;
        self
    }

    /// Builder: enable/disable the rebalancing control loop.
    pub fn with_rebalance(mut self, rebalance: bool) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Builder: rebalance hysteresis in control ticks.
    pub fn with_cooldown(mut self, cooldown_ticks: u64) -> Self {
        self.cooldown_ticks = cooldown_ticks;
        self
    }

    /// Builder: saturation threshold in pressure units per tick.
    pub fn with_min_pressure(mut self, min_pressure: u64) -> Self {
        self.min_pressure = min_pressure;
        self
    }

    /// Builder: liveness scoring thresholds.
    pub fn with_health(mut self, health: ClusterHealthParams) -> Self {
        self.health = health;
        self
    }

    /// Builder: scripted whole-array fault schedule.
    pub fn with_chaos(mut self, chaos: ClusterFaultSchedule) -> Self {
        self.chaos = chaos;
        self
    }

    /// Structural validation (per-array configs validate themselves in
    /// [`fqos_server::QosServer::new`]).
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.arrays.is_empty() {
            return Err(ClusterError::Config(
                "cluster needs at least one array".into(),
            ));
        }
        if self.vnodes_per_array == 0 {
            return Err(ClusterError::Config(
                "vnodes_per_array must be positive".into(),
            ));
        }
        if self.health.dead_after == 0 || self.health.slow_after == 0 {
            return Err(ClusterError::Config(
                "health verdicts need at least one bad tick".into(),
            ));
        }
        self.chaos.validate(self.arrays.len())?;
        Ok(())
    }
}
