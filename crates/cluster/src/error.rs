//! Typed cluster-tier errors.
//!
//! Everything the fleet tier can refuse — registration, routing,
//! membership changes and chaos-schedule specs — is reported through
//! [`ClusterError`] instead of ad-hoc strings, so the CLI and tests can
//! match on the failure class while `Display` keeps the operator-facing
//! message.

use crate::health::ClusterFaultSpecError;
use fqos_server::RegisterError;

/// Why a cluster operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Structural configuration problems (empty fleet, zero vnodes, …).
    Config(String),
    /// Building or recovering one array's engine failed.
    Engine {
        /// Array slot being built or recovered.
        array: usize,
        /// The engine's own error message.
        source: String,
    },
    /// No array in the fleet has headroom for the reservation.
    NoHeadroom {
        /// The tenant being placed.
        tenant: u64,
        /// The reservation that found no home.
        reserved: usize,
    },
    /// A pinned placement exceeds the target array's load bound (or the
    /// array is tombstoned).
    ArrayFull {
        /// The pinned target.
        array: usize,
        /// The tenant being placed.
        tenant: u64,
        /// The refused reservation.
        reserved: usize,
    },
    /// The routed array's admission plane refused the reservation (the
    /// router's bound and the engine's `S(M)` disagreed).
    ArrayRefused {
        /// The refusing array.
        array: usize,
        /// The tenant being placed.
        tenant: u64,
        /// The engine-side refusal.
        source: RegisterError,
    },
    /// An array index outside the fleet.
    UnknownArray {
        /// The named slot.
        array: usize,
        /// Slots in the fleet (live, dead and retired).
        arrays: usize,
    },
    /// The operation needs a live array but the slot is fail-stopped or
    /// retired.
    ArrayNotLive {
        /// The named slot.
        array: usize,
    },
    /// `restore_array` on a slot that is not dead.
    ArrayNotDead {
        /// The named slot.
        array: usize,
    },
    /// Removing or killing the slot would leave the fleet without a live
    /// array to evacuate to.
    LastArray {
        /// The named slot.
        array: usize,
    },
    /// A malformed or fleet-violating chaos schedule.
    FaultSpec(ClusterFaultSpecError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(msg) => write!(f, "cluster config: {msg}"),
            ClusterError::Engine { array, source } => {
                write!(f, "array {array} engine: {source}")
            }
            ClusterError::NoHeadroom { tenant, reserved } => write!(
                f,
                "no array has headroom for tenant {tenant} (reservation {reserved})"
            ),
            ClusterError::ArrayFull {
                array,
                tenant,
                reserved,
            } => write!(
                f,
                "array {array} cannot take tenant {tenant} (reservation {reserved})"
            ),
            ClusterError::ArrayRefused {
                array,
                tenant,
                source,
            } => write!(f, "array {array} refused tenant {tenant}: {source}"),
            ClusterError::UnknownArray { array, arrays } => {
                write!(f, "array {array} does not exist (fleet has {arrays} slots)")
            }
            ClusterError::ArrayNotLive { array } => {
                write!(f, "array {array} is not live (fail-stopped or retired)")
            }
            ClusterError::ArrayNotDead { array } => {
                write!(f, "array {array} is not dead; nothing to restore")
            }
            ClusterError::LastArray { array } => write!(
                f,
                "array {array} is the last live array; refusing to remove it"
            ),
            ClusterError::FaultSpec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ClusterFaultSpecError> for ClusterError {
    fn from(e: ClusterFaultSpecError) -> Self {
        ClusterError::FaultSpec(e)
    }
}
