//! The cluster engine: N arrays behind one router and one control loop,
//! tolerant to whole-array fail-stop and fail-slow.
//!
//! # Failure model
//!
//! An array can *fail-stop* ([`QosCluster::kill_array`] or a scripted
//! `kill:A@T`): its engine halts without draining, stranding whatever was
//! admitted but not yet settled. The stranded difference is charged to the
//! fleet's `evacuation_lost` ledger the moment the engine halts, so the
//! extended conservation law
//!
//! ```text
//! Σ served + Σ fault_lost + Σ hedges_cancelled
//!     + migrated_in_flight + evacuation_lost == Σ admitted_total
//! ```
//!
//! holds throughout the outage, not just after repair. Detection is
//! decoupled from injection: the control loop heartbeats every slot once
//! per tick and handles report transport-level refusals; the health plane
//! (`crate::health`) turns those symptoms into a `Dead` verdict after
//! `dead_after` consecutive bad ticks, which triggers *emergency
//! evacuation* — the dead slot is tombstoned in the router and its tenants
//! are re-registered on survivors (register-on-target; the dead source has
//! nothing left to drain).
//!
//! [`QosCluster::restore_array`] brings a killed slot back. With a WAL the
//! engine rebuilds from its durable record ([`QosServer::recover`]) and the
//! ledger charge is reversed — losses re-appear as the engine's own
//! `fault_lost`/in-flight terms, and tenants the evacuation moved elsewhere
//! are reconciled into drain records. Without a WAL the slot restarts
//! empty, its frozen counters join the fleet's history and the stranded
//! residue stays lost.
//!
//! Membership is elastic: [`QosCluster::add_array`] grows the fleet at
//! runtime and [`QosCluster::remove_array`] retires a live slot gracefully
//! behind a router tombstone (transactional re-registration on targets,
//! cooperative drain on the source).
//!
//! # Lock order
//!
//! `cluster.ctrl` → `cluster.router` → `cluster.arrays` → `cluster.health`
//! → (engine classes). The control loop holds `ctrl` across a whole tick
//! and may acquire the router, the slot table and any array's registration
//! path beneath it; submission handles take the router lock alone on a
//! route-cache miss, the slot table read lock alone on an epoch refresh,
//! and the health lock alone to report refusals — never while inside an
//! array.

use crate::config::ClusterConfig;
use crate::ctrl::{
    pressure, ArrayObs, CtrlState, Drained, EvacuationEvent, RebalanceEvent, TenantObs,
};
use crate::error::ClusterError;
use crate::health::{ArrayHealth, ClusterFaultEvent, ClusterFaultKind, HealthPlane, Probe};
use crate::metrics::ClusterMetrics;
use crate::router::Router;
use fqos_server::{
    MetricsSnapshot, OverloadPolicy, QosServer, RejectReason, ServerConfig, SubmitOutcome,
    SubmitterHandle,
};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What occupies an array slot. Slots are never removed — indices stay
/// stable for the router, the health plane and the audit — they change
/// state instead.
enum ArrayState {
    /// Serving (possibly retired, i.e. draining toward removal).
    Live(QosServer),
    /// Fail-stopped: the engine is gone; `frozen` is its last consistent
    /// snapshot and `cfg` is kept so `restore_array` can rebuild it.
    Dead {
        frozen: Box<MetricsSnapshot>,
        cfg: Box<ServerConfig>,
    },
    /// Transient placeholder while a mutation swaps the state; never
    /// observable outside a held write lock.
    Vacant,
}

/// One array slot: its engine (or corpse), identity and ledger hooks.
struct ArraySlot {
    state: ArrayState,
    /// Bumped whenever the slot gets a *new* engine (restore); handles
    /// compare it to know when their [`SubmitterHandle`] is stale.
    incarnation: u64,
    /// Frozen snapshots of prior fail-stopped incarnations that were not
    /// WAL-reconciled (fresh restarts). Their counters stay in the fleet's
    /// history; their stranded residue stays in `evacuation_lost`.
    past: Vec<MetricsSnapshot>,
    /// Graceful removal: tombstoned in the router, still settling its
    /// drain, excluded from placement, probing and migration.
    retired: bool,
    /// `(ε, S(M))` for the controller's budget algebra.
    budget: (f64, usize),
    /// Submissions routed to this slot (handle-side count).
    routed: Arc<AtomicU64>,
}

/// State shared between the cluster, its controller and every handle.
struct Shared {
    /// Controller state (lock class `cluster.ctrl`).
    ctrl: Mutex<CtrlState>,
    /// Tenant placement (lock class `cluster.router`).
    router: Mutex<Router>,
    /// The slot table (lock class `cluster.arrays`). Readers are handles
    /// refreshing their engine views and the control loop's probe pass;
    /// writers are membership changes (kill/restore/add/remove).
    arrays: RwLock<Vec<ArraySlot>>,
    /// The array health plane (lock class `cluster.health`). Named
    /// `liveness` — see the lock table in DESIGN.md.
    liveness: Mutex<HealthPlane>,
    /// Bumped on every placement or membership change; handles
    /// compare-and-refresh their route caches and engine views against it.
    epoch: AtomicU64,
    /// Submissions refused at the router (no assignment).
    unrouted: AtomicU64,
    /// Migrations executed.
    rebalances: AtomicU64,
    /// Admissions stranded on fail-stopped arrays, net of WAL-restore
    /// reversals: the `evacuation_lost` term of the extended law.
    evacuation_lost: AtomicU64,
    /// Tenants re-registered on survivors by emergency evacuations.
    evacuated_tenants: AtomicU64,
    /// Submissions refused at the transport level because the routed
    /// array was fail-stopped (each also feeds the health plane).
    refused_unavailable: AtomicU64,
}

/// Admissions a snapshot admitted but never settled: the stranded work a
/// fail-stop leaves behind, charged to `evacuation_lost`.
fn residue(s: &MetricsSnapshot) -> u64 {
    s.admitted_total()
        .saturating_sub(s.served + s.fault_lost + s.hedges_cancelled)
}

/// Unsettled admissions of drained tenants on their source arrays: the
/// `migrated_in_flight` term of the cluster law. Counts only departed
/// records on *live* sources — a frozen (dead) source's whole residue is
/// already in `evacuation_lost`, and a tenant that later returned to
/// `from` is live there again and accounted normally.
fn migrated_in_flight(drained: &[Drained], snaps: &[MetricsSnapshot], frozen: &[bool]) -> u64 {
    drained
        .iter()
        .filter(|d| !frozen.get(d.from).copied().unwrap_or(false))
        .map(|d| {
            snaps[d.from]
                .tenants
                .iter()
                .find(|t| t.tenant == d.tenant && !t.live)
                .map_or(0, fqos_server::TenantSnapshot::in_flight)
        })
        .sum()
}

/// Assemble the fleet metrics from a consistent view of all planes.
#[allow(clippy::too_many_arguments)]
fn fleet_metrics(
    shared: &Shared,
    ctrl: &CtrlState,
    liveness: &HealthPlane,
    snaps: Vec<MetricsSnapshot>,
    frozen: Vec<bool>,
    retired: Vec<bool>,
    past: Vec<MetricsSnapshot>,
    routed: Vec<u64>,
) -> ClusterMetrics {
    ClusterMetrics {
        migrated_in_flight: migrated_in_flight(&ctrl.drained, &snaps, &frozen),
        routed,
        unrouted: shared.unrouted.load(Ordering::Relaxed),
        rebalances: shared.rebalances.load(Ordering::Relaxed),
        router_epoch: shared.epoch.load(Ordering::Acquire),
        evacuation_lost: shared.evacuation_lost.load(Ordering::Relaxed),
        evacuated_tenants: shared.evacuated_tenants.load(Ordering::Relaxed),
        refused_unavailable: shared.refused_unavailable.load(Ordering::Relaxed),
        health: liveness.states(),
        health_suspects: liveness.suspects,
        health_verdicts_dead: liveness.verdicts_dead,
        health_verdicts_slow: liveness.verdicts_slow,
        health_recoveries: liveness.recoveries,
        events: ctrl.events.clone(),
        evacuations: ctrl.evacuations.clone(),
        arrays: snaps,
        frozen,
        retired,
        past,
    }
}

/// N independent [`QosServer`] arrays behind a consistent-hash routing
/// tier with an ε-budget rebalancing control loop and an array health
/// plane (fail-stop detection, emergency evacuation, elastic membership).
///
/// Each array runs the paper's §III-A admission controller unchanged; the
/// cluster only decides *which* array a tenant lives on, watches per-array
/// pressure and liveness, and moves tenants — by migration when an array
/// saturates, by evacuation when one dies.
pub struct QosCluster {
    shared: Arc<Shared>,
    cfg: ClusterConfig,
}

impl QosCluster {
    /// Build every array, the routing tier and the health plane.
    pub fn new(cfg: ClusterConfig) -> Result<Self, ClusterError> {
        cfg.validate()?;
        let servers: Vec<QosServer> = cfg
            .arrays
            .iter()
            .enumerate()
            .map(|(array, a)| {
                QosServer::new(a.clone()).map_err(|source| ClusterError::Engine { array, source })
            })
            .collect::<Result<_, _>>()?;
        let capacities: Vec<usize> = servers
            .iter()
            .map(|a| a.config().qos.request_limit())
            .collect();
        let slots: Vec<ArraySlot> = servers
            .into_iter()
            .zip(&capacities)
            .map(|(server, &capacity)| ArraySlot {
                budget: (server.config().qos.epsilon, capacity),
                state: ArrayState::Live(server),
                incarnation: 0,
                past: Vec::new(),
                retired: false,
                routed: Arc::new(AtomicU64::new(0)),
            })
            .collect();
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(CtrlState::default()),
            router: Mutex::new(Router::new(&capacities, cfg.vnodes_per_array)),
            liveness: Mutex::new(HealthPlane::new(slots.len(), cfg.health)),
            arrays: RwLock::new(slots),
            epoch: AtomicU64::new(0),
            unrouted: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            evacuation_lost: AtomicU64::new(0),
            evacuated_tenants: AtomicU64::new(0),
            refused_unavailable: AtomicU64::new(0),
        });
        Ok(QosCluster { shared, cfg })
    }

    /// Number of array slots in the fleet (live, dead and retired — slots
    /// are never removed, so indices stay stable).
    pub fn arrays(&self) -> usize {
        self.shared.arrays.read().len()
    }

    /// The array a tenant currently routes to.
    pub fn route_of(&self, tenant: u64) -> Option<usize> {
        self.shared.router.lock().route(tenant)
    }

    /// Current router epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Current health verdict per slot.
    pub fn health(&self) -> Vec<ArrayHealth> {
        self.shared.liveness.lock().states()
    }

    /// Current `evacuation_lost` ledger balance.
    pub fn evacuation_lost(&self) -> u64 {
        self.shared.evacuation_lost.load(Ordering::Relaxed)
    }

    /// Register a tenant: the router places it (consistent hashing with
    /// bounded loads), the chosen array admits the reservation against its
    /// own `S(M)`. Returns the array index.
    pub fn register_tenant(
        &self,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
    ) -> Result<usize, ClusterError> {
        let mut ctrl = self.shared.ctrl.lock();
        let mut router = self.shared.router.lock();
        let arrays = self.shared.arrays.read();
        let Some(array) = router.assign(tenant, reserved) else {
            return Err(ClusterError::NoHeadroom { tenant, reserved });
        };
        let ArrayState::Live(server) = &arrays[array].state else {
            // The ring can still point at a killed slot before the Dead
            // verdict tombstones it; refuse typed, the caller can retry
            // after a control tick.
            router.release(tenant);
            return Err(ClusterError::ArrayNotLive { array });
        };
        match server.register(tenant, reserved, policy) {
            Ok(_) => {
                ctrl.directory.insert(tenant, policy);
                Ok(array)
            }
            Err(source) => {
                router.release(tenant);
                Err(ClusterError::ArrayRefused {
                    array,
                    tenant,
                    source,
                })
            }
        }
    }

    /// Register a tenant on a specific array, bypassing the ring (skew
    /// scenarios, `--pin`). Still bounded by the array's load bound.
    pub fn register_pinned(
        &self,
        array: usize,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
    ) -> Result<(), ClusterError> {
        let mut ctrl = self.shared.ctrl.lock();
        let mut router = self.shared.router.lock();
        let arrays = self.shared.arrays.read();
        if array >= arrays.len() {
            return Err(ClusterError::UnknownArray {
                array,
                arrays: arrays.len(),
            });
        }
        if arrays[array].retired || !matches!(arrays[array].state, ArrayState::Live(_)) {
            return Err(ClusterError::ArrayNotLive { array });
        }
        if !router.assign_pinned(tenant, array, reserved) {
            return Err(ClusterError::ArrayFull {
                array,
                tenant,
                reserved,
            });
        }
        let ArrayState::Live(server) = &arrays[array].state else {
            unreachable!("state checked above under the same write-excluding read lock");
        };
        match server.register(tenant, reserved, policy) {
            Ok(_) => {
                ctrl.directory.insert(tenant, policy);
                Ok(())
            }
            Err(source) => {
                router.release(tenant);
                Err(ClusterError::ArrayRefused {
                    array,
                    tenant,
                    source,
                })
            }
        }
    }

    /// Deregister a tenant fleet-wide. Its reservation frees immediately;
    /// in-flight admissions still settle on its array (departed records
    /// stay resolvable at seal).
    pub fn deregister_tenant(&self, tenant: u64) -> bool {
        let mut ctrl = self.shared.ctrl.lock();
        let mut router = self.shared.router.lock();
        let Some(array) = router.route(tenant) else {
            return false;
        };
        router.release(tenant);
        ctrl.directory.remove(&tenant);
        drop(router);
        drop(ctrl);
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        let arrays = self.shared.arrays.read();
        match &arrays[array].state {
            ArrayState::Live(server) => server.deregister(tenant).is_some(),
            // The engine died with the registration; the route existed, so
            // the deregistration "succeeds" — the stranded work is already
            // charged to evacuation_lost.
            _ => true,
        }
    }

    /// A submission endpoint spanning every array (one per submitter
    /// thread, same discipline as [`QosServer::handle`]).
    pub fn handle(&self) -> ClusterHandle {
        let mut h = ClusterHandle {
            slots: Vec::new(),
            epoch: u64::MAX,
            shared: Arc::clone(&self.shared),
            cache: HashMap::new(),
        };
        h.refresh();
        h
    }

    /// Fail-stop `array` *now*: its engine halts without draining (queued
    /// work finishes, open windows never seal) and the stranded residue is
    /// charged to `evacuation_lost` so the extended law holds during the
    /// outage. The router is *not* touched — discovering the corpse is the
    /// health plane's job, which makes the detection latency observable.
    /// Returns the stranded admission count.
    pub fn kill_array(&self, array: usize) -> Result<u64, ClusterError> {
        self.kill_slot(array)
    }

    /// Bring a fail-stopped `array` back. With a WAL the engine recovers
    /// its durable record and the `evacuation_lost` charge is reversed
    /// (losses re-surface as the engine's own accounting); tenants the
    /// evacuation already moved to survivors are deregistered here and
    /// become drain records. Without a WAL the slot restarts empty and its
    /// frozen history is archived. Returns `true` when the engine
    /// recovered from a WAL.
    pub fn restore_array(&self, array: usize) -> Result<bool, ClusterError> {
        let mut ctrl = self.shared.ctrl.lock();
        self.restore_slot(&mut ctrl, array)
    }

    /// Degrade every device of a live `array` to `factor`× calibrated
    /// service time — the silent whole-array fail-slow case. Detection is
    /// the health plane's job.
    pub fn degrade_array(&self, array: usize, factor: u32) -> Result<(), ClusterError> {
        let arrays = self.shared.arrays.read();
        let slot = arrays.get(array).ok_or(ClusterError::UnknownArray {
            array,
            arrays: arrays.len(),
        })?;
        match &slot.state {
            ArrayState::Live(server) if !slot.retired => {
                for d in 0..server.fault_plane().devices() {
                    let _ = server.degrade_device(d, factor);
                }
                Ok(())
            }
            _ => Err(ClusterError::ArrayNotLive { array }),
        }
    }

    /// Grow the fleet: build a new array at runtime and add it to the
    /// ring. Existing placements do not move (stability under scale-out);
    /// the control loop migrates hot tenants onto the new headroom on its
    /// own cadence. Returns the new slot index.
    pub fn add_array(&self, cfg: ServerConfig) -> Result<usize, ClusterError> {
        let mut router = self.shared.router.lock();
        let mut arrays = self.shared.arrays.write();
        let array = arrays.len();
        let server =
            QosServer::new(cfg).map_err(|source| ClusterError::Engine { array, source })?;
        let capacity = server.config().qos.request_limit();
        let ring_index = router.add_array(capacity);
        debug_assert_eq!(ring_index, array, "router and slot table diverged");
        arrays.push(ArraySlot {
            budget: (server.config().qos.epsilon, capacity),
            state: ArrayState::Live(server),
            incarnation: 0,
            past: Vec::new(),
            retired: false,
            routed: Arc::new(AtomicU64::new(0)),
        });
        drop(arrays);
        drop(router);
        self.shared.liveness.lock().push_array();
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(array)
    }

    /// Retire a live `array` gracefully: tombstone it in the router,
    /// re-register its tenants on survivors (transactional, same shape as
    /// a migration) and cooperatively drain the source — it keeps settling
    /// in-flight admissions until [`QosCluster::finish`]. Returns the
    /// `(tenant, new_array)` placements (`None` = nobody could take it).
    pub fn remove_array(&self, array: usize) -> Result<Vec<(u64, Option<usize>)>, ClusterError> {
        let mut ctrl = self.shared.ctrl.lock();
        let mut router = self.shared.router.lock();
        let mut arrays = self.shared.arrays.write();
        if array >= arrays.len() {
            return Err(ClusterError::UnknownArray {
                array,
                arrays: arrays.len(),
            });
        }
        if arrays[array].retired || !matches!(arrays[array].state, ArrayState::Live(_)) {
            return Err(ClusterError::ArrayNotLive { array });
        }
        let survivors = arrays
            .iter()
            .enumerate()
            .filter(|&(i, s)| i != array && !s.retired && matches!(s.state, ArrayState::Live(_)))
            .count();
        if survivors == 0 {
            return Err(ClusterError::LastArray { array });
        }
        let displaced = router.tombstone_array(array);
        let mut placements = Vec::with_capacity(displaced.len());
        for (tenant, target) in displaced {
            let placed = target.is_some_and(|to| {
                let policy = ctrl
                    .directory
                    .get(&tenant)
                    .copied()
                    .unwrap_or(OverloadPolicy::Delay);
                let weight = router.assignment(tenant).map_or(1, |a| a.weight);
                match &arrays[to].state {
                    ArrayState::Live(server) if !arrays[to].retired => {
                        server.register(tenant, weight, policy).is_ok()
                    }
                    _ => false,
                }
            });
            if !placed {
                router.release(tenant);
                ctrl.directory.remove(&tenant);
            }
            // Cooperative drain: the retiring source frees the reservation
            // now and settles the tenant's in-flight at its own seals.
            if let ArrayState::Live(server) = &arrays[array].state {
                if server.deregister(tenant).is_some()
                    && !ctrl
                        .drained
                        .iter()
                        .any(|d| d.tenant == tenant && d.from == array)
                {
                    ctrl.drained.push(Drained {
                        tenant,
                        from: array,
                    });
                }
            }
            placements.push((tenant, if placed { target } else { None }));
        }
        arrays[array].retired = true;
        drop(arrays);
        drop(router);
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(placements)
    }

    fn kill_slot(&self, array: usize) -> Result<u64, ClusterError> {
        let mut arrays = self.shared.arrays.write();
        let total = arrays.len();
        let slot = arrays.get_mut(array).ok_or(ClusterError::UnknownArray {
            array,
            arrays: total,
        })?;
        if slot.retired {
            return Err(ClusterError::ArrayNotLive { array });
        }
        match std::mem::replace(&mut slot.state, ArrayState::Vacant) {
            ArrayState::Live(server) => {
                let cfg = Box::new(server.config().clone());
                let frozen = Box::new(server.halt());
                let stranded = residue(&frozen);
                slot.state = ArrayState::Dead { frozen, cfg };
                drop(arrays);
                self.shared
                    .evacuation_lost
                    .fetch_add(stranded, Ordering::Relaxed);
                // Handles drop their dead SubmitterHandle on the next
                // refresh and start reporting transport refusals.
                self.shared.epoch.fetch_add(1, Ordering::AcqRel);
                Ok(stranded)
            }
            other => {
                slot.state = other;
                Err(ClusterError::ArrayNotLive { array })
            }
        }
    }

    fn restore_slot(&self, ctrl: &mut CtrlState, array: usize) -> Result<bool, ClusterError> {
        let mut router = self.shared.router.lock();
        let mut arrays = self.shared.arrays.write();
        let total = arrays.len();
        let slot = arrays.get_mut(array).ok_or(ClusterError::UnknownArray {
            array,
            arrays: total,
        })?;
        match std::mem::replace(&mut slot.state, ArrayState::Vacant) {
            ArrayState::Dead { frozen, cfg } => {
                let recovered = cfg.wal.is_some();
                let built = if recovered {
                    QosServer::recover((*cfg).clone())
                } else {
                    QosServer::new((*cfg).clone())
                };
                let server = match built {
                    Ok(s) => s,
                    Err(source) => {
                        // Put the corpse back; the slot stays dead.
                        slot.state = ArrayState::Dead { frozen, cfg };
                        return Err(ClusterError::Engine { array, source });
                    }
                };
                if recovered {
                    // The durable record supersedes the frozen counters:
                    // reverse the ledger charge — what was stranded is now
                    // re-parked in-flight or the engine's own fault_lost.
                    self.shared
                        .evacuation_lost
                        .fetch_sub(residue(&frozen), Ordering::Relaxed);
                    // Tenants the evacuation moved to survivors while this
                    // slot was dead: drop their recovered registrations;
                    // their durable in-flight settles here as departed
                    // records (migrated_in_flight).
                    for t in server.metrics().tenants.iter().filter(|t| t.live) {
                        if router.route(t.tenant) != Some(array) {
                            server.deregister(t.tenant);
                            if !ctrl
                                .drained
                                .iter()
                                .any(|d| d.tenant == t.tenant && d.from == array)
                            {
                                ctrl.drained.push(Drained {
                                    tenant: t.tenant,
                                    from: array,
                                });
                            }
                        }
                    }
                } else {
                    // No log: the frozen counters are permanent history
                    // and the stranded residue stays lost. A fresh engine
                    // also lost its registry — rebuild it for tenants
                    // still routed here (restore raced the Dead verdict).
                    for (tenant, a) in router.assignments() {
                        if a.array == array {
                            let policy = ctrl
                                .directory
                                .get(&tenant)
                                .copied()
                                .unwrap_or(OverloadPolicy::Delay);
                            let _ = server.register(tenant, a.weight, policy);
                        }
                    }
                    slot.past.push(*frozen);
                }
                slot.state = ArrayState::Live(server);
                slot.incarnation += 1;
                router.revive_array(array);
                drop(arrays);
                drop(router);
                self.shared.liveness.lock().reset(array);
                self.shared.epoch.fetch_add(1, Ordering::AcqRel);
                Ok(recovered)
            }
            other => {
                slot.state = other;
                Err(ClusterError::ArrayNotDead { array })
            }
        }
    }

    fn degrade_slot(&self, array: usize, factor: u32) {
        let arrays = self.shared.arrays.read();
        if let Some(slot) = arrays.get(array) {
            if let ArrayState::Live(server) = &slot.state {
                for d in 0..server.fault_plane().devices() {
                    let _ = server.degrade_device(d, factor);
                }
            }
        }
    }

    fn heal_slot(&self, array: usize) {
        let arrays = self.shared.arrays.read();
        if let Some(slot) = arrays.get(array) {
            if let ArrayState::Live(server) = &slot.state {
                for d in 0..server.fault_plane().devices() {
                    let _ = server.restore_device(d);
                }
            }
        }
    }

    /// Emergency evacuation of a `Dead`-verdicted slot: tombstone it in
    /// the router (ring re-placement picks the survivors) and re-register
    /// each displaced tenant on its target from the policy directory.
    /// There is no source-side drain — the dead engine is gone and its
    /// stranded in-flight was charged to `evacuation_lost` when it halted.
    fn evacuate(&self, ctrl: &mut CtrlState, dead: usize, tick: u64) {
        let mut router = self.shared.router.lock();
        let displaced = router.tombstone_array(dead);
        let arrays = self.shared.arrays.read();
        let mut moved = Vec::new();
        let mut unplaced = Vec::new();
        for (tenant, target) in displaced {
            let placed = target.is_some_and(|to| {
                let policy = ctrl
                    .directory
                    .get(&tenant)
                    .copied()
                    .unwrap_or(OverloadPolicy::Delay);
                let weight = router.assignment(tenant).map_or(1, |a| a.weight);
                match &arrays[to].state {
                    ArrayState::Live(server) if !arrays[to].retired => {
                        server.register(tenant, weight, policy).is_ok()
                    }
                    _ => false,
                }
            });
            match (placed, target) {
                (true, Some(to)) => moved.push((tenant, to)),
                _ => {
                    router.release(tenant);
                    ctrl.directory.remove(&tenant);
                    unplaced.push(tenant);
                }
            }
        }
        drop(arrays);
        drop(router);
        self.shared
            .evacuated_tenants
            .fetch_add(moved.len() as u64, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        ctrl.evacuations.push(EvacuationEvent {
            tick,
            array: dead,
            moved,
            unplaced,
        });
    }

    /// One pass of the global control loop, intended to run once per
    /// window boundary. In order: apply scripted chaos events, heartbeat
    /// every slot (feeding the health plane), evacuate fresh `Dead`
    /// verdicts, then differentiate pressure and (maybe) migrate the
    /// hottest tenant off a saturated array.
    pub fn control_tick(&self) -> Option<RebalanceEvent> {
        let mut ctrl = self.shared.ctrl.lock();
        ctrl.tick += 1;
        let tick = ctrl.tick;

        // Scripted whole-array faults fire at the start of their tick.
        let due: Vec<ClusterFaultEvent> = self.cfg.chaos.at(tick).copied().collect();
        for e in due {
            match e.kind {
                ClusterFaultKind::Kill => {
                    let _ = self.kill_slot(e.array);
                }
                ClusterFaultKind::Restore => {
                    // A dead slot restarts; a live (degraded) one heals.
                    if self.restore_slot(&mut ctrl, e.array).is_err() {
                        self.heal_slot(e.array);
                    }
                }
                ClusterFaultKind::Slow(factor) => self.degrade_slot(e.array, factor),
            }
        }

        // Heartbeat probes → health verdicts, plus this tick's observation
        // set, all under one consistent read of the slot table.
        let arrays = self.shared.arrays.read();
        let mut verdicts = Vec::new();
        let mut liveness = self.shared.liveness.lock();
        for (i, slot) in arrays.iter().enumerate() {
            if slot.retired {
                continue;
            }
            let probe = match &slot.state {
                ArrayState::Live(s) => Probe {
                    alive: true,
                    slow: s.fault_plane().live_slow_mask() != 0,
                },
                _ => Probe {
                    alive: false,
                    slow: false,
                },
            };
            if liveness.observe(i, probe) == Some(ArrayHealth::Dead) {
                verdicts.push(i);
            }
        }
        let healths = liveness.states();
        drop(liveness);
        let snaps: Vec<Option<MetricsSnapshot>> = arrays
            .iter()
            .map(|s| match &s.state {
                ArrayState::Live(sv) => Some(sv.metrics()),
                _ => None,
            })
            .collect();
        let budgets: Vec<(f64, usize)> = arrays.iter().map(|s| s.budget).collect();
        let headrooms: Vec<usize> = arrays
            .iter()
            .map(|s| match &s.state {
                ArrayState::Live(sv) => sv.headroom(),
                _ => 0,
            })
            .collect();
        let retired: Vec<bool> = arrays.iter().map(|s| s.retired).collect();
        drop(arrays);

        // Emergency evacuation on each fresh Dead verdict.
        for dead in verdicts {
            self.evacuate(&mut ctrl, dead, tick);
        }

        let obs: Vec<ArrayObs> = snaps
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                Some(s) => ArrayObs {
                    rejected: s.rejected,
                    delayed: s.delayed,
                    overflow: s.overflow,
                },
                // A dead slot keeps its previous basis: a WAL-recovered
                // engine restores counters near it, so restoration does
                // not read as a pressure spike.
                None => ctrl.prev.get(i).copied().unwrap_or_default(),
            })
            .collect();
        let pressures: Vec<u64> = obs
            .iter()
            .enumerate()
            .map(|(i, &now)| {
                if snaps[i].is_none() || retired[i] {
                    return 0;
                }
                let prev = ctrl.prev.get(i).copied().unwrap_or_default();
                let delta = ArrayObs {
                    rejected: now.rejected.saturating_sub(prev.rejected),
                    delayed: now.delayed.saturating_sub(prev.delayed),
                    overflow: now.overflow.saturating_sub(prev.overflow),
                };
                pressure(delta, budgets[i].0, budgets[i].1)
            })
            .collect();

        let decision =
            self.pick_migration(&ctrl, &snaps, &pressures, &healths, &retired, &headrooms);

        // Re-baseline the differentiators before (maybe) migrating, so the
        // next tick measures the post-migration regime.
        ctrl.prev = obs;
        for (i, s) in snaps.iter().enumerate() {
            let Some(s) = s else { continue };
            for t in &s.tenants {
                if t.live {
                    ctrl.prev_tenants.insert(
                        (i, t.tenant),
                        TenantObs {
                            rejected: t.rejected,
                            delayed: t.delayed,
                            overflow: t.overflow,
                            admitted: t.admitted,
                        },
                    );
                } else {
                    // A departed record's counters are frozen; keeping its
                    // baseline would poison the delta if the tenant ever
                    // re-registers here with fresh (near-zero) counters.
                    ctrl.prev_tenants.remove(&(i, t.tenant));
                }
            }
        }

        let (tenant, from, to, demand) = decision?;
        let policy = ctrl
            .directory
            .get(&tenant)
            .copied()
            .unwrap_or(OverloadPolicy::Delay);
        // Commit under the router lock so no handle can observe a
        // half-moved placement. Router first — it is the only step that
        // can refuse for load — then target registration (rolled back on
        // refusal), then the source drain, which cannot fail.
        let mut router = self.shared.router.lock();
        let Some(old) = router.assignment(tenant) else {
            return None; // deregistered concurrently; nothing to move
        };
        if old.array != from {
            return None;
        }
        // Size the new reservation to observed demand, bounded by what the
        // calmest target can actually admit.
        let reserved = demand.max(old.weight).min(headrooms[to]);
        if reserved < old.weight || !router.reassign(tenant, to, reserved) {
            return None; // nowhere better than home
        }
        let arrays = self.shared.arrays.read();
        let target_ok = match &arrays[to].state {
            ArrayState::Live(target) => target.register(tenant, reserved, policy).is_ok(),
            _ => false,
        };
        if !target_ok {
            // Undo the routing; neither engine was touched yet (the
            // source always has room for the weight it just freed).
            router.reassign(tenant, from, old.weight);
            return None;
        }
        // Cooperative drain: the source frees the reservation now and
        // settles the tenant's in-flight admissions at its own seals.
        if let ArrayState::Live(source) = &arrays[from].state {
            source.deregister(tenant);
        }
        drop(arrays);
        drop(router);
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        self.shared.rebalances.fetch_add(1, Ordering::Relaxed);
        ctrl.last_rebalance = Some(tick);
        // One audit entry per (tenant, source): a tenant drained off the
        // same array twice must not double its departed-record residue in
        // `migrated_in_flight`.
        if !ctrl
            .drained
            .iter()
            .any(|d| d.tenant == tenant && d.from == from)
        {
            ctrl.drained.push(Drained { tenant, from });
        }
        let event = RebalanceEvent {
            tick,
            tenant,
            from,
            to,
            reserved,
        };
        ctrl.events.push(event.clone());
        Some(event)
    }

    /// Choose `(tenant, from, to, demand)` for this tick, or `None` when
    /// the fleet is calm, cooling down, or out of healthy headroom. Slow
    /// and dead slots are never targets; dead and retired slots are never
    /// sources.
    fn pick_migration(
        &self,
        ctrl: &CtrlState,
        snaps: &[Option<MetricsSnapshot>],
        pressures: &[u64],
        healths: &[ArrayHealth],
        retired: &[bool],
        headrooms: &[usize],
    ) -> Option<(u64, usize, usize, usize)> {
        if !self.cfg.rebalance {
            return None;
        }
        if let Some(last) = ctrl.last_rebalance {
            if ctrl.tick - last <= self.cfg.cooldown_ticks {
                return None;
            }
        }
        let (from, &hot) = pressures.iter().enumerate().max_by_key(|&(_, &p)| p)?;
        if hot < self.cfg.min_pressure {
            return None;
        }
        let snap = snaps[from].as_ref()?;
        // Hottest live tenant on the saturated array, by pressure delta.
        // Saturating: the baseline is pruned on departure, but a torn
        // snapshot could still read a counter below its basis.
        let tenant_delta = |t: &fqos_server::TenantSnapshot| {
            let prev = ctrl
                .prev_tenants
                .get(&(from, t.tenant))
                .copied()
                .unwrap_or_default();
            let rejected = t.rejected.saturating_sub(prev.rejected);
            let delayed = t.delayed.saturating_sub(prev.delayed);
            let overflow = t.overflow.saturating_sub(prev.overflow);
            let admitted = t.admitted.saturating_sub(prev.admitted);
            (
                rejected + delayed + overflow,
                admitted + rejected + overflow,
            )
        };
        let (candidate, tenant_pressure, demand) = snap
            .tenants
            .iter()
            .filter(|t| t.live)
            .map(|t| {
                let (p, d) = tenant_delta(t);
                (t, p, d)
            })
            .max_by_key(|&(t, p, _)| (p, t.tenant))?;
        if tenant_pressure == 0 {
            return None;
        }
        let (to, _) = (0..snaps.len())
            .filter(|&i| {
                i != from
                    && !retired[i]
                    && snaps[i].is_some()
                    && pressures[i] < self.cfg.min_pressure
                    && matches!(healths[i], ArrayHealth::Healthy | ArrayHealth::Suspect)
            })
            .map(|i| (i, headrooms[i]))
            .max_by_key(|&(i, h)| (h, usize::MAX - i))?;
        Some((candidate.tenant, from, to, demand as usize))
    }

    /// Live fleet snapshot (mid-run the law holds up to in-flight work;
    /// see [`ClusterMetrics::in_flight_total`]).
    pub fn metrics(&self) -> ClusterMetrics {
        let ctrl = self.shared.ctrl.lock();
        let arrays = self.shared.arrays.read();
        let mut snaps = Vec::with_capacity(arrays.len());
        let mut frozen = Vec::with_capacity(arrays.len());
        let mut retired = Vec::with_capacity(arrays.len());
        let mut routed = Vec::with_capacity(arrays.len());
        let mut past = Vec::new();
        for slot in arrays.iter() {
            past.extend(slot.past.iter().cloned());
            retired.push(slot.retired);
            routed.push(slot.routed.load(Ordering::Relaxed));
            match &slot.state {
                ArrayState::Live(server) => {
                    frozen.push(false);
                    snaps.push(server.metrics());
                }
                ArrayState::Dead { frozen: f, .. } => {
                    frozen.push(true);
                    snaps.push(f.as_ref().clone());
                }
                ArrayState::Vacant => unreachable!("vacant slot outside a held write lock"),
            }
        }
        drop(arrays);
        let liveness = self.shared.liveness.lock();
        fleet_metrics(
            &self.shared,
            &ctrl,
            &liveness,
            snaps,
            frozen,
            retired,
            past,
            routed,
        )
    }

    /// Seal and drain every live array (dead slots contribute their frozen
    /// snapshots), then return the final fleet metrics. The cluster
    /// conservation audit is printed; callers should also assert
    /// [`ClusterMetrics::conserved`].
    pub fn finish(self) -> ClusterMetrics {
        let QosCluster { shared, .. } = self;
        let mut arrays = shared.arrays.write();
        let mut finals = Vec::with_capacity(arrays.len());
        let mut frozen = Vec::with_capacity(arrays.len());
        let mut retired = Vec::with_capacity(arrays.len());
        let mut routed = Vec::with_capacity(arrays.len());
        let mut past = Vec::new();
        for slot in arrays.iter_mut() {
            past.append(&mut slot.past);
            retired.push(slot.retired);
            routed.push(slot.routed.load(Ordering::Relaxed));
            match std::mem::replace(&mut slot.state, ArrayState::Vacant) {
                ArrayState::Live(server) => {
                    frozen.push(false);
                    finals.push(server.finish());
                }
                ArrayState::Dead { frozen: f, .. } => {
                    frozen.push(true);
                    finals.push(*f);
                }
                ArrayState::Vacant => unreachable!("vacant slot outside a held write lock"),
            }
        }
        drop(arrays);
        let ctrl = shared.ctrl.lock();
        let liveness = shared.liveness.lock();
        let metrics = fleet_metrics(
            &shared, &ctrl, &liveness, finals, frozen, retired, past, routed,
        );
        println!("{}", metrics.render_audit());
        metrics
    }
}

/// One array's view inside a [`ClusterHandle`]: the submitter handle (if
/// the slot is alive), the engine incarnation it was built against, and
/// the slot's routed counter.
struct HandleSlot {
    handle: Option<SubmitterHandle>,
    incarnation: u64,
    routed: Arc<AtomicU64>,
}

/// A per-thread submission endpoint spanning the fleet. Routes each
/// submission to its tenant's array and keeps time moving on the others
/// (watermark advance), so every array's windows seal at trace cadence.
///
/// Routing reads a per-handle cache validated against the cluster epoch;
/// the router lock is only taken on a miss. The engine views refresh the
/// same way, so a fail-stopped or restored array is picked up without any
/// locking on the steady-state path. A submission routed to a
/// fail-stopped slot is retried (bounded) against fresh routes — an
/// evacuation racing the submit wins — and otherwise refused as
/// [`RejectReason::ArrayUnavailable`], never a hang or a spurious
/// `UnknownTenant`.
pub struct ClusterHandle {
    slots: Vec<HandleSlot>,
    epoch: u64,
    shared: Arc<Shared>,
    cache: HashMap<u64, (u64, usize)>,
}

impl ClusterHandle {
    /// Bounded retries against refreshed routes before a submission is
    /// refused as `ArrayUnavailable` (one verdict-racing evacuation plus
    /// slack).
    const SUBMIT_RETRIES: usize = 3;

    /// Re-sync the engine views with the slot table when the cluster
    /// epoch moved (membership change, migration, kill or restore).
    fn refresh(&mut self) {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        if epoch == self.epoch {
            return;
        }
        let arrays = self.shared.arrays.read();
        for (i, slot) in arrays.iter().enumerate() {
            if i == self.slots.len() {
                self.slots.push(HandleSlot {
                    handle: None,
                    incarnation: u64::MAX,
                    routed: Arc::clone(&slot.routed),
                });
            }
            let hs = &mut self.slots[i];
            match &slot.state {
                ArrayState::Live(server) => {
                    if hs.incarnation != slot.incarnation || hs.handle.is_none() {
                        hs.handle = Some(server.handle());
                        hs.incarnation = slot.incarnation;
                    }
                }
                _ => {
                    hs.handle = None;
                    hs.incarnation = slot.incarnation;
                }
            }
        }
        drop(arrays);
        self.epoch = epoch;
    }

    fn force_refresh(&mut self) {
        self.epoch = u64::MAX;
        self.refresh();
    }

    /// Submit one block read for `tenant` at `arrival_ns`; per-handle
    /// arrival times must be non-decreasing, as with
    /// [`SubmitterHandle::submit`].
    pub fn submit(&mut self, tenant: u64, lbn: u64, arrival_ns: u64) -> SubmitOutcome {
        self.refresh();
        let mut saw_dead = false;
        for attempt in 1..=Self::SUBMIT_RETRIES {
            let Some(array) = self.routed_array(tenant) else {
                self.shared.unrouted.fetch_add(1, Ordering::Relaxed);
                // An evacuation that found no survivor releases the
                // tenant; report the outage, not an unknown tenant.
                return SubmitOutcome::Rejected(if saw_dead {
                    RejectReason::ArrayUnavailable
                } else {
                    RejectReason::UnknownTenant
                });
            };
            if array >= self.slots.len() {
                // The route is from a newer topology than our slot view.
                self.force_refresh();
                if array >= self.slots.len() {
                    return SubmitOutcome::Rejected(RejectReason::UnknownTenant);
                }
            }
            // Idle arrays still see time pass: an open handle that never
            // advances its watermark would pin their windows open forever.
            for (i, hs) in self.slots.iter_mut().enumerate() {
                if i != array {
                    if let Some(h) = hs.handle.as_mut() {
                        h.advance_to(arrival_ns);
                    }
                }
            }
            let Some(h) = self.slots[array].handle.as_mut() else {
                // Routed to a fail-stopped slot: a transport-level refusal.
                // Feed the health plane (refusals count as failed
                // heartbeats) and retry — a concurrent control tick may
                // already have evacuated the tenant to a survivor.
                saw_dead = true;
                self.shared
                    .refused_unavailable
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.liveness.lock().note_refusal(array);
                self.cache.remove(&tenant);
                if attempt == Self::SUBMIT_RETRIES {
                    break;
                }
                std::thread::yield_now();
                self.force_refresh();
                continue;
            };
            let out = h.submit(tenant, lbn, arrival_ns);
            self.slots[array].routed.fetch_add(1, Ordering::Relaxed);
            match out {
                SubmitOutcome::Rejected(RejectReason::UnknownTenant) => {
                    // A migration between the route read and the submit
                    // lands the request on the drained source. Re-route
                    // and retry, so a rebalance never surfaces as a
                    // spurious rejection.
                    self.cache.remove(&tenant);
                    if self.routed_array(tenant) == Some(array) {
                        return out; // genuinely unknown on its own array
                    }
                }
                SubmitOutcome::Rejected(RejectReason::ServerStopping) => {
                    // The engine halted between our refresh and the
                    // submit; same treatment as a missing handle.
                    saw_dead = true;
                    self.shared.liveness.lock().note_refusal(array);
                    self.cache.remove(&tenant);
                    if attempt == Self::SUBMIT_RETRIES {
                        break;
                    }
                    std::thread::yield_now();
                    self.force_refresh();
                }
                _ => return out,
            }
        }
        SubmitOutcome::Rejected(if saw_dead {
            RejectReason::ArrayUnavailable
        } else {
            RejectReason::UnknownTenant
        })
    }

    /// Resolve `tenant`'s array through the per-handle cache, falling back
    /// to the router (and refreshing the cache) on a miss or stale epoch.
    fn routed_array(&mut self, tenant: u64) -> Option<usize> {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        if let Some(&(e, a)) = self.cache.get(&tenant) {
            if e == epoch {
                return Some(a);
            }
        }
        let routed = self.shared.router.lock().route(tenant);
        match routed {
            Some(a) => {
                self.cache.insert(tenant, (epoch, a));
            }
            None => {
                self.cache.remove(&tenant);
            }
        }
        routed
    }

    /// Advance every live array's watermark without submitting
    /// (end-of-phase drain in paced drivers).
    pub fn advance_all(&mut self, arrival_ns: u64) {
        self.refresh();
        for hs in &mut self.slots {
            if let Some(h) = hs.handle.as_mut() {
                h.advance_to(arrival_ns);
            }
        }
    }

    /// Close all per-array handles. Dropping does the same.
    pub fn close(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_core::QosConfig;
    use fqos_server::ServerConfig;

    const BASE_T: u64 = 133_000;

    fn two_arrays() -> QosCluster {
        let array = ServerConfig::new(QosConfig::paper_9_3_1());
        QosCluster::new(ClusterConfig::uniform(2, &array)).unwrap()
    }

    #[test]
    fn routed_submissions_land_on_the_assigned_array() {
        let c = two_arrays();
        let a = c.register_tenant(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = c.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        assert!(h.submit(1, 1, BASE_T).is_admitted());
        let m = c.finish();
        assert!(m.conserved(), "{}", m.render_audit());
        assert_eq!(m.arrays[a].admitted, 2);
        assert_eq!(m.arrays[1 - a].admitted, 0);
        assert_eq!(m.routed[a], 2);
    }

    #[test]
    fn unknown_tenants_are_refused_at_the_router() {
        let c = two_arrays();
        let mut h = c.handle();
        assert_eq!(
            h.submit(42, 0, 0),
            SubmitOutcome::Rejected(RejectReason::UnknownTenant)
        );
        let m = c.finish();
        assert_eq!(m.unrouted, 1);
        assert_eq!(m.admitted_total(), 0);
    }

    #[test]
    fn registration_spreads_within_bounds() {
        let c = two_arrays(); // S(1) = 5 per array
        for t in 0..10u64 {
            c.register_tenant(t, 1, OverloadPolicy::Delay).unwrap();
        }
        assert!(matches!(
            c.register_tenant(10, 1, OverloadPolicy::Delay),
            Err(ClusterError::NoHeadroom {
                tenant: 10,
                reserved: 1
            })
        ));
        let m = c.finish();
        assert_eq!(m.arrays.len(), 2);
    }

    #[test]
    fn deregistration_bumps_the_epoch_and_unroutes() {
        let c = two_arrays();
        c.register_tenant(1, 1, OverloadPolicy::Delay).unwrap();
        let mut h = c.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        let before = c.epoch();
        assert!(c.deregister_tenant(1));
        assert!(c.epoch() > before);
        assert_eq!(
            h.submit(1, 1, BASE_T),
            SubmitOutcome::Rejected(RejectReason::UnknownTenant)
        );
        let m = c.finish();
        assert!(m.conserved(), "{}", m.render_audit());
        assert_eq!(m.admitted_total(), 1);
        assert_eq!(m.completed(), 1, "drained admission still settles");
    }

    #[test]
    fn killing_an_array_charges_the_ledger_and_refuses_typed() {
        let c = two_arrays();
        let a = c.register_tenant(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = c.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        let stranded = c.kill_array(a).unwrap();
        assert_eq!(stranded, 1, "the admission never settled");
        assert_eq!(c.evacuation_lost(), 1);
        // No control tick has run: the tenant still routes to the corpse
        // and the refusal is transport-typed, not UnknownTenant.
        assert_eq!(
            h.submit(1, 1, BASE_T),
            SubmitOutcome::Rejected(RejectReason::ArrayUnavailable)
        );
        assert!(matches!(
            c.kill_array(a),
            Err(ClusterError::ArrayNotLive { .. })
        ));
        drop(h);
        let m = c.finish();
        assert!(m.conserved(), "{}", m.render_audit());
        assert_eq!(m.evacuation_lost, 1);
        assert!(m.refused_unavailable >= 1);
    }

    #[test]
    fn dead_verdict_evacuates_to_the_survivor() {
        let array = ServerConfig::new(QosConfig::paper_9_3_1());
        let c = QosCluster::new(ClusterConfig::uniform(2, &array).with_rebalance(false)).unwrap();
        let a = c.register_tenant(1, 1, OverloadPolicy::Delay).unwrap();
        c.kill_array(a).unwrap();
        // dead_after = 2 consecutive bad heartbeats.
        assert!(c.control_tick().is_none());
        assert!(c.control_tick().is_none());
        assert_eq!(c.health()[a], ArrayHealth::Dead);
        assert_eq!(c.route_of(1), Some(1 - a), "tenant lives on the survivor");
        let mut h = c.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        drop(h);
        let m = c.finish();
        assert!(m.conserved(), "{}", m.render_audit());
        assert_eq!(m.evacuations.len(), 1);
        assert_eq!(m.evacuations[0].moved, vec![(1, 1 - a)]);
        assert_eq!(m.evacuated_tenants, 1);
    }
}
