//! The cluster engine: N arrays behind one router and one control loop.
//!
//! # Lock order
//!
//! `cluster.ctrl` → `cluster.router` → (engine classes). The control loop
//! holds `ctrl` across a whole tick and may acquire the router and any
//! array's registration path beneath it; submission handles take the
//! router lock alone (and only on a route-cache miss), never while inside
//! an array.

use crate::config::ClusterConfig;
use crate::ctrl::{pressure, ArrayObs, CtrlState, Drained, RebalanceEvent, TenantObs};
use crate::metrics::ClusterMetrics;
use crate::router::Router;
use fqos_server::{
    MetricsSnapshot, OverloadPolicy, QosServer, RejectReason, SubmitOutcome, SubmitterHandle,
    TenantSnapshot,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// State shared between the cluster, its controller and every handle.
struct Shared {
    /// Tenant placement (lock class `cluster.router`).
    router: Mutex<Router>,
    /// Controller state (lock class `cluster.ctrl`).
    ctrl: Mutex<CtrlState>,
    /// Bumped on every placement change; handles compare-and-refresh
    /// their route caches against it without touching the router lock.
    epoch: AtomicU64,
    /// Submissions routed per array.
    routed: Vec<AtomicU64>,
    /// Submissions refused at the router (no assignment).
    unrouted: AtomicU64,
    /// Migrations executed.
    rebalances: AtomicU64,
}

/// N independent [`QosServer`] arrays behind a consistent-hash routing
/// tier with an ε-budget rebalancing control loop.
///
/// Each array runs the paper's §III-A admission controller unchanged; the
/// cluster only decides *which* array a tenant lives on, watches per-array
/// pressure, and migrates tenants from saturated arrays to fleet headroom.
pub struct QosCluster {
    arrays: Vec<QosServer>,
    shared: Arc<Shared>,
    cfg: ClusterConfig,
    /// Per-array `(ε, S(M))` for the controller's budget algebra.
    budgets: Vec<(f64, usize)>,
}

impl QosCluster {
    /// Build every array and the routing tier.
    pub fn new(cfg: ClusterConfig) -> Result<Self, String> {
        cfg.validate()?;
        let arrays: Vec<QosServer> = cfg
            .arrays
            .iter()
            .map(|a| QosServer::new(a.clone()))
            .collect::<Result<_, _>>()?;
        let capacities: Vec<usize> = arrays
            .iter()
            .map(|a| a.config().qos.request_limit())
            .collect();
        let budgets: Vec<(f64, usize)> = arrays
            .iter()
            .zip(&capacities)
            .map(|(a, &limit)| (a.config().qos.epsilon, limit))
            .collect();
        let shared = Arc::new(Shared {
            router: Mutex::new(Router::new(&capacities, cfg.vnodes_per_array)),
            ctrl: Mutex::new(CtrlState::default()),
            epoch: AtomicU64::new(0),
            routed: capacities.iter().map(|_| AtomicU64::new(0)).collect(),
            unrouted: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
        });
        Ok(QosCluster {
            arrays,
            shared,
            cfg,
            budgets,
        })
    }

    /// Number of arrays in the fleet.
    pub fn arrays(&self) -> usize {
        self.arrays.len()
    }

    /// The array a tenant currently routes to.
    pub fn route_of(&self, tenant: u64) -> Option<usize> {
        self.shared.router.lock().route(tenant)
    }

    /// Current router epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Register a tenant: the router places it (consistent hashing with
    /// bounded loads), the chosen array admits the reservation against its
    /// own `S(M)`. Returns the array index.
    pub fn register_tenant(
        &self,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
    ) -> Result<usize, String> {
        let mut router = self.shared.router.lock();
        let Some(array) = router.assign(tenant, reserved) else {
            return Err(format!(
                "no array has headroom for tenant {tenant} (reservation {reserved})"
            ));
        };
        match self.arrays[array].register(tenant, reserved, policy) {
            Ok(_) => Ok(array),
            Err(e) => {
                router.release(tenant);
                Err(format!("array {array} refused tenant {tenant}: {e}"))
            }
        }
    }

    /// Register a tenant on a specific array, bypassing the ring (skew
    /// scenarios, `--pin`). Still bounded by the array's load bound.
    pub fn register_pinned(
        &self,
        array: usize,
        tenant: u64,
        reserved: usize,
        policy: OverloadPolicy,
    ) -> Result<(), String> {
        let mut router = self.shared.router.lock();
        if !router.assign_pinned(tenant, array, reserved) {
            return Err(format!(
                "array {array} cannot take tenant {tenant} (reservation {reserved})"
            ));
        }
        match self.arrays[array].register(tenant, reserved, policy) {
            Ok(_) => Ok(()),
            Err(e) => {
                router.release(tenant);
                Err(format!("array {array} refused tenant {tenant}: {e}"))
            }
        }
    }

    /// Deregister a tenant fleet-wide. Its reservation frees immediately;
    /// in-flight admissions still settle on its array (departed records
    /// stay resolvable at seal).
    pub fn deregister_tenant(&self, tenant: u64) -> bool {
        let mut router = self.shared.router.lock();
        let Some(array) = router.route(tenant) else {
            return false;
        };
        router.release(tenant);
        drop(router);
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        self.arrays[array].deregister(tenant).is_some()
    }

    /// A submission endpoint spanning every array (one per submitter
    /// thread, same discipline as [`QosServer::handle`]).
    pub fn handle(&self) -> ClusterHandle {
        ClusterHandle {
            handles: self.arrays.iter().map(QosServer::handle).collect(),
            shared: Arc::clone(&self.shared),
            cache: HashMap::new(),
        }
    }

    /// One pass of the global control loop, intended to run once per
    /// window boundary. Differentiates each array's pressure counters
    /// against its ε-budget and, when one array saturates while another
    /// has headroom, migrates the hottest tenant: register on the target,
    /// cooperative drain on the source (deregister; in-flight admissions
    /// keep settling there), router epoch bump.
    pub fn control_tick(&self) -> Option<RebalanceEvent> {
        let snaps: Vec<MetricsSnapshot> = self.arrays.iter().map(QosServer::metrics).collect();
        let mut ctrl = self.shared.ctrl.lock();
        ctrl.tick += 1;
        let tick = ctrl.tick;

        let obs: Vec<ArrayObs> = snaps
            .iter()
            .map(|s| ArrayObs {
                rejected: s.rejected,
                delayed: s.delayed,
                overflow: s.overflow,
            })
            .collect();
        let pressures: Vec<u64> = obs
            .iter()
            .enumerate()
            .map(|(i, &now)| {
                let prev = ctrl.prev.get(i).copied().unwrap_or_default();
                let delta = ArrayObs {
                    rejected: now.rejected.saturating_sub(prev.rejected),
                    delayed: now.delayed.saturating_sub(prev.delayed),
                    overflow: now.overflow.saturating_sub(prev.overflow),
                };
                pressure(delta, self.budgets[i].0, self.budgets[i].1)
            })
            .collect();

        let decision = self.pick_migration(&ctrl, &snaps, &pressures);

        // Re-baseline the differentiators before (maybe) migrating, so the
        // next tick measures the post-migration regime.
        ctrl.prev = obs;
        for (i, s) in snaps.iter().enumerate() {
            for t in &s.tenants {
                if t.live {
                    ctrl.prev_tenants.insert(
                        (i, t.tenant),
                        TenantObs {
                            rejected: t.rejected,
                            delayed: t.delayed,
                            overflow: t.overflow,
                            admitted: t.admitted,
                        },
                    );
                } else {
                    // A departed record's counters are frozen; keeping its
                    // baseline would poison the delta if the tenant ever
                    // re-registers here with fresh (near-zero) counters.
                    ctrl.prev_tenants.remove(&(i, t.tenant));
                }
            }
        }

        let (tenant, from, to, reserved, policy) = decision?;
        // Commit under the router lock so no handle can observe a
        // half-moved placement. Router first — it is the only step that
        // can refuse for load — then target registration (rolled back on
        // refusal), then the source drain, which cannot fail.
        let mut router = self.shared.router.lock();
        let Some(old) = router.assignment(tenant) else {
            return None; // deregistered concurrently; nothing to move
        };
        if old.array != from || !router.reassign(tenant, to, reserved) {
            return None;
        }
        if self.arrays[to].register(tenant, reserved, policy).is_err() {
            // Undo the routing; neither engine was touched yet (the
            // source always has room for the weight it just freed).
            router.reassign(tenant, from, old.weight);
            return None;
        }
        // Cooperative drain: the source frees the reservation now and
        // settles the tenant's in-flight admissions at its own seals.
        self.arrays[from].deregister(tenant);
        drop(router);
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        self.shared.rebalances.fetch_add(1, Ordering::Relaxed);
        ctrl.last_rebalance = Some(tick);
        // One audit entry per (tenant, source): a tenant drained off the
        // same array twice must not double its departed-record residue in
        // `migrated_in_flight`.
        if !ctrl
            .drained
            .iter()
            .any(|d| d.tenant == tenant && d.from == from)
        {
            ctrl.drained.push(Drained { tenant, from });
        }
        let event = RebalanceEvent {
            tick,
            tenant,
            from,
            to,
            reserved,
        };
        ctrl.events.push(event.clone());
        Some(event)
    }

    /// Choose `(tenant, from, to, reserved, policy)` for this tick, or
    /// `None` when the fleet is calm, cooling down, or out of headroom.
    #[allow(clippy::type_complexity)]
    fn pick_migration(
        &self,
        ctrl: &CtrlState,
        snaps: &[MetricsSnapshot],
        pressures: &[u64],
    ) -> Option<(u64, usize, usize, usize, OverloadPolicy)> {
        if !self.cfg.rebalance {
            return None;
        }
        if let Some(last) = ctrl.last_rebalance {
            if ctrl.tick - last <= self.cfg.cooldown_ticks {
                return None;
            }
        }
        let (from, &hot) = pressures.iter().enumerate().max_by_key(|&(_, &p)| p)?;
        if hot < self.cfg.min_pressure {
            return None;
        }
        // Hottest live tenant on the saturated array, by pressure delta.
        // Saturating: the baseline is pruned on departure, but a torn
        // snapshot could still read a counter below its basis.
        let tenant_delta = |t: &TenantSnapshot| {
            let prev = ctrl
                .prev_tenants
                .get(&(from, t.tenant))
                .copied()
                .unwrap_or_default();
            let rejected = t.rejected.saturating_sub(prev.rejected);
            let delayed = t.delayed.saturating_sub(prev.delayed);
            let overflow = t.overflow.saturating_sub(prev.overflow);
            let admitted = t.admitted.saturating_sub(prev.admitted);
            (
                rejected + delayed + overflow,
                admitted + rejected + overflow,
            )
        };
        let (candidate, tenant_pressure, demand) = snaps[from]
            .tenants
            .iter()
            .filter(|t| t.live)
            .map(|t| {
                let (p, d) = tenant_delta(t);
                (t, p, d)
            })
            .max_by_key(|&(t, p, _)| (p, t.tenant))?;
        if tenant_pressure == 0 {
            return None;
        }
        let record = self.arrays[from].tenant(candidate.tenant)?;
        // Size the new reservation to observed demand, bounded by what the
        // calmest target can actually admit.
        let want = (demand as usize).max(record.reserved);
        let (to, headroom) = (0..self.arrays.len())
            .filter(|&i| i != from && pressures[i] < self.cfg.min_pressure)
            .map(|i| (i, self.arrays[i].headroom()))
            .max_by_key(|&(i, h)| (h, usize::MAX - i))?;
        let reserved = want.min(headroom);
        if reserved < record.reserved {
            return None; // nowhere better than home
        }
        Some((candidate.tenant, from, to, reserved, record.policy))
    }

    /// Live fleet snapshot (mid-run the law holds up to in-flight work;
    /// see [`ClusterMetrics::in_flight_total`]).
    pub fn metrics(&self) -> ClusterMetrics {
        let snaps: Vec<MetricsSnapshot> = self.arrays.iter().map(QosServer::metrics).collect();
        self.assemble(snaps)
    }

    /// Seal and drain every array, then return the final fleet metrics.
    /// The cluster conservation audit is printed; callers should also
    /// assert [`ClusterMetrics::conserved`].
    pub fn finish(self) -> ClusterMetrics {
        let QosCluster { arrays, shared, .. } = self;
        let finals: Vec<MetricsSnapshot> = arrays.into_iter().map(QosServer::finish).collect();
        let ctrl = shared.ctrl.lock();
        let metrics = ClusterMetrics {
            migrated_in_flight: migrated_in_flight(&ctrl.drained, &finals),
            routed: shared
                .routed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            unrouted: shared.unrouted.load(Ordering::Relaxed),
            rebalances: shared.rebalances.load(Ordering::Relaxed),
            router_epoch: shared.epoch.load(Ordering::Acquire),
            events: ctrl.events.clone(),
            arrays: finals,
        };
        println!("{}", metrics.render_audit());
        metrics
    }

    fn assemble(&self, snaps: Vec<MetricsSnapshot>) -> ClusterMetrics {
        let ctrl = self.shared.ctrl.lock();
        ClusterMetrics {
            migrated_in_flight: migrated_in_flight(&ctrl.drained, &snaps),
            routed: self
                .shared
                .routed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            unrouted: self.shared.unrouted.load(Ordering::Relaxed),
            rebalances: self.shared.rebalances.load(Ordering::Relaxed),
            router_epoch: self.shared.epoch.load(Ordering::Acquire),
            events: ctrl.events.clone(),
            arrays: snaps,
        }
    }
}

/// Unsettled admissions of drained tenants on their source arrays: the
/// `migrated_in_flight` term of the cluster law. Counts only departed
/// records — a tenant that later returned to `from` is live there again
/// and accounted normally.
fn migrated_in_flight(drained: &[Drained], snaps: &[MetricsSnapshot]) -> u64 {
    drained
        .iter()
        .map(|d| {
            snaps[d.from]
                .tenants
                .iter()
                .find(|t| t.tenant == d.tenant && !t.live)
                .map_or(0, TenantSnapshot::in_flight)
        })
        .sum()
}

/// A per-thread submission endpoint spanning the fleet. Routes each
/// submission to its tenant's array and keeps time moving on the others
/// (watermark advance), so every array's windows seal at trace cadence.
///
/// Routing reads a per-handle cache validated against the router epoch:
/// the router lock is only taken on a miss or after a migration.
pub struct ClusterHandle {
    handles: Vec<SubmitterHandle>,
    shared: Arc<Shared>,
    cache: HashMap<u64, (u64, usize)>,
}

impl ClusterHandle {
    /// Submit one block read for `tenant` at `arrival_ns`; per-handle
    /// arrival times must be non-decreasing, as with
    /// [`SubmitterHandle::submit`].
    pub fn submit(&mut self, tenant: u64, lbn: u64, arrival_ns: u64) -> SubmitOutcome {
        let Some(array) = self.routed_array(tenant) else {
            self.shared.unrouted.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Rejected(RejectReason::UnknownTenant);
        };
        // Idle arrays still see time pass: an open handle that never
        // advances its watermark would pin their windows open forever.
        for (i, h) in self.handles.iter_mut().enumerate() {
            if i != array {
                h.advance_to(arrival_ns);
            }
        }
        self.shared.routed[array].fetch_add(1, Ordering::Relaxed);
        let out = self.handles[array].submit(tenant, lbn, arrival_ns);
        if out != SubmitOutcome::Rejected(RejectReason::UnknownTenant) {
            return out;
        }
        // A migration between the route read and the submit lands the
        // request on the drained source, which no longer knows the tenant.
        // Re-route once — the tenant is live on its new array — so a
        // rebalance never surfaces as a spurious rejection.
        self.cache.remove(&tenant);
        match self.routed_array(tenant) {
            Some(rerouted) if rerouted != array => {
                self.shared.routed[rerouted].fetch_add(1, Ordering::Relaxed);
                self.handles[rerouted].submit(tenant, lbn, arrival_ns)
            }
            _ => out, // genuinely unknown (or deregistered for real)
        }
    }

    /// Resolve `tenant`'s array through the per-handle cache, falling back
    /// to the router (and refreshing the cache) on a miss or stale epoch.
    fn routed_array(&mut self, tenant: u64) -> Option<usize> {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        if let Some(&(e, a)) = self.cache.get(&tenant) {
            if e == epoch {
                return Some(a);
            }
        }
        let routed = self.shared.router.lock().route(tenant);
        match routed {
            Some(a) => {
                self.cache.insert(tenant, (epoch, a));
            }
            None => {
                self.cache.remove(&tenant);
            }
        }
        routed
    }

    /// Advance every array's watermark without submitting (end-of-phase
    /// drain in paced drivers).
    pub fn advance_all(&mut self, arrival_ns: u64) {
        for h in &mut self.handles {
            h.advance_to(arrival_ns);
        }
    }

    /// Close all per-array handles. Dropping does the same.
    pub fn close(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqos_core::QosConfig;
    use fqos_server::ServerConfig;

    const BASE_T: u64 = 133_000;

    fn two_arrays() -> QosCluster {
        let array = ServerConfig::new(QosConfig::paper_9_3_1());
        QosCluster::new(ClusterConfig::uniform(2, &array)).unwrap()
    }

    #[test]
    fn routed_submissions_land_on_the_assigned_array() {
        let c = two_arrays();
        let a = c.register_tenant(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = c.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        assert!(h.submit(1, 1, BASE_T).is_admitted());
        let m = c.finish();
        assert!(m.conserved(), "{}", m.render_audit());
        assert_eq!(m.arrays[a].admitted, 2);
        assert_eq!(m.arrays[1 - a].admitted, 0);
        assert_eq!(m.routed[a], 2);
    }

    #[test]
    fn unknown_tenants_are_refused_at_the_router() {
        let c = two_arrays();
        let mut h = c.handle();
        assert_eq!(
            h.submit(42, 0, 0),
            SubmitOutcome::Rejected(RejectReason::UnknownTenant)
        );
        let m = c.finish();
        assert_eq!(m.unrouted, 1);
        assert_eq!(m.admitted_total(), 0);
    }

    #[test]
    fn registration_spreads_within_bounds() {
        let c = two_arrays(); // S(1) = 5 per array
        for t in 0..10u64 {
            c.register_tenant(t, 1, OverloadPolicy::Delay).unwrap();
        }
        assert!(c.register_tenant(10, 1, OverloadPolicy::Delay).is_err());
        let m = c.finish();
        assert_eq!(m.arrays.len(), 2);
    }

    #[test]
    fn deregistration_bumps_the_epoch_and_unroutes() {
        let c = two_arrays();
        c.register_tenant(1, 1, OverloadPolicy::Delay).unwrap();
        let mut h = c.handle();
        assert!(h.submit(1, 0, 0).is_admitted());
        let before = c.epoch();
        assert!(c.deregister_tenant(1));
        assert!(c.epoch() > before);
        assert_eq!(
            h.submit(1, 1, BASE_T),
            SubmitOutcome::Rejected(RejectReason::UnknownTenant)
        );
        let m = c.finish();
        assert!(m.conserved(), "{}", m.render_audit());
        assert_eq!(m.admitted_total(), 1);
        assert_eq!(m.completed(), 1, "drained admission still settles");
    }
}
