//! Prometheus text-format metrics endpoint.
//!
//! A background thread serves the latest rendered exposition page over
//! plain HTTP/1.1 (no HTTP dependency — the protocol subset a scraper
//! needs is a request head to discard and a `Content-Length` response).
//! The page lives behind a shared cell the driver refreshes at window
//! cadence via [`render`], so scrapes see live per-window gauges without
//! the exporter ever touching engine locks.

use crate::health::ArrayHealth;
use crate::metrics::ClusterMetrics;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The shared exposition page: the driver writes, the exporter serves.
pub type MetricsPage = Arc<Mutex<String>>;

/// A per-array counter read out of one array's metrics snapshot.
type SnapshotRead = fn(&fqos_server::MetricsSnapshot) -> u64;

/// A fresh, empty [`MetricsPage`].
pub fn new_page() -> MetricsPage {
    Arc::new(Mutex::new(String::new()))
}

/// A bound, serving metrics endpoint. Dropping it stops the thread.
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
    /// serve `page` to every connection from a background thread.
    pub fn bind(addr: &str, page: MetricsPage) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("metrics bind {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("metrics listener: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("metrics listener: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let worker = std::thread::Builder::new()
            .name("fqos-metrics".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut conn, _)) => {
                            let _ = conn.set_nonblocking(false);
                            // A stalled or malicious client must not wedge
                            // the accept loop: bound both directions and
                            // cap how much request head we will consume.
                            let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
                            let _ = conn.set_write_timeout(Some(Duration::from_millis(200)));
                            drain_head(&mut conn);
                            let body = page.lock().clone();
                            let response = format!(
                                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; \
                                 version=0.0.4; charset=utf-8\r\nContent-Length: \
                                 {}\r\nConnection: close\r\n\r\n{}",
                                body.len(),
                                body
                            );
                            let _ = conn.write_all(response.as_bytes());
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| format!("metrics thread: {e}"))?;
        Ok(MetricsExporter {
            addr: local,
            stop,
            worker: Some(worker),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Hard cap on how much request head one connection may send before
/// the exporter gives up on finding the terminator and responds anyway.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Read and discard the request head: stops at `\r\n\r\n`, EOF, the
/// per-connection read timeout, or [`MAX_HEAD_BYTES`] — whichever
/// comes first. Every path serves the same page, like most
/// single-purpose exporters, so only the head's end matters, and the
/// exporter never buffers a client-controlled amount of data.
fn drain_head(conn: &mut TcpStream) {
    let mut chunk = [0u8; 1024];
    // Carry the last 3 bytes across chunk boundaries so a terminator
    // split between reads is still seen.
    let mut window = [0u8; 3 + 1024];
    let mut total = 0usize;
    loop {
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                window[3..3 + n].copy_from_slice(&chunk[..n]);
                if window[..3 + n].windows(4).any(|w| w == b"\r\n\r\n") {
                    return;
                }
                total += n;
                if total >= MAX_HEAD_BYTES {
                    return;
                }
                window.copy_within(n..n + 3, 0);
            }
        }
    }
}

fn counter(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
}

fn gauge(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
}

/// Render a [`ClusterMetrics`] snapshot as a Prometheus text-format
/// exposition page, one label set per array plus cluster-level series.
pub fn render(m: &ClusterMetrics) -> String {
    let mut out = String::with_capacity(4096);
    let per_array: &[(&str, &str, SnapshotRead)] = &[
        (
            "fqos_admitted_total",
            "Requests admitted (guaranteed + overflow)",
            |s| s.admitted_total(),
        ),
        (
            "fqos_served_total",
            "Requests served by their primary dispatch",
            |s| s.served,
        ),
        (
            "fqos_hedge_wins_total",
            "Requests completed by a winning hedge",
            |s| s.hedges_won,
        ),
        (
            "fqos_rejected_total",
            "Requests refused at admission",
            |s| s.rejected,
        ),
        (
            "fqos_delayed_total",
            "Requests pushed past their arrival window",
            |s| s.delayed,
        ),
        (
            "fqos_overflow_total",
            "Statistical (epsilon) admissions",
            |s| s.overflow,
        ),
        (
            "fqos_fault_lost_total",
            "Admissions unservable with all replicas down",
            |s| s.fault_lost,
        ),
        (
            "fqos_write_settled_total",
            "Logical writes settled on every replica",
            |s| s.write_settled,
        ),
        (
            "fqos_write_lost_total",
            "Logical writes that lost a replica past retries",
            |s| s.write_lost,
        ),
        (
            "fqos_gc_host_pages_total",
            "Host pages programmed by the FTL model",
            |s| s.gc_host_pages,
        ),
        (
            "fqos_gc_pages_total",
            "GC relocation pages programmed by the FTL model",
            |s| s.gc_pages,
        ),
        (
            "fqos_gc_erases_total",
            "Blocks erased by the FTL garbage collector",
            |s| s.gc_erases,
        ),
        (
            "fqos_deadline_violations_total",
            "Served requests past their deadline",
            |s| s.deadline_violations,
        ),
        (
            "fqos_windows_sealed_total",
            "Interval windows sealed",
            |s| s.windows_sealed,
        ),
    ];
    for &(name, help, read) in per_array {
        counter(&mut out, name, help);
        for (i, s) in m.arrays.iter().enumerate() {
            let _ = writeln!(out, "{name}{{array=\"{i}\"}} {}", read(s));
        }
    }

    gauge(
        &mut out,
        "fqos_in_flight",
        "Admissions awaiting settlement this window",
    );
    for (i, s) in m.arrays.iter().enumerate() {
        let in_flight = s.admitted_total().saturating_sub(
            s.served + s.write_settled + s.hedges_won + s.fault_lost + s.write_lost,
        );
        let _ = writeln!(out, "fqos_in_flight{{array=\"{i}\"}} {in_flight}");
    }
    gauge(
        &mut out,
        "fqos_write_amplification",
        "FTL write amplification (host + gc pages) / host pages",
    );
    for (i, s) in m.arrays.iter().enumerate() {
        let _ = writeln!(
            out,
            "fqos_write_amplification{{array=\"{i}\"}} {:.4}",
            s.write_amplification()
        );
    }
    gauge(
        &mut out,
        "fqos_p99_latency_ns",
        "Served-request latency p99 (bucket upper bound)",
    );
    for (i, s) in m.arrays.iter().enumerate() {
        let _ = writeln!(
            out,
            "fqos_p99_latency_ns{{array=\"{i}\"}} {}",
            s.p99_latency_ns
        );
    }
    counter(
        &mut out,
        "fqos_routed_total",
        "Submissions routed to the array by the cluster tier",
    );
    for (i, &r) in m.routed.iter().enumerate() {
        let _ = writeln!(out, "fqos_routed_total{{array=\"{i}\"}} {r}");
    }

    counter(
        &mut out,
        "fqos_cluster_rebalances_total",
        "Tenant migrations executed by the control loop",
    );
    let _ = writeln!(out, "fqos_cluster_rebalances_total {}", m.rebalances);
    counter(
        &mut out,
        "fqos_cluster_unrouted_total",
        "Submissions refused at the router (no assignment)",
    );
    let _ = writeln!(out, "fqos_cluster_unrouted_total {}", m.unrouted);
    gauge(
        &mut out,
        "fqos_cluster_router_epoch",
        "Current router epoch",
    );
    let _ = writeln!(out, "fqos_cluster_router_epoch {}", m.router_epoch);
    gauge(
        &mut out,
        "fqos_cluster_migrated_in_flight",
        "Unsettled admissions of drained tenants",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_migrated_in_flight {}",
        m.migrated_in_flight
    );
    gauge(
        &mut out,
        "fqos_cluster_law_conserved",
        "1 while the cluster conservation law holds",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_law_conserved {}",
        u64::from(m.conserved())
    );

    // Failure plane: per-array health verdicts plus the evacuation ledger.
    gauge(
        &mut out,
        "fqos_array_health",
        "Health verdict (0=healthy 1=suspect 2=slow 3=dead)",
    );
    for (i, h) in m.health.iter().enumerate() {
        let code = match h {
            ArrayHealth::Healthy => 0,
            ArrayHealth::Suspect => 1,
            ArrayHealth::Slow => 2,
            ArrayHealth::Dead => 3,
        };
        let _ = writeln!(out, "fqos_array_health{{array=\"{i}\"}} {code}");
    }
    gauge(
        &mut out,
        "fqos_cluster_arrays_dead",
        "Arrays currently dead (frozen slots)",
    );
    let dead = m.frozen.iter().filter(|&&f| f).count();
    let _ = writeln!(out, "fqos_cluster_arrays_dead {dead}");
    gauge(
        &mut out,
        "fqos_cluster_evacuation_lost",
        "Unsettled admissions charged to dead arrays (reversed on WAL restore)",
    );
    let _ = writeln!(out, "fqos_cluster_evacuation_lost {}", m.evacuation_lost);
    counter(
        &mut out,
        "fqos_cluster_evacuated_tenants_total",
        "Tenants re-registered on survivors by emergency evacuation",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_evacuated_tenants_total {}",
        m.evacuated_tenants
    );
    counter(
        &mut out,
        "fqos_cluster_refused_unavailable_total",
        "Submissions refused because the routed array was unavailable",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_refused_unavailable_total {}",
        m.refused_unavailable
    );
    counter(
        &mut out,
        "fqos_cluster_health_suspects_total",
        "Healthy-to-suspect promotions observed by the health plane",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_health_suspects_total {}",
        m.health_suspects
    );
    counter(
        &mut out,
        "fqos_cluster_dead_verdicts_total",
        "Suspect-to-dead promotions (each triggers an evacuation)",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_dead_verdicts_total {}",
        m.health_verdicts_dead
    );
    counter(
        &mut out,
        "fqos_cluster_slow_verdicts_total",
        "Suspect-to-slow promotions (fail-slow detection)",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_slow_verdicts_total {}",
        m.health_verdicts_slow
    );
    counter(
        &mut out,
        "fqos_cluster_health_recoveries_total",
        "Suspect/slow arrays demoted back to healthy",
    );
    let _ = writeln!(
        out,
        "fqos_cluster_health_recoveries_total {}",
        m.health_recoveries
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn serves_the_current_page_over_http() {
        let page: MetricsPage = Arc::new(Mutex::new(String::new()));
        *page.lock() = "fqos_cluster_rebalances_total 3\n".to_string();
        let exporter = MetricsExporter::bind("127.0.0.1:0", Arc::clone(&page)).unwrap();
        let mut conn = TcpStream::connect(exporter.local_addr()).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain"), "{response}");
        assert!(
            response.contains("fqos_cluster_rebalances_total 3"),
            "{response}"
        );
        // A refreshed page is served to the next scrape.
        *page.lock() = "fqos_cluster_rebalances_total 4\n".to_string();
        let mut conn = TcpStream::connect(exporter.local_addr()).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(
            response.contains("fqos_cluster_rebalances_total 4"),
            "{response}"
        );
    }

    #[test]
    fn a_stalled_client_cannot_wedge_the_exporter() {
        let page: MetricsPage = Arc::new(Mutex::new(String::new()));
        *page.lock() = "fqos_cluster_unrouted_total 0\n".to_string();
        let exporter = MetricsExporter::bind("127.0.0.1:0", Arc::clone(&page)).unwrap();
        // A client that connects and never sends a byte: the read timeout
        // must fire and the loop must move on to the next connection.
        let stalled = TcpStream::connect(exporter.local_addr()).unwrap();
        // A well-behaved scrape right behind it still gets the page.
        let mut conn = TcpStream::connect(exporter.local_addr()).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("fqos_cluster_unrouted_total 0"),
            "{response}"
        );
        // The stalled connection is answered (after the timeout) rather
        // than held open forever: reading to EOF terminates.
        let mut stalled = stalled;
        let _ = stalled.set_read_timeout(Some(Duration::from_secs(5)));
        let mut leftovers = String::new();
        let _ = stalled.read_to_string(&mut leftovers);
        assert!(leftovers.contains("HTTP/1.1 200 OK"), "{leftovers}");
    }

    #[test]
    fn an_oversized_request_head_is_truncated_not_buffered() {
        let page: MetricsPage = Arc::new(Mutex::new(String::new()));
        *page.lock() = "fqos_cluster_router_epoch 7\n".to_string();
        let exporter = MetricsExporter::bind("127.0.0.1:0", Arc::clone(&page)).unwrap();
        let mut conn = TcpStream::connect(exporter.local_addr()).unwrap();
        // A cap-sized junk head with no terminator: the exporter stops
        // draining at MAX_HEAD_BYTES and responds anyway instead of
        // buffering a client-controlled amount of data.
        let junk = vec![b'A'; MAX_HEAD_BYTES];
        let _ = conn.write_all(&junk);
        let mut response = String::new();
        let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = conn.read_to_string(&mut response);
        assert!(
            response.contains("fqos_cluster_router_epoch 7"),
            "{response}"
        );
    }
}
