//! # fqos-cluster
//!
//! The multi-array tier above [`fqos_server`]: N independent
//! [`fqos_server::QosServer`] arrays — each running the paper's §III-A
//! per-interval admission controller unchanged — composed into one fleet
//! by three pieces:
//!
//! - **Routing** ([`Router`]): consistent hashing with bounded loads maps
//!   tenant ids to arrays; placement is sticky, so topology changes and
//!   migrations move the minimum set of tenants. Handles cache routes and
//!   validate them against a cluster-wide epoch.
//! - **Control** ([`QosCluster::control_tick`]): a global loop
//!   differentiates each array's rejection/delay/overflow counters
//!   against its ε-budget and migrates the hottest tenant off a saturated
//!   array when the fleet has headroom — cooperative drain on the source,
//!   re-register on the target, router epoch bump.
//! - **Audit** ([`ClusterMetrics::conserved`]): the per-array conservation
//!   law extends to `Σ served + Σ fault_lost + Σ hedges_cancelled +
//!   migrated_in_flight == Σ admitted_total` across rebalances.
//!
//! A [`MetricsExporter`] serves the fleet's metrics in Prometheus text
//! format from a background thread.
//!
//! ```
//! use fqos_cluster::{ClusterConfig, QosCluster};
//! use fqos_server::{OverloadPolicy, ServerConfig};
//! use fqos_core::QosConfig;
//!
//! let array = ServerConfig::new(QosConfig::paper_9_3_1());
//! let cluster = QosCluster::new(ClusterConfig::uniform(2, &array)).unwrap();
//! cluster.register_tenant(1, 2, OverloadPolicy::Delay).unwrap();
//! let mut h = cluster.handle();
//! assert!(h.submit(1, 42, 0).is_admitted());
//! drop(h);
//! let m = cluster.finish();
//! assert!(m.conserved());
//! assert_eq!(m.completed(), 1);
//! ```

mod cluster;
mod config;
mod ctrl;
mod error;
mod health;
mod metrics;
mod prom;
mod router;

pub use cluster::{ClusterHandle, QosCluster};
pub use config::ClusterConfig;
pub use ctrl::{EvacuationEvent, RebalanceEvent};
pub use error::ClusterError;
pub use health::{
    ArrayHealth, ClusterFaultEvent, ClusterFaultKind, ClusterFaultSchedule, ClusterFaultSpecError,
    ClusterHealthParams, DEFAULT_ARRAY_SLOW_FACTOR,
};
pub use metrics::ClusterMetrics;
pub use prom::{new_page, render, MetricsExporter, MetricsPage};
pub use router::{Assignment, Router};
