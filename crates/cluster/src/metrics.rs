//! Cluster-wide metrics and the extended conservation law.

use crate::ctrl::{EvacuationEvent, RebalanceEvent};
use crate::health::ArrayHealth;
use fqos_server::MetricsSnapshot;

/// Fleet-wide snapshot: per-array [`MetricsSnapshot`]s plus the routing,
/// rebalancing and failure-tolerance view, with the extended cluster
/// conservation law
///
/// ```text
/// Σ served + Σ write_settled + Σ fault_lost + Σ hedges_cancelled
///     + Σ write_lost + migrated_in_flight + evacuation_lost
///     == Σ admitted_total
/// ```
///
/// where the sums run over every array snapshot (current slots *and*
/// archived past incarnations), `migrated_in_flight` counts admissions of
/// drained (migrated-away) tenants not yet settled on their live source
/// array, and `evacuation_lost` is the ledger of admissions stranded on
/// fail-stopped arrays (charged when an engine halts, reversed when it
/// recovers from its WAL). At [`crate::QosCluster::finish`] every live
/// window has sealed and drained, so `migrated_in_flight` is 0 and the law
/// closes exactly — `evacuation_lost` being precisely the stranded residue
/// of the frozen snapshots.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Final or live snapshot of each slot, in slot order. A dead slot
    /// contributes its frozen snapshot (see [`ClusterMetrics::frozen`]).
    pub arrays: Vec<MetricsSnapshot>,
    /// Per-slot: `true` when the snapshot is a fail-stopped engine's
    /// frozen state rather than a live/finished one.
    pub frozen: Vec<bool>,
    /// Per-slot: `true` when the slot was gracefully removed and is (or
    /// was) draining behind a router tombstone.
    pub retired: Vec<bool>,
    /// Frozen snapshots of prior incarnations that restarted *without* a
    /// WAL; their counters stay in the fleet history and their stranded
    /// residue stays in `evacuation_lost` forever.
    pub past: Vec<MetricsSnapshot>,
    /// Submissions routed to each slot (handle-side count).
    pub routed: Vec<u64>,
    /// Submissions refused at the router (tenant had no assignment).
    pub unrouted: u64,
    /// Migrations executed by the control loop.
    pub rebalances: u64,
    /// Cluster epoch (bumps on every migration, deregistration, kill,
    /// restore and membership change).
    pub router_epoch: u64,
    /// Unsettled admissions of drained tenants on their live source
    /// arrays.
    pub migrated_in_flight: u64,
    /// Admissions stranded on fail-stopped arrays, net of WAL-restore
    /// reversals.
    pub evacuation_lost: u64,
    /// Tenants re-registered on survivors by emergency evacuations.
    pub evacuated_tenants: u64,
    /// Submissions refused at the transport level (routed array was
    /// fail-stopped); each fed the health plane as a failed heartbeat.
    pub refused_unavailable: u64,
    /// Health verdict per slot at snapshot time.
    pub health: Vec<ArrayHealth>,
    /// `Healthy → Suspect` promotions.
    pub health_suspects: u64,
    /// `Suspect → Dead` verdicts (each triggered one evacuation).
    pub health_verdicts_dead: u64,
    /// `Suspect → Slow` verdicts.
    pub health_verdicts_slow: u64,
    /// Demotions back to `Healthy`.
    pub health_recoveries: u64,
    /// Every migration, in execution order.
    pub events: Vec<RebalanceEvent>,
    /// Every emergency evacuation, in execution order.
    pub evacuations: Vec<EvacuationEvent>,
}

impl ClusterMetrics {
    /// Every snapshot in the fleet's history: current slots plus archived
    /// past incarnations.
    fn all(&self) -> impl Iterator<Item = &MetricsSnapshot> {
        self.arrays.iter().chain(self.past.iter())
    }

    /// Σ admitted (guaranteed + overflow) over the fleet history.
    pub fn admitted_total(&self) -> u64 {
        self.all().map(MetricsSnapshot::admitted_total).sum()
    }

    /// Σ served (primary completions) over the fleet history.
    pub fn served(&self) -> u64 {
        self.all().map(|m| m.served).sum()
    }

    /// Σ completions (primary + hedge wins) over the fleet history.
    pub fn completed(&self) -> u64 {
        self.all().map(MetricsSnapshot::completed).sum()
    }

    /// Σ rejected over the fleet history (router-level refusals excluded;
    /// see [`ClusterMetrics::unrouted`]).
    pub fn rejected(&self) -> u64 {
        self.all().map(|m| m.rejected).sum()
    }

    /// Σ fault-lost over the fleet history.
    pub fn fault_lost(&self) -> u64 {
        self.all().map(|m| m.fault_lost).sum()
    }

    /// Σ logical writes settled on every replica over the fleet history.
    pub fn write_settled(&self) -> u64 {
        self.all().map(|m| m.write_settled).sum()
    }

    /// Σ logical writes that lost a replica past retries.
    pub fn write_lost(&self) -> u64 {
        self.all().map(|m| m.write_lost).sum()
    }

    /// Σ host pages programmed by the fleet's FTL models.
    pub fn gc_host_pages(&self) -> u64 {
        self.all().map(|m| m.gc_host_pages).sum()
    }

    /// Σ GC relocation pages programmed by the fleet's FTL models.
    pub fn gc_pages(&self) -> u64 {
        self.all().map(|m| m.gc_pages).sum()
    }

    /// Fleet-wide write amplification `(host + gc) / host`.
    pub fn write_amplification(&self) -> f64 {
        let host = self.gc_host_pages();
        if host == 0 {
            1.0
        } else {
            (host + self.gc_pages()) as f64 / host as f64
        }
    }

    /// Σ hedge-cancelled primaries over the fleet history.
    pub fn hedges_cancelled(&self) -> u64 {
        self.all().map(|m| m.hedges_cancelled).sum()
    }

    /// Σ deadline violations over the fleet history.
    pub fn deadline_violations(&self) -> u64 {
        self.all().map(|m| m.deadline_violations).sum()
    }

    /// Σ windows sealed over the fleet history.
    pub fn windows_sealed(&self) -> u64 {
        self.all().map(|m| m.windows_sealed).sum()
    }

    /// Σ settled admissions — the left side of the extended law before
    /// the in-flight and stranded terms.
    fn settled(&self) -> u64 {
        self.all().map(MetricsSnapshot::settled).sum()
    }

    /// Admissions not yet settled on a *live* array
    /// (`≥ migrated_in_flight` mid-run, 0 at finish). Frozen snapshots are
    /// excluded: their stranded residue is `evacuation_lost`, not
    /// in-flight work.
    pub fn in_flight_total(&self) -> u64 {
        self.arrays
            .iter()
            .zip(self.frozen_flags())
            .filter(|&(_, frozen)| !frozen)
            .map(|(m, _)| {
                m.admitted_total().saturating_sub(
                    m.served + m.write_settled + m.hedges_won + m.fault_lost + m.write_lost,
                )
            })
            .sum()
    }

    /// `frozen` padded to the slot count (defensive against hand-built
    /// values in tests).
    fn frozen_flags(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.arrays.len()).map(|i| self.frozen.get(i).copied().unwrap_or(false))
    }

    /// p99 service latency: the worst array's (an honest fleet-wide upper
    /// bound — a cluster is as slow as its slowest member).
    pub fn p99_latency_ns(&self) -> u64 {
        self.arrays
            .iter()
            .map(|m| m.p99_latency_ns)
            .max()
            .unwrap_or(0)
    }

    /// p99.9 service latency (worst array).
    pub fn p999_latency_ns(&self) -> u64 {
        self.arrays
            .iter()
            .map(|m| m.p999_latency_ns)
            .max()
            .unwrap_or(0)
    }

    /// Utilization spread `(max − min) / mean` of per-array admitted
    /// totals; 0 for a perfectly balanced fleet.
    pub fn utilization_spread(&self) -> f64 {
        let loads: Vec<u64> = self
            .arrays
            .iter()
            .map(MetricsSnapshot::admitted_total)
            .collect();
        let (Some(&max), Some(&min)) = (loads.iter().max(), loads.iter().min()) else {
            return 0.0;
        };
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            (max - min) as f64 / mean
        }
    }

    /// The extended conservation law. Three independent checks:
    ///
    /// 1. `migrated_in_flight` is 0 — every drained tenant's admissions
    ///    settled on its (live) source array;
    /// 2. every non-frozen snapshot closes its own per-array law exactly;
    /// 3. the fleet-wide equation `settled + migrated_in_flight +
    ///    evacuation_lost == admitted_total` balances, which pins
    ///    `evacuation_lost` to exactly the frozen snapshots' stranded
    ///    residue — a drifting ledger (double charge, missed reversal)
    ///    breaks it.
    pub fn conserved(&self) -> bool {
        self.migrated_in_flight == 0
            && self
                .arrays
                .iter()
                .zip(self.frozen_flags())
                .filter(|&(_, frozen)| !frozen)
                .all(|(m, _)| {
                    m.hedges_won == m.hedges_cancelled && m.settled() == m.admitted_total()
                })
            && self.settled() + self.migrated_in_flight + self.evacuation_lost
                == self.admitted_total()
    }

    /// One-line audit for logs and `finish()`.
    pub fn render_audit(&self) -> String {
        format!(
            "cluster audit: arrays={} admitted={} completed={} write_settled={} \
             fault_lost={} hedges_cancelled={} write_lost={} migrated_in_flight={} \
             evacuation_lost={} evacuated={} dead={} rebalances={} epoch={} law={}",
            self.arrays.len(),
            self.admitted_total(),
            self.completed(),
            self.write_settled(),
            self.fault_lost(),
            self.hedges_cancelled(),
            self.write_lost(),
            self.migrated_in_flight,
            self.evacuation_lost,
            self.evacuated_tenants,
            self.frozen_flags().filter(|&f| f).count(),
            self.rebalances,
            self.router_epoch,
            if self.conserved() { "OK" } else { "VIOLATED" },
        )
    }
}
