//! Cluster-wide metrics and the extended conservation law.

use crate::ctrl::RebalanceEvent;
use fqos_server::MetricsSnapshot;

/// Fleet-wide snapshot: per-array [`MetricsSnapshot`]s plus the routing
/// and rebalancing view, with the cluster conservation law
///
/// ```text
/// Σ served + Σ fault_lost + Σ hedges_cancelled + migrated_in_flight
///     == Σ admitted_total
/// ```
///
/// where the sums run over arrays and `migrated_in_flight` counts
/// admissions of drained (migrated-away) tenants not yet settled on their
/// source array. At [`crate::QosCluster::finish`] every window has sealed
/// and drained, so `migrated_in_flight` is 0 and the law closes exactly.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Final or live snapshot of each array, in array order.
    pub arrays: Vec<MetricsSnapshot>,
    /// Submissions routed to each array (handle-side count).
    pub routed: Vec<u64>,
    /// Submissions refused at the router (tenant had no assignment).
    pub unrouted: u64,
    /// Migrations executed by the control loop.
    pub rebalances: u64,
    /// Router epoch (bumps on every migration/deregistration).
    pub router_epoch: u64,
    /// Unsettled admissions of drained tenants on their source arrays.
    pub migrated_in_flight: u64,
    /// Every migration, in execution order.
    pub events: Vec<RebalanceEvent>,
}

impl ClusterMetrics {
    /// Σ admitted (guaranteed + overflow) over arrays.
    pub fn admitted_total(&self) -> u64 {
        self.arrays
            .iter()
            .map(MetricsSnapshot::admitted_total)
            .sum()
    }

    /// Σ served (primary completions) over arrays.
    pub fn served(&self) -> u64 {
        self.arrays.iter().map(|m| m.served).sum()
    }

    /// Σ completions (primary + hedge wins) over arrays.
    pub fn completed(&self) -> u64 {
        self.arrays.iter().map(MetricsSnapshot::completed).sum()
    }

    /// Σ rejected over arrays (router-level refusals excluded; see
    /// [`ClusterMetrics::unrouted`]).
    pub fn rejected(&self) -> u64 {
        self.arrays.iter().map(|m| m.rejected).sum()
    }

    /// Σ fault-lost over arrays.
    pub fn fault_lost(&self) -> u64 {
        self.arrays.iter().map(|m| m.fault_lost).sum()
    }

    /// Σ hedge-cancelled primaries over arrays.
    pub fn hedges_cancelled(&self) -> u64 {
        self.arrays.iter().map(|m| m.hedges_cancelled).sum()
    }

    /// Σ deadline violations over arrays.
    pub fn deadline_violations(&self) -> u64 {
        self.arrays.iter().map(|m| m.deadline_violations).sum()
    }

    /// Σ windows sealed over arrays.
    pub fn windows_sealed(&self) -> u64 {
        self.arrays.iter().map(|m| m.windows_sealed).sum()
    }

    /// Admissions not yet settled anywhere in the fleet
    /// (`≥ migrated_in_flight` mid-run, 0 at finish).
    pub fn in_flight_total(&self) -> u64 {
        self.arrays
            .iter()
            .map(|m| {
                m.admitted_total()
                    .saturating_sub(m.served + m.hedges_won + m.fault_lost)
            })
            .sum()
    }

    /// p99 service latency: the worst array's (an honest fleet-wide upper
    /// bound — a cluster is as slow as its slowest member).
    pub fn p99_latency_ns(&self) -> u64 {
        self.arrays
            .iter()
            .map(|m| m.p99_latency_ns)
            .max()
            .unwrap_or(0)
    }

    /// p99.9 service latency (worst array).
    pub fn p999_latency_ns(&self) -> u64 {
        self.arrays
            .iter()
            .map(|m| m.p999_latency_ns)
            .max()
            .unwrap_or(0)
    }

    /// Utilization spread `(max − min) / mean` of per-array admitted
    /// totals; 0 for a perfectly balanced fleet.
    pub fn utilization_spread(&self) -> f64 {
        let loads: Vec<u64> = self
            .arrays
            .iter()
            .map(MetricsSnapshot::admitted_total)
            .collect();
        let (Some(&max), Some(&min)) = (loads.iter().max(), loads.iter().min()) else {
            return 0.0;
        };
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            (max - min) as f64 / mean
        }
    }

    /// The extended conservation law. Exact per array (each array's own
    /// law already closes), and `migrated_in_flight` must be 0 — every
    /// drained tenant's admissions settled on its source array.
    pub fn conserved(&self) -> bool {
        self.migrated_in_flight == 0
            && self.arrays.iter().all(|m| {
                m.hedges_won == m.hedges_cancelled
                    && m.served + m.fault_lost + m.hedges_cancelled == m.admitted_total()
            })
    }

    /// One-line audit for logs and `finish()`.
    pub fn render_audit(&self) -> String {
        format!(
            "cluster audit: arrays={} admitted={} completed={} fault_lost={} \
             hedges_cancelled={} migrated_in_flight={} rebalances={} epoch={} law={}",
            self.arrays.len(),
            self.admitted_total(),
            self.completed(),
            self.fault_lost(),
            self.hedges_cancelled(),
            self.migrated_in_flight,
            self.rebalances,
            self.router_epoch,
            if self.conserved() { "OK" } else { "VIOLATED" },
        )
    }
}
