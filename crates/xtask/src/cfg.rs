//! Function segmentation and per-function control-flow skeletons over
//! the spanned token stream (`source::lex`).
//!
//! Two views are built for every function:
//!
//! - a **statement tree** (`Node`): statements plus structured
//!   `if`/`else`, `match` arms, loops and bare blocks. Lock passes walk
//!   this tree because lexical guard lifetimes (a `let`-bound guard dies
//!   when its enclosing block closes) map onto it directly.
//! - a **basic-block CFG** (`Cfg`): the tree flattened into blocks with
//!   successor edges — `if` forks, every `match` arm forks, loop bodies
//!   run zero-or-once, `?` and `return` edge to the exit block. The
//!   ledger pass enumerates acyclic entry→exit paths over it (back
//!   edges are intentionally not emitted, so enumeration terminates;
//!   executing a loop body once is enough to observe its counter
//!   mutations).
//!
//! The parser is defensive: it never panics on unbalanced or exotic
//! input, it just degrades to flat statements. Spawn-closure bodies
//! (`spawn(move || …)`) are cut out into detached synthetic functions —
//! they run on another thread, so guards held at the spawn site are
//! *not* held inside them.

use crate::source::{Tok, TokKind};

/// One statement (or condition / match head / arm pattern): a flat,
/// span-carrying token run.
#[derive(Debug, Clone)]
pub struct Stmt {
    pub toks: Vec<Tok>,
    /// Contains a `?` operator (an early-exit edge in the CFG).
    pub has_try: bool,
    /// Starts with / contains a top-level `return`.
    pub returns: bool,
}

impl Stmt {
    fn new(toks: Vec<Tok>) -> Self {
        let mut depth = 0i32;
        let mut has_try = false;
        let mut returns = false;
        for t in &toks {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "?" if t.kind == TokKind::Punct => has_try = true,
                "return" if t.kind == TokKind::Ident && depth == 0 => returns = true,
                _ => {}
            }
        }
        Stmt {
            toks,
            has_try,
            returns,
        }
    }

    /// Compact statement text — test scaffolding for span assertions.
    #[cfg(test)]
    pub fn text(&self) -> String {
        crate::source::text_of(&self.toks)
    }
}

/// One `match` arm: its pattern (with any `if` guard) and body.
#[derive(Debug, Clone)]
pub struct Arm {
    pub pat: Stmt,
    pub body: Vec<Node>,
}

/// Structured statement-tree node.
#[derive(Debug, Clone)]
pub enum Node {
    Stmt(Stmt),
    If {
        cond: Stmt,
        then_branch: Vec<Node>,
        else_branch: Option<Vec<Node>>,
    },
    Match {
        head: Stmt,
        arms: Vec<Arm>,
    },
    Loop {
        head: Stmt,
        body: Vec<Node>,
    },
    Block(Vec<Node>),
    /// A `let … else { … }` divergence block: entered only when the
    /// pattern fails, so the CFG forks around it (unlike `Block`, which
    /// executes unconditionally and lowers inline).
    Else(Vec<Node>),
}

/// One segmented function.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// `impl`/`trait` owner type, if any.
    pub owner: Option<String>,
    pub name: String,
    pub line: usize,
    /// Signature tokens between the name and the body `{` (params,
    /// return type, where clause).
    pub sig: Vec<Tok>,
    pub nodes: Vec<Node>,
}

fn depth_delta(text: &str) -> i32 {
    match text {
        "(" | "[" | "{" => 1,
        ")" | "]" | "}" => -1,
        _ => 0,
    }
}

/// Find the index of the brace that closes `toks[open]` (which must be
/// `{`/`(`/`[`). Returns `toks.len()` when unbalanced.
fn matching(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        depth += depth_delta(&t.text);
        if depth == 0 {
            return k;
        }
    }
    toks.len()
}

/// Extract the owner type name from the tokens between `impl`/`trait`
/// and the opening `{`: the last path-segment identifier at angle depth
/// zero, taken after `for` when present, stopping at `where`.
fn owner_from_header(header: &[Tok]) -> Option<String> {
    let start = header
        .iter()
        .position(|t| t.is_ident("for"))
        .map_or(0, |p| p + 1);
    let mut angle = 0i32;
    let mut owner = None;
    for t in &header[start..] {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "where" if t.kind == TokKind::Ident && angle == 0 => break,
            _ if t.kind == TokKind::Ident && angle == 0 => owner = Some(t.text.clone()),
            _ => {}
        }
    }
    owner
}

/// Segment a lexed file into functions. Handles `impl`/`trait` owner
/// scopes, skips `#[cfg(test)]` items, and terminates signatures only
/// at a *bracket-balanced* `{` or `;` — a multi-line signature
/// containing `[u8; 32]` is a function definition, not a trait method
/// declaration (the historical line-based scanner dropped those).
pub fn functions(toks: &[Tok]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut scopes: Vec<(i32, String)> = Vec::new(); // (depth at open, owner)
    let mut depth = 0i32;
    let mut skip_next_item = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        // Attribute: consume `#[…]` / `#![…]`, remember cfg(test).
        if t.is("#") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is("!") {
                j += 1;
            }
            if j < toks.len() && toks[j].is("[") {
                let close = matching(toks, j);
                let inner = &toks[j..close.min(toks.len())];
                if inner.iter().any(|t| t.is_ident("cfg"))
                    && inner.iter().any(|t| t.is_ident("test"))
                {
                    skip_next_item = true;
                }
                i = close + 1;
                continue;
            }
        }
        // A cfg(test)-gated item: skip it wholesale (to `;` or through
        // its balanced braces).
        if skip_next_item && !t.is("#") {
            skip_next_item = false;
            let mut d = 0i32;
            while i < toks.len() {
                match toks[i].text.as_str() {
                    "{" | "(" | "[" => d += 1,
                    "}" | ")" | "]" => {
                        d -= 1;
                        if d == 0 && toks[i].is("}") {
                            i += 1;
                            break;
                        }
                    }
                    ";" if d == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        match t.text.as_str() {
            "impl" | "trait" if t.kind == TokKind::Ident => {
                // Header runs to the opening `{` at bracket depth 0.
                let mut j = i + 1;
                let mut d = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d -= 1,
                        "{" if d == 0 => break,
                        ";" if d == 0 => break, // e.g. `trait Alias = …;`
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].is("{") {
                    if let Some(owner) = owner_from_header(&toks[i + 1..j]) {
                        scopes.push((depth + 1, owner));
                    }
                    depth += 1;
                }
                i = j + 1;
            }
            "fn" if t.kind == TokKind::Ident => {
                let name_tok = toks.get(i + 1);
                let Some(name_tok) = name_tok.filter(|n| n.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let name = name_tok.text.clone();
                let line = name_tok.line;
                // Scan the signature for `{` or `;` at bracket depth 0.
                let mut j = i + 2;
                let mut d = 0i32;
                let mut body_open = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => d += 1,
                        ")" | "]" => d -= 1,
                        "{" if d == 0 => {
                            body_open = Some(j);
                            break;
                        }
                        ";" if d == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let Some(open) = body_open else {
                    i = j + 1; // declaration only (trait method)
                    continue;
                };
                let close = matching(toks, open);
                let owner = scopes.last().map(|(_, o)| o.clone());
                let sig = toks[i + 2..open].to_vec();
                let body = &toks[open + 1..close.min(toks.len())];
                segment_body(owner, name, line, sig, body, &mut out);
                i = close + 1;
            }
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth -= 1;
                while scopes.last().is_some_and(|(d, _)| *d > depth) {
                    scopes.pop();
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

/// Build the FnDef for one body, cutting spawn-closures out into
/// detached synthetic functions first.
fn segment_body(
    owner: Option<String>,
    name: String,
    line: usize,
    sig: Vec<Tok>,
    body: &[Tok],
    out: &mut Vec<FnDef>,
) {
    let mut kept: Vec<Tok> = Vec::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.is_ident("spawn") && body.get(i + 1).is_some_and(|n| n.is("(")) {
            let close = matching(body, i + 1);
            let args = &body[i + 2..close.min(body.len())];
            // Only closure arguments detach (`spawn(move || …)`);
            // `Command::spawn()` takes none and stays inline.
            if args
                .first()
                .is_some_and(|a| a.is_ident("move") || a.is("|") || a.is("||"))
            {
                let mut inner = args;
                if inner.first().is_some_and(|a| a.is_ident("move")) {
                    inner = &inner[1..];
                }
                if inner.first().is_some_and(|a| a.is("|") || a.is("||")) {
                    // Closure params end at the next `|` (or `||`).
                    let rest = if inner[0].is("||") {
                        &inner[1..]
                    } else {
                        match inner[1..].iter().position(|t| t.is("|")) {
                            Some(p) => &inner[p + 2..],
                            None => &inner[1..],
                        }
                    };
                    let spawn_line = t.line;
                    segment_body(
                        owner.clone(),
                        format!("{name}::spawned@{spawn_line}"),
                        spawn_line,
                        Vec::new(),
                        rest,
                        out,
                    );
                    // Keep the call shape (`spawn()`) so the walker still
                    // sees a statement here, minus the detached body.
                    kept.push(t.clone());
                    kept.push(body[i + 1].clone());
                    if close < body.len() {
                        kept.push(body[close].clone());
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        kept.push(t.clone());
        i += 1;
    }
    let nodes = parse_nodes(&kept);
    out.push(FnDef {
        owner,
        name,
        line,
        sig,
        nodes,
    });
}

/// Keywords that open a control construct usable in expression
/// position; meeting one mid-statement splits the statement.
fn is_ctl(t: &Tok) -> bool {
    t.kind == TokKind::Ident && matches!(t.text.as_str(), "if" | "match" | "loop")
}

fn is_loop_head(t: &Tok) -> bool {
    t.kind == TokKind::Ident && matches!(t.text.as_str(), "loop" | "while" | "for")
}

/// Parse a token run into a statement tree. Never panics; unparsable
/// tails degrade to flat statements.
pub fn parse_nodes(toks: &[Tok]) -> Vec<Node> {
    let mut nodes = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("if") {
            let (node, next) = parse_if(toks, i);
            nodes.push(node);
            i = next;
        } else if t.is_ident("match") {
            let (node, next) = parse_match(toks, i);
            nodes.push(node);
            i = next;
        } else if is_loop_head(t) {
            let (node, next) = parse_loop(toks, i);
            nodes.push(node);
            i = next;
        } else if t.kind == TokKind::Lifetime
            && toks.get(i + 1).is_some_and(|n| n.is(":"))
            && toks.get(i + 2).is_some_and(is_loop_head)
        {
            let (node, next) = parse_loop(toks, i + 2);
            nodes.push(node);
            i = next;
        } else if t.is_ident("else") && toks.get(i + 1).is_some_and(|n| n.is("{")) {
            // `let … else { … }`: the flat-statement scan below splits at
            // the `else`, so the divergent block parses as its own scope —
            // temporaries acquired before it must not appear live inside,
            // and its `return` must not swallow the fallthrough path.
            let close = matching(toks, i + 1);
            nodes.push(Node::Else(parse_nodes(&toks[i + 2..close.min(toks.len())])));
            i = close + 1;
        } else if t.is_ident("unsafe") && toks.get(i + 1).is_some_and(|n| n.is("{")) {
            let close = matching(toks, i + 1);
            nodes.push(Node::Block(parse_nodes(
                &toks[i + 2..close.min(toks.len())],
            )));
            i = close + 1;
        } else if t.is("{") {
            let close = matching(toks, i);
            nodes.push(Node::Block(parse_nodes(
                &toks[i + 1..close.min(toks.len())],
            )));
            i = close + 1;
        } else if t.is(";") {
            i += 1;
        } else {
            // Flat statement: run to `;` at depth 0. A control keyword at
            // depth 0 splits the statement so its branches stay visible
            // (`let x = match e { … };` → prefix stmt + Match node + tail).
            let start = i;
            let mut d = 0i32;
            let mut end = None;
            while i < toks.len() {
                let c = &toks[i];
                if d == 0 && i > start && (is_ctl(c) || c.is_ident("else")) {
                    break;
                }
                match c.text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    ";" if d == 0 => {
                        end = Some(i);
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            let upto = end.map_or(i, |e| e + 1);
            if upto > start {
                nodes.push(Node::Stmt(Stmt::new(toks[start..upto].to_vec())));
            }
            if let Some(e) = end {
                i = e + 1;
            }
            // else: stopped at a control keyword (or ran out); loop
            // re-enters and parses the construct.
        }
    }
    nodes
}

/// Condition / head scan: to the `{` at paren/bracket depth 0.
fn head_end(toks: &[Tok], from: usize) -> usize {
    let mut d = 0i32;
    let mut j = from;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => d += 1,
            ")" | "]" => d -= 1,
            "{" if d == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

fn parse_if(toks: &[Tok], i: usize) -> (Node, usize) {
    let open = head_end(toks, i + 1);
    let cond = Stmt::new(toks[i..open.min(toks.len())].to_vec());
    if open >= toks.len() {
        return (Node::Stmt(cond), toks.len());
    }
    let close = matching(toks, open);
    let then_branch = parse_nodes(&toks[open + 1..close.min(toks.len())]);
    let mut next = close + 1;
    let mut else_branch = None;
    if toks.get(next).is_some_and(|t| t.is_ident("else")) {
        if toks.get(next + 1).is_some_and(|t| t.is_ident("if")) {
            let (nested, after) = parse_if(toks, next + 1);
            else_branch = Some(vec![nested]);
            next = after;
        } else if toks.get(next + 1).is_some_and(|t| t.is("{")) {
            let eclose = matching(toks, next + 1);
            else_branch = Some(parse_nodes(&toks[next + 2..eclose.min(toks.len())]));
            next = eclose + 1;
        }
    }
    (
        Node::If {
            cond,
            then_branch,
            else_branch,
        },
        next,
    )
}

fn parse_match(toks: &[Tok], i: usize) -> (Node, usize) {
    let open = head_end(toks, i + 1);
    let head = Stmt::new(toks[i..open.min(toks.len())].to_vec());
    if open >= toks.len() {
        return (Node::Stmt(head), toks.len());
    }
    let close = matching(toks, open);
    let inner = &toks[open + 1..close.min(toks.len())];
    let mut arms = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        if inner[j].is(",") {
            j += 1;
            continue;
        }
        // Pattern (with optional `if` guard) to `=>` at depth 0.
        let pstart = j;
        let mut d = 0i32;
        while j < inner.len() {
            match inner[j].text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                "=>" if d == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= inner.len() {
            // Trailing tokens with no arrow: keep them visible as a
            // pattern-only arm.
            if j > pstart {
                arms.push(Arm {
                    pat: Stmt::new(inner[pstart..].to_vec()),
                    body: Vec::new(),
                });
            }
            break;
        }
        let pat = Stmt::new(inner[pstart..j].to_vec());
        j += 1; // past `=>`
        let body = if inner.get(j).is_some_and(|t| t.is("{")) {
            let bclose = matching(inner, j);
            let body = parse_nodes(&inner[j + 1..bclose.min(inner.len())]);
            j = bclose + 1;
            body
        } else {
            // Expression arm: to `,` at depth 0 (or end of match).
            let estart = j;
            let mut d = 0i32;
            while j < inner.len() {
                match inner[j].text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "," if d == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            parse_nodes(&inner[estart..j])
        };
        arms.push(Arm { pat, body });
    }
    (Node::Match { head, arms }, close + 1)
}

fn parse_loop(toks: &[Tok], i: usize) -> (Node, usize) {
    let open = head_end(toks, i + 1);
    let head = Stmt::new(toks[i..open.min(toks.len())].to_vec());
    if open >= toks.len() {
        return (Node::Stmt(head), toks.len());
    }
    let close = matching(toks, open);
    let body = parse_nodes(&toks[open + 1..close.min(toks.len())]);
    (Node::Loop { head, body }, close + 1)
}

/// Collect every statement in a tree (statements, conditions, heads and
/// arm patterns), in source order. Used by the whole-function fact
/// passes that don't care about branching.
pub fn all_stmts<'a>(nodes: &'a [Node], out: &mut Vec<&'a Stmt>) {
    for n in nodes {
        match n {
            Node::Stmt(s) => out.push(s),
            Node::If {
                cond,
                then_branch,
                else_branch,
            } => {
                out.push(cond);
                all_stmts(then_branch, out);
                if let Some(e) = else_branch {
                    all_stmts(e, out);
                }
            }
            Node::Match { head, arms } => {
                out.push(head);
                for a in arms {
                    out.push(&a.pat);
                    all_stmts(&a.body, out);
                }
            }
            Node::Loop { head, body } => {
                out.push(head);
                all_stmts(body, out);
            }
            Node::Block(b) | Node::Else(b) => all_stmts(b, out),
        }
    }
}

// ---------------------------------------------------------------------------
// Basic-block CFG.
// ---------------------------------------------------------------------------

/// Flattened control-flow graph: `blocks[i]` is a straight-line run of
/// statements, `succ[i]` its successors. Block 0 is the entry;
/// `exit` is a distinguished empty block. Acyclic by construction
/// (loop bodies run zero-or-once, no back edges).
pub struct Cfg {
    pub blocks: Vec<Vec<Stmt>>,
    pub succ: Vec<Vec<usize>>,
    pub exit: usize,
}

impl Cfg {
    pub fn build(nodes: &[Node]) -> Cfg {
        let mut cfg = Cfg {
            blocks: vec![Vec::new(), Vec::new()],
            succ: vec![Vec::new(), Vec::new()],
            exit: 1,
        };
        let last = cfg.lower(nodes, 0);
        if last != cfg.exit {
            cfg.succ[last].push(cfg.exit);
        }
        cfg
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Vec::new());
        self.succ.push(Vec::new());
        self.blocks.len() - 1
    }

    fn lower(&mut self, nodes: &[Node], mut cur: usize) -> usize {
        for n in nodes {
            match n {
                Node::Stmt(s) => {
                    self.blocks[cur].push(s.clone());
                    if s.returns {
                        self.succ[cur].push(self.exit);
                        cur = self.new_block(); // unreachable continuation
                    } else if s.has_try {
                        let next = self.new_block();
                        self.succ[cur].push(next);
                        self.succ[cur].push(self.exit);
                        cur = next;
                    }
                }
                Node::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.blocks[cur].push(cond.clone());
                    let join = self.new_block();
                    let t_entry = self.new_block();
                    self.succ[cur].push(t_entry);
                    let t_exit = self.lower(then_branch, t_entry);
                    self.succ[t_exit].push(join);
                    match else_branch {
                        Some(e) => {
                            let e_entry = self.new_block();
                            self.succ[cur].push(e_entry);
                            let e_exit = self.lower(e, e_entry);
                            self.succ[e_exit].push(join);
                        }
                        None => self.succ[cur].push(join),
                    }
                    cur = join;
                }
                Node::Match { head, arms } => {
                    self.blocks[cur].push(head.clone());
                    let join = self.new_block();
                    if arms.is_empty() {
                        self.succ[cur].push(join);
                    }
                    for a in arms {
                        let entry = self.new_block();
                        self.succ[cur].push(entry);
                        self.blocks[entry].push(a.pat.clone());
                        let exit = self.lower(&a.body, entry);
                        self.succ[exit].push(join);
                    }
                    cur = join;
                }
                Node::Loop { head, body } => {
                    self.blocks[cur].push(head.clone());
                    let join = self.new_block();
                    let entry = self.new_block();
                    self.succ[cur].push(entry); // one iteration
                    self.succ[cur].push(join); // zero iterations
                    let exit = self.lower(body, entry);
                    self.succ[exit].push(join);
                    cur = join;
                }
                Node::Block(b) => {
                    cur = self.lower(b, cur);
                }
                Node::Else(b) => {
                    // Pattern-failure fork: the divergent block runs (and
                    // almost always returns), or the pattern matched and
                    // control falls straight through.
                    let join = self.new_block();
                    let entry = self.new_block();
                    self.succ[cur].push(entry);
                    self.succ[cur].push(join);
                    let exit = self.lower(b, entry);
                    self.succ[exit].push(join);
                    cur = join;
                }
            }
        }
        cur
    }

    /// Enumerate entry→exit statement paths, capped. Returns the paths
    /// and whether the cap truncated enumeration (callers must report
    /// truncation rather than silently under-checking).
    pub fn paths(&self, cap: usize) -> (Vec<Vec<&Stmt>>, bool) {
        let mut paths = Vec::new();
        let mut truncated = false;
        let mut stack: Vec<(usize, Vec<&Stmt>)> = vec![(0, Vec::new())];
        while let Some((b, mut acc)) = stack.pop() {
            if paths.len() >= cap {
                truncated = true;
                break;
            }
            acc.extend(self.blocks[b].iter());
            if b == self.exit || self.succ[b].is_empty() {
                paths.push(acc);
                continue;
            }
            for &s in &self.succ[b] {
                stack.push((s, acc.clone()));
            }
        }
        (paths, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lex;

    fn fns(src: &str) -> Vec<FnDef> {
        functions(&lex(src).0)
    }

    #[test]
    fn segments_impl_methods_with_owners() {
        let f = fns("impl Engine { fn seal(&self) { x(); } }\nfn free() { y(); }");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].owner.as_deref(), Some("Engine"));
        assert_eq!(f[0].name, "seal");
        assert_eq!(f[1].owner, None);
        assert_eq!(f[1].name, "free");
    }

    #[test]
    fn trait_impls_attribute_owner_to_the_implementing_type() {
        let f = fns("impl Drop for ClusterHandle { fn drop(&mut self) { a(); } }");
        assert_eq!(f[0].owner.as_deref(), Some("ClusterHandle"));
    }

    #[test]
    fn multiline_signature_with_array_semicolon_is_not_dropped() {
        // Regression: `[u8; 32]` used to terminate the signature scan and
        // the whole function vanished from the lock pass.
        let f = fns("impl W {\n fn digest(\n  &self,\n  buf: [u8; 32],\n ) -> u64 {\n  let g = self.wal.lock();\n  g.sum()\n }\n}");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].name, "digest");
        let mut stmts = Vec::new();
        all_stmts(&f[0].nodes, &mut stmts);
        assert!(stmts.iter().any(|s| s.text().contains("wal.lock(")));
    }

    #[test]
    fn trait_method_declarations_have_no_body_and_are_skipped() {
        let f = fns("trait T { fn decl(&self) -> u64; fn with_default(&self) { d(); } }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "with_default");
        assert_eq!(f[0].owner.as_deref(), Some("T"));
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let f = fns("fn live() { a(); }\n#[cfg(test)]\nmod tests { fn t() { x.lock(); } }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "live");
    }

    #[test]
    fn spawn_closures_detach_into_synthetic_functions() {
        let f = fns("impl E { fn start(&self) { let g = self.handles.lock(); thread::spawn(move || { self.dispatch.lock(); }); } }");
        assert_eq!(f.len(), 2, "{f:?}");
        let spawned = f.iter().find(|d| d.name.contains("::spawned@")).unwrap();
        assert!(spawned.name.starts_with("start::spawned@"));
        let mut stmts = Vec::new();
        all_stmts(&spawned.nodes, &mut stmts);
        assert!(stmts.iter().any(|s| s.text().contains("dispatch.lock(")));
        // The parent body must no longer contain the closure's acquisitions.
        let parent = f.iter().find(|d| !d.name.contains("::spawned@")).unwrap();
        let mut stmts = Vec::new();
        all_stmts(&parent.nodes, &mut stmts);
        assert!(!stmts.iter().any(|s| s.text().contains("dispatch.lock(")));
    }

    #[test]
    fn parses_if_else_chains() {
        let f = fns("fn f() { if a { b(); } else if c { d(); } else { e(); } }");
        let Node::If { else_branch, .. } = &f[0].nodes[0] else {
            panic!("expected If, got {:?}", f[0].nodes)
        };
        let inner = else_branch.as_ref().unwrap();
        assert!(matches!(inner[0], Node::If { .. }));
    }

    #[test]
    fn parses_match_arms_with_struct_patterns_and_guards() {
        let f = fns("fn f(x: E) { match x { E::A { n } if n > 0 => { a(); } E::A { .. } => b(), _ => {} } }");
        let Node::Match { arms, .. } = &f[0].nodes[0] else {
            panic!("expected Match, got {:?}", f[0].nodes)
        };
        assert_eq!(arms.len(), 3);
        assert!(arms[0].pat.text().contains("if n>0"));
    }

    #[test]
    fn embedded_match_in_a_let_is_split_out() {
        let f = fns("fn f() { let x = match e { A => 1, B => 2, }; g(x); }");
        // Prefix stmt (`let x =`), Match node, `;`-tail, then g(x).
        assert!(
            f[0].nodes.iter().any(|n| matches!(n, Node::Match { .. })),
            "{:?}",
            f[0].nodes
        );
    }

    #[test]
    fn cfg_paths_fork_per_branch_and_match_arm() {
        let f =
            fns("fn f() { if a { b(); } else { c(); } match d { X => x(), Y => y(), Z => z(), } }");
        let cfg = Cfg::build(&f[0].nodes);
        let (paths, truncated) = cfg.paths(64);
        assert!(!truncated);
        assert_eq!(paths.len(), 6); // 2 if-branches × 3 arms
    }

    #[test]
    fn try_operator_adds_an_early_exit_path() {
        let f = fns("fn f() -> R { a()?; b(); Ok(()) }");
        let cfg = Cfg::build(&f[0].nodes);
        let (paths, _) = cfg.paths(64);
        assert_eq!(paths.len(), 2);
        // One path stops after the `?` statement, one runs through b().
        assert!(paths
            .iter()
            .any(|p| p.iter().all(|s| !s.text().contains("b()"))));
    }

    #[test]
    fn let_else_forks_instead_of_swallowing_the_fallthrough() {
        // Regression: the divergence block's `return` must not terminate
        // every path — code after the let-else has to stay reachable, and
        // temporaries from before the `else` must not be live inside it.
        let f = fns("fn f() { let Some(x) = probe() else { log(); return; }; settle(x); }");
        assert!(
            f[0].nodes.iter().any(|n| matches!(n, Node::Else(_))),
            "{:?}",
            f[0].nodes
        );
        let cfg = Cfg::build(&f[0].nodes);
        let (paths, _) = cfg.paths(64);
        assert_eq!(paths.len(), 2);
        assert!(
            paths
                .iter()
                .any(|p| p.iter().any(|s| s.text().contains("settle"))),
            "fallthrough path lost"
        );
    }

    #[test]
    fn loops_run_zero_or_once_keeping_paths_finite() {
        let f = fns("fn f() { for i in 0..n { a(); } b(); }");
        let cfg = Cfg::build(&f[0].nodes);
        let (paths, truncated) = cfg.paths(64);
        assert!(!truncated);
        assert_eq!(paths.len(), 2);
    }
}
