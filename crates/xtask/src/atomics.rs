//! Atomic-ordering audit: classify every `Ordering::*` use site and
//! flag `Relaxed` on flags that gate cross-thread control decisions.
//!
//! The ROADMAP's next tentpole is a lock-free admission/dispatch hot
//! path, where ordering mistakes become the dominant bug class. The
//! rule enforced today: a *control flag* — one whose loaded value
//! decides whether another thread's writes are observed (`shutdown`,
//! `closed`, tenant `live`, fail-slow `live_slow`, router `epoch`,
//! WAL `sealed_floor`, dispatch `watermark`) — must publish with
//! Release and observe with Acquire (AcqRel for RMWs). `Relaxed` on a
//! control flag orders nothing: the flag flip can become visible
//! before the writes it is supposed to publish.
//!
//! Pure statistics counters (the `GlobalStats` tallies, per-tenant
//! served/lost counts) are deliberately Relaxed — they carry no
//! ordering obligation, only totals, and the audit leaves them alone.
//! A `Relaxed` control-flag site that is actually safe (single-writer
//! same-thread re-read, for example) is allowlisted with the written
//! happens-before argument rather than silenced in code.

use crate::cfg::{all_stmts, FnDef};
use crate::source::{Tok, TokKind};
use crate::{Finding, Severity};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Flags gating cross-thread control decisions.
const CONTROL_FLAGS: &[&str] = &[
    "shutdown",
    "closed",
    "live",
    "live_slow",
    "epoch",
    "sealed_floor",
    "watermark",
];

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The atomic access governing the `Ordering::` token at `at`: the
/// nearest preceding `recv.method(` with an atomic method name.
fn governing_access(toks: &[Tok], at: usize) -> Option<(String, String)> {
    for j in (0..at).rev() {
        let t = &toks[j];
        if t.kind == TokKind::Ident
            && ATOMIC_METHODS.contains(&t.text.as_str())
            && j > 0
            && toks[j - 1].is(".")
            && toks.get(j + 1).is_some_and(|n| n.is("("))
        {
            let flag = toks
                .get(j.wrapping_sub(2))
                .filter(|f| f.kind == TokKind::Ident)
                .map(|f| f.text.clone())
                .unwrap_or_default();
            return Some((flag, t.text.clone()));
        }
    }
    None
}

pub struct AtomicsReport {
    pub findings: Vec<Finding>,
    /// Classification census: ordering name → use-site count.
    pub counts: BTreeMap<String, usize>,
}

pub fn analyze(files: &[(PathBuf, Vec<FnDef>)]) -> AtomicsReport {
    let mut findings = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();

    for (path, fns) in files {
        let file = path.to_string_lossy().to_string();
        for f in fns {
            let mut stmts = Vec::new();
            all_stmts(&f.nodes, &mut stmts);
            for s in stmts {
                let toks = &s.toks;
                for k in 0..toks.len() {
                    if !toks[k].is_ident("Ordering") || !toks.get(k + 1).is_some_and(|t| t.is("::"))
                    {
                        continue;
                    }
                    let Some(ord) = toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) else {
                        continue;
                    };
                    *counts.entry(ord.text.clone()).or_insert(0) += 1;
                    if ord.text != "Relaxed" {
                        continue;
                    }
                    let Some((flag, method)) = governing_access(toks, k) else {
                        continue;
                    };
                    if CONTROL_FLAGS.contains(&flag.as_str()) {
                        findings.push(Finding {
                            pass: "atomic-ordering",
                            severity: Severity::Error,
                            file: file.clone(),
                            line: ord.line,
                            col: ord.col,
                            text: format!("in fn {}", f.name),
                            message: format!(
                                "Relaxed ordering on control flag `{flag}` ({method}): \
                                 this flag gates a cross-thread control decision and \
                                 must publish with Release / observe with Acquire \
                                 (AcqRel for RMWs), or be allowlisted with a written \
                                 happens-before argument"
                            ),
                        });
                    }
                }
            }
        }
    }

    AtomicsReport { findings, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::functions;
    use crate::source::lex;

    fn run(src: &str) -> AtomicsReport {
        let fns = functions(&lex(src).0);
        analyze(&[(PathBuf::from("engine.rs"), fns)])
    }

    #[test]
    fn classifies_every_ordering_site() {
        let r = run(
            "fn f(a: &A) {\n a.shutdown.store(true, Ordering::Release);\n let v = a.shutdown.load(Ordering::Acquire);\n a.admitted.fetch_add(1, Ordering::Relaxed);\n}",
        );
        assert_eq!(r.counts.get("Release"), Some(&1));
        assert_eq!(r.counts.get("Acquire"), Some(&1));
        assert_eq!(r.counts.get("Relaxed"), Some(&1));
    }

    #[test]
    fn relaxed_on_a_shutdown_flag_is_flagged_with_span() {
        let r = run("fn f(a: &A) {\n a.shutdown.store(true, Ordering::Relaxed);\n}");
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 2);
        assert!(r.findings[0].message.contains("`shutdown`"));
        assert!(r.findings[0].message.contains("store"));
    }

    #[test]
    fn relaxed_on_a_pure_statistics_counter_is_fine() {
        let r = run("fn f(a: &A) {\n a.admitted.fetch_add(1, Ordering::Relaxed);\n a.served.fetch_add(1, Ordering::Relaxed);\n}");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn acquire_release_on_control_flags_is_clean() {
        let r = run(
            "fn f(a: &A) {\n a.live_slow.store(true, Ordering::Release);\n if a.epoch.load(Ordering::Acquire) > e { return; }\n a.live.fetch_and(false, Ordering::AcqRel);\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.counts.len(), 3);
    }

    #[test]
    fn compare_exchange_failure_ordering_is_audited_too() {
        let r = run(
            "fn f(a: &A) {\n a.epoch.compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Relaxed);\n}",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("`epoch`"));
    }
}
