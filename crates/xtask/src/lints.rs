//! Forbidden-pattern lints for the server crate, with an allowlist for
//! documented-invariant exceptions. Three rule sets:
//!
//! 1. **lock-unwrap** (src): `unwrap()`/`expect()` chained onto a lock
//!    acquisition. The repo's lock facade (parking_lot-style, and the
//!    `interleave` twins under `model-check`) returns guards directly
//!    with poison recovery, so a lock result unwrap is always a
//!    reintroduced std-style call that will panic-poison under contention.
//! 2. **panic-path** (src): `unwrap()`, `expect(…)`, `panic!`, `todo!`,
//!    `unimplemented!` in non-test engine code. The serving hot path must
//!    degrade (reject, count, reroute) rather than unwind — a panic in a
//!    worker or under a lock turns one bad request into a stuck engine.
//!    Documented invariants use `assert!` (which the lint ignores) or an
//!    allowlist entry explaining why the invariant holds.
//! 3. **wall-clock** (tests outside `tests/common`): `Instant::now`,
//!    `SystemTime`, `thread::sleep`. The test suites are deterministic
//!    replays over simulated time (`FQOS_TEST_SEED`); wall-clock reads
//!    make failures irreproducible.
//!
//! Pattern matching runs on *stripped* logical lines (so comments and
//! string contents can't trigger a lint), but allowlist needles and the
//! reported snippet use the original source text of the covered lines.
//! Every finding cross-references DESIGN.md "Concurrency invariants".

use crate::source::LogicalLine;
use crate::{Finding, Severity};
use std::path::Path;

/// One allowlist entry: a finding is suppressed when its file path ends
/// with `path_suffix` and the flagged source text (or, for the
/// pass-level findings, the diagnostic message) contains `needle`.
#[derive(Debug)]
pub struct AllowEntry {
    pub path_suffix: String,
    pub needle: String,
    pub reason: String,
    /// Optional `expires: PR<N>` bound: once the repo reaches PR N the
    /// entry fails the run instead of suppressing — temporary exceptions
    /// can't quietly become permanent.
    pub expires: Option<u32>,
    pub line: usize,
}

/// Parse the allowlist format, one entry per line, `#` comments:
///
/// ```text
/// path-suffix | needle | reason
/// path-suffix | needle | reason | expires: PR<N>
/// ```
///
/// The reason is mandatory — an exception nobody can explain is a bug.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if parts.len() < 3 || parts[..3].iter().any(|p| p.is_empty()) {
            return Err(format!(
                "allowlist line {}: expected `path-suffix | needle | reason [| expires: PR<N>]`, got `{line}`",
                i + 1
            ));
        }
        let expires = match parts.get(3) {
            None => None,
            Some(f) => {
                let n = f
                    .strip_prefix("expires:")
                    .map(str::trim)
                    .and_then(|p| p.strip_prefix("PR"))
                    .and_then(|n| n.trim().parse::<u32>().ok());
                match n {
                    Some(n) => Some(n),
                    None => {
                        return Err(format!(
                            "allowlist line {}: fourth field must be `expires: PR<N>`, got `{f}`",
                            i + 1
                        ))
                    }
                }
            }
        };
        out.push(AllowEntry {
            path_suffix: parts[0].to_string(),
            needle: parts[1].to_string(),
            reason: parts[2].to_string(),
            expires,
            line: i + 1,
        });
    }
    Ok(out)
}

/// Expired entries become findings: the exception's bound has passed and
/// the underlying issue must now be fixed (or the bound consciously
/// extended in review).
pub fn expired_entries(allow: &[AllowEntry], current_pr: u32) -> Vec<Finding> {
    allow
        .iter()
        .filter(|e| e.expires.is_some_and(|n| current_pr >= n))
        .map(|e| Finding {
            pass: "allowlist",
            severity: Severity::Error,
            file: "crates/xtask/allowlist.txt".to_string(),
            line: e.line,
            col: 0,
            text: format!("{} | {}", e.path_suffix, e.needle),
            message: format!(
                "allowlist entry expired at PR {} (repo is at PR {current_pr}): \
                 fix the underlying finding or consciously extend the bound \
                 — reason was: {}",
                e.expires.unwrap_or(0),
                e.reason
            ),
        })
        .collect()
}

pub fn is_allowed<'a>(
    allow: &'a [AllowEntry],
    file: &str,
    source_text: &str,
) -> Option<&'a AllowEntry> {
    allow
        .iter()
        .find(|e| file.ends_with(&e.path_suffix) && source_text.contains(&e.needle))
}

const LOCK_UNWRAP: &[&str] = &[
    ".lock().unwrap(",
    ".lock().expect(",
    ".try_lock().unwrap(",
    ".read().unwrap(",
    ".read().expect(",
    ".write().unwrap(",
    ".write().expect(",
];

const PANIC_PATH: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];

const WALL_CLOCK: &[&str] = &["Instant::now(", "SystemTime::now(", "thread::sleep("];

/// The original source text covered by a logical line: from its starting
/// physical line up to (exclusive) the next logical line's start.
fn covered_source(l: &LogicalLine, next_start: Option<usize>, original: &[String]) -> String {
    let from = l.line.saturating_sub(1);
    let to = next_start
        .map(|n| n.saturating_sub(1))
        .unwrap_or(original.len())
        .max(from + 1)
        .min(original.len());
    original[from..to]
        .iter()
        .map(|s| s.trim())
        .collect::<Vec<_>>()
        .join(" ")
}

#[allow(clippy::too_many_arguments)] // flat plumbing shared by all three rule sets
fn scan(
    path: &Path,
    logical: &[LogicalLine],
    original: &[String],
    needles: &[&str],
    pass: &'static str,
    what: &str,
    allow: &[AllowEntry],
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<String>,
) {
    let file = path.to_string_lossy().to_string();
    for (i, l) in logical.iter().enumerate() {
        for needle in needles {
            if l.text.contains(needle) {
                let source = covered_source(l, logical.get(i + 1).map(|n| n.line), original);
                if let Some(entry) = is_allowed(allow, &file, &source) {
                    suppressed.push(format!("{file}:{}: allowed: {}", l.line, entry.reason));
                } else {
                    findings.push(Finding {
                        pass,
                        severity: Severity::Error,
                        file: file.clone(),
                        line: l.line,
                        col: 0,
                        text: source,
                        message: format!(
                            "{what}: `{}` is forbidden here; handle the failure, use `assert!` \
                             for a documented invariant, or add an allowlist entry with a reason \
                             (see DESIGN.md \"Concurrency invariants\")",
                            needle.trim_end_matches('(')
                        ),
                    });
                }
                break; // one finding per logical line is enough
            }
        }
    }
}

/// Lint non-test `src` code: lock-result unwraps and panic paths.
pub fn lint_src(
    path: &Path,
    logical: &[LogicalLine],
    original: &[String],
    allow: &[AllowEntry],
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<String>,
) {
    scan(
        path,
        logical,
        original,
        LOCK_UNWRAP,
        "lint-lock-unwrap",
        "unwrap/expect on a lock result in the server hot path",
        allow,
        findings,
        suppressed,
    );
    // Don't double-report a lock-unwrap line under panic-path.
    let flagged: Vec<usize> = findings
        .iter()
        .filter(|f| f.file == path.to_string_lossy())
        .map(|f| f.line)
        .collect();
    let remaining: Vec<LogicalLine> = logical
        .iter()
        .filter(|l| !flagged.contains(&l.line))
        .cloned()
        .collect();
    scan(
        path,
        &remaining,
        original,
        PANIC_PATH,
        "lint-panic-path",
        "panic path in server code",
        allow,
        findings,
        suppressed,
    );
}

/// Lint deterministic test code (everything under `tests/` except
/// `tests/common`): wall-clock reads and sleeps.
pub fn lint_test(
    path: &Path,
    logical: &[LogicalLine],
    original: &[String],
    allow: &[AllowEntry],
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<String>,
) {
    scan(
        path,
        logical,
        original,
        WALL_CLOCK,
        "lint-wall-clock",
        "wall-clock in deterministic test code",
        allow,
        findings,
        suppressed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{logical_lines, strip};
    use std::path::PathBuf;

    fn prep(src: &str) -> (Vec<LogicalLine>, Vec<String>) {
        let original: Vec<String> = src.lines().map(str::to_string).collect();
        (logical_lines(&strip(src), 1), original)
    }

    #[test]
    fn flags_lock_unwrap_and_panic_paths() {
        let (logical, original) =
            prep("let g = m.lock().unwrap();\nlet v = x.take().expect(\"set\");");
        let mut findings = Vec::new();
        let mut supp = Vec::new();
        lint_src(
            &PathBuf::from("engine.rs"),
            &logical,
            &original,
            &[],
            &mut findings,
            &mut supp,
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("lock result"));
        assert!(findings[1].message.contains("panic path"));
    }

    #[test]
    fn multi_line_chains_are_still_caught() {
        let (logical, original) = prep("let g = m\n    .lock()\n    .unwrap();");
        let mut findings = Vec::new();
        let mut supp = Vec::new();
        lint_src(
            &PathBuf::from("engine.rs"),
            &logical,
            &original,
            &[],
            &mut findings,
            &mut supp,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let (logical, original) =
            prep("// m.lock().unwrap()\nlet s = \"panic!(boom)\";\nlet ok = 1;");
        let mut findings = Vec::new();
        let mut supp = Vec::new();
        lint_src(
            &PathBuf::from("engine.rs"),
            &logical,
            &original,
            &[],
            &mut findings,
            &mut supp,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allowlist_suppresses_with_reason() {
        let allow = parse_allowlist(
            "window.rs | expect(\"flow mode\") | slot state is mode-checked at reset\n",
        )
        .unwrap();
        let (logical, original) = prep("let f = s.flow.as_mut().expect(\"flow mode\");");
        let mut findings = Vec::new();
        let mut supp = Vec::new();
        lint_src(
            &PathBuf::from("crates/server/src/window.rs"),
            &logical,
            &original,
            &allow,
            &mut findings,
            &mut supp,
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(supp.len(), 1, "{supp:?}");
        assert!(supp[0].contains("mode-checked at reset"), "{supp:?}");
    }

    #[test]
    fn allowlist_rejects_entries_without_a_reason() {
        assert!(parse_allowlist("window.rs | expect(\"flow mode\")").is_err());
    }

    #[test]
    fn allowlist_parses_an_expires_bound() {
        let allow = parse_allowlist("window.rs | needle | reason | expires: PR12\n").unwrap();
        assert_eq!(allow[0].expires, Some(12));
        assert!(expired_entries(&allow, 11).is_empty());
        let expired = expired_entries(&allow, 12);
        assert_eq!(expired.len(), 1);
        assert!(expired[0].message.contains("expired at PR 12"));
    }

    #[test]
    fn allowlist_rejects_a_malformed_expires_field() {
        assert!(parse_allowlist("window.rs | needle | reason | expires: someday").is_err());
        assert!(parse_allowlist("window.rs | needle | reason | until: PR12").is_err());
    }

    #[test]
    fn entries_without_expires_never_expire() {
        let allow = parse_allowlist("window.rs | needle | reason\n").unwrap();
        assert!(expired_entries(&allow, 9999).is_empty());
    }

    #[test]
    fn wall_clock_in_tests_is_flagged() {
        let (logical, original) = prep("let t0 = Instant::now();");
        let mut findings = Vec::new();
        let mut supp = Vec::new();
        lint_test(
            &PathBuf::from("tests/stress.rs"),
            &logical,
            &original,
            &[],
            &mut findings,
            &mut supp,
        );
        assert_eq!(findings.len(), 1);
    }
}
