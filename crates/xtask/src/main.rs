//! Repo automation. One subcommand:
//!
//! ```text
//! cargo run -p xtask -- analyze [--root PATH] [--allowlist PATH] [--format text|json]
//! ```
//!
//! `analyze` is the static layer of the concurrency verification story
//! (the dynamic layer is `cargo test -p fqos-server --features
//! model-check`, see DESIGN.md "Concurrency invariants" → "Static
//! analysis passes"). It lexes every source file into spanned tokens
//! (`source::lex`), segments them into per-function statement trees and
//! basic-block CFGs (`cfg`), and runs the pass suite:
//!
//! - **lock-order**: extracts every lock-acquisition site in
//!   `crates/server/src` and `crates/cluster/src`, builds the
//!   may-hold-while-acquiring graph (including acquisitions reached
//!   through calls and guard-returning helpers, with receiver-hint call
//!   resolution) and fails on any edge violating the documented
//!   hierarchy, or on any cycle;
//! - **guard-blocking**: exclusive guards live across blocking
//!   operations (fsync, channel send/recv, join, sleep, condvar wait,
//!   subprocess I/O), directly or through calls;
//! - **ledger-balance**: path-sensitive conservation-law accounting —
//!   every path that increments an admission counter must settle
//!   exactly once or carry a `// ledger: defer(…)` annotation;
//! - **atomic-ordering**: classifies every `Ordering::*` site and flags
//!   `Relaxed` on cross-thread control flags;
//! - forbidden-pattern lints: `unwrap`/`expect` on lock results, panic
//!   paths in non-test server code, wall-clock reads in deterministic
//!   test code outside `tests/common`.
//!
//! Suppressions come from `crates/xtask/allowlist.txt`, where every
//! entry carries a mandatory reason and an optional `expires: PR<N>`
//! bound (expired entries fail the run). `--format json` emits the
//! full diagnostics with severity and span for CI artifacts.
//!
//! With `--root` pointing at a directory that is *not* a workspace (no
//! `crates/server/src`), every `.rs` file under it is analyzed with all
//! rule sets — that mode exists for the negative fixtures under
//! `crates/xtask/fixtures/`, which CI uses to prove each pass still
//! catches its seeded violation.

mod atomics;
mod cfg;
mod ledger;
mod lints;
mod locks;
mod source;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed or allowlisted; always fails the run.
    Error,
    /// Suspicious-by-construction (e.g. blocking under an exclusive
    /// guard can be intentional backpressure); still fails the run
    /// unless allowlisted, but marked for human judgement.
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One reported problem; `text` is the offending source snippet plus
/// any pass-specific context (enclosing function).
#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub text: String,
    pub message: String,
}

struct Outcome {
    findings: Vec<Finding>,
    suppressed: Vec<String>,
    files_scanned: usize,
    functions_analyzed: usize,
    distinct_edges: usize,
    ledger_sites: BTreeMap<String, usize>,
    ordering_counts: BTreeMap<String, usize>,
    ledger_truncated: Vec<String>,
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Highest PR number recorded in the repo's CHANGES.md (`PR <N>`
/// mentions). Roots without a CHANGES.md — the fixtures — are PR 0, so
/// `expires:` bounds never fire there.
fn current_pr(root: &Path) -> u32 {
    let Ok(text) = std::fs::read_to_string(root.join("CHANGES.md")) else {
        return 0;
    };
    let mut max = 0u32;
    let mut words = text.split_whitespace();
    while let Some(w) = words.next() {
        if w == "PR" {
            if let Some(next) = words.clone().next() {
                let digits: String = next.chars().take_while(char::is_ascii_digit).collect();
                if let Ok(n) = digits.parse::<u32>() {
                    max = max.max(n);
                }
            }
        }
    }
    max
}

fn analyze(root: &Path, allowlist_path: Option<&Path>) -> Result<Outcome, String> {
    let server_src = root.join("crates/server/src");
    let workspace_mode = server_src.is_dir();

    let allow = {
        let default = root.join("crates/xtask/allowlist.txt");
        let chosen = allowlist_path
            .map(Path::to_path_buf)
            .or_else(|| default.is_file().then_some(default));
        match chosen {
            Some(p) => {
                let text =
                    std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
                lints::parse_allowlist(&text)?
            }
            None => Vec::new(),
        }
    };
    // Expired allowlist entries are findings in their own right and are
    // themselves never suppressible.
    let expired = lints::expired_entries(&allow, current_pr(root));

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut files_scanned = 0;
    let mut units: Vec<(PathBuf, Vec<cfg::FnDef>, Vec<source::Annotation>)> = Vec::new();
    let mut originals: BTreeMap<String, Vec<String>> = BTreeMap::new();

    let src_files = {
        let mut v = Vec::new();
        if workspace_mode {
            walk(&server_src, &mut v)?;
            let cluster_src = root.join("crates/cluster/src");
            if cluster_src.is_dir() {
                walk(&cluster_src, &mut v)?;
            }
        } else {
            walk(root, &mut v)?;
        }
        v
    };
    for path in &src_files {
        files_scanned += 1;
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let original: Vec<String> = src.lines().map(str::to_string).collect();
        let mut stripped = source::strip(&src);
        source::blank_test_mods(&mut stripped);
        let logical = source::logical_lines(&stripped, 1);
        lints::lint_src(
            path,
            &logical,
            &original,
            &allow,
            &mut findings,
            &mut suppressed,
        );
        if !workspace_mode {
            lints::lint_test(
                path,
                &logical,
                &original,
                &allow,
                &mut findings,
                &mut suppressed,
            );
        }
        let (toks, anns) = source::lex(&src);
        units.push((path.clone(), cfg::functions(&toks), anns));
        originals.insert(path.to_string_lossy().to_string(), original);
    }

    if workspace_mode {
        for tests_dir in ["crates/server/tests", "crates/cluster/tests"] {
            let tests_dir = root.join(tests_dir);
            if !tests_dir.is_dir() {
                continue;
            }
            let mut test_files = Vec::new();
            walk(&tests_dir, &mut test_files)?;
            for path in test_files {
                if path.components().any(|c| c.as_os_str() == "common") {
                    continue; // tests/common owns the seed/rng plumbing
                }
                files_scanned += 1;
                let src = std::fs::read_to_string(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let original: Vec<String> = src.lines().map(str::to_string).collect();
                let stripped = source::strip(&src);
                let logical = source::logical_lines(&stripped, 1);
                lints::lint_test(
                    &path,
                    &logical,
                    &original,
                    &allow,
                    &mut findings,
                    &mut suppressed,
                );
            }
        }
    }

    let pairs: Vec<(PathBuf, Vec<cfg::FnDef>)> = units
        .iter()
        .map(|(p, f, _)| (p.clone(), f.clone()))
        .collect();

    let lock_report = locks::analyze(&pairs);
    let ledger_report = ledger::analyze(&units);
    let atomics_report = atomics::analyze(&pairs);

    let distinct_edges = {
        let set: std::collections::BTreeSet<(usize, usize)> =
            lock_report.edges.iter().map(|e| (e.from, e.to)).collect();
        set.len()
    };

    // Pass findings go through the same allowlist as the lints: the
    // needle matches against the offending source line or the message.
    for mut f in lock_report
        .findings
        .into_iter()
        .chain(ledger_report.findings)
        .chain(atomics_report.findings)
    {
        let src_line = originals
            .get(&f.file)
            .and_then(|lines| lines.get(f.line.wrapping_sub(1)))
            .map(|s| s.trim().to_string())
            .unwrap_or_default();
        if !src_line.is_empty() {
            f.text = if f.text.is_empty() {
                src_line.clone()
            } else {
                format!("{src_line} — {}", f.text)
            };
        }
        let haystack = format!("{src_line}\n{}", f.message);
        if let Some(entry) = lints::is_allowed(&allow, &f.file, &haystack) {
            suppressed.push(format!(
                "{}:{}: allowed ({}): {}",
                f.file, f.line, f.pass, entry.reason
            ));
        } else {
            findings.push(f);
        }
    }

    findings.extend(expired);
    findings.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));

    Ok(Outcome {
        findings,
        suppressed,
        files_scanned,
        functions_analyzed: lock_report.functions_analyzed,
        distinct_edges,
        ledger_sites: ledger_report.sites,
        ordering_counts: atomics_report.counts,
        ledger_truncated: ledger_report.truncated,
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str_map(map: &BTreeMap<String, usize>) -> String {
    let inner: Vec<String> = map
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Hand-rolled JSON (the workspace is dependency-free by policy).
fn render_json(outcome: &Outcome) -> String {
    let findings: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| {
            format!(
                "{{\"pass\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}",
                json_escape(f.pass),
                f.severity.as_str(),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.text),
                json_escape(&f.message),
            )
        })
        .collect();
    let suppressed: Vec<String> = outcome
        .suppressed
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    let truncated: Vec<String> = outcome
        .ledger_truncated
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!(
        "{{\"findings\":[{}],\"suppressed\":[{}],\"summary\":{{\
         \"files_scanned\":{},\"functions_analyzed\":{},\
         \"distinct_lock_edges\":{},\"ledger_sites\":{},\
         \"ordering_counts\":{},\"ledger_paths_truncated\":[{}]}}}}",
        findings.join(","),
        suppressed.join(","),
        outcome.files_scanned,
        outcome.functions_analyzed,
        outcome.distinct_edges,
        json_str_map(&outcome.ledger_sites),
        json_str_map(&outcome.ordering_counts),
        truncated.join(","),
    )
}

fn render_text(outcome: &Outcome) {
    for f in &outcome.findings {
        if f.line > 0 {
            eprintln!(
                "{}:{}:{}: {}: [{}] {}",
                f.file,
                f.line,
                f.col,
                f.severity.as_str(),
                f.pass,
                f.message
            );
        } else {
            eprintln!(
                "{}: {}: [{}] {}",
                f.file,
                f.severity.as_str(),
                f.pass,
                f.message
            );
        }
        if !f.text.is_empty() {
            eprintln!("    > {}", f.text);
        }
    }
    for s in &outcome.suppressed {
        eprintln!("{s}");
    }
    for t in &outcome.ledger_truncated {
        eprintln!("note: ledger path enumeration truncated in {t}");
    }
    let orderings: Vec<String> = outcome
        .ordering_counts
        .iter()
        .map(|(k, v)| format!("{k}:{v}"))
        .collect();
    eprintln!(
        "analyze: {} file(s), {} function(s), {} distinct lock-order edge(s), \
         {} ledger counter(s) tracked, orderings {{{}}}, {} finding(s), {} allowlisted",
        outcome.files_scanned,
        outcome.functions_analyzed,
        outcome.distinct_edges,
        outcome.ledger_sites.len(),
        orderings.join(", "),
        outcome.findings.len(),
        outcome.suppressed.len()
    );
}

fn usage() -> String {
    "usage: cargo run -p xtask -- analyze [--root PATH] [--allowlist PATH] [--format text|json]"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("analyze") {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--allowlist" if i + 1 < args.len() => {
                allowlist = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--format" if i + 1 < args.len() => {
                format = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if format != "text" && format != "json" {
        eprintln!("unknown format `{format}`\n{}", usage());
        return ExitCode::from(2);
    }
    // Default root: the workspace that contains this xtask.
    let root = root.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    match analyze(&root, allowlist.as_deref()) {
        Ok(outcome) => {
            if format == "json" {
                println!("{}", render_json(&outcome));
            } else {
                render_text(&outcome);
            }
            if outcome.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn the_real_workspace_is_clean() {
        let root = manifest_dir().join("../..").canonicalize().unwrap();
        let outcome = analyze(&root, None).unwrap();
        assert!(
            outcome.findings.is_empty(),
            "expected a clean tree, got: {:#?}",
            outcome.findings
        );
        // The engine's documented lock nesting must actually be observed —
        // an empty graph would mean the extractor went blind.
        assert!(
            outcome.distinct_edges >= 5,
            "only {} lock-order edges observed",
            outcome.distinct_edges
        );
        assert!(outcome.functions_analyzed > 50);
        // Every conservation-law counter must be seen mutating somewhere,
        // or the ledger pass went blind. (`lost` is the mutating name of
        // the fault-loss counter; `fault_lost` only exists in snapshots.)
        for counter in [
            "admitted",
            "served",
            "lost",
            "evacuation_lost",
            "write_settled",
            "write_lost",
        ] {
            assert!(
                outcome.ledger_sites.get(counter).copied().unwrap_or(0) > 0,
                "ledger pass saw no `{counter}` mutations: {:?}",
                outcome.ledger_sites
            );
        }
        // Same for the ordering census.
        assert!(
            outcome.ordering_counts.get("Acquire").copied().unwrap_or(0) > 0
                && outcome.ordering_counts.get("Release").copied().unwrap_or(0) > 0,
            "{:?}",
            outcome.ordering_counts
        );
        // The documented-invariant sites must be allowlisted, not
        // invisible: each suppression is reported with its reason.
        assert_eq!(
            outcome.suppressed.len(),
            SUPPRESSED_IN_WORKSPACE,
            "allowlist drifted from the source: {:#?}",
            outcome.suppressed
        );
    }

    /// Pinned so the allowlist can't silently grow or rot: update this
    /// count (and the allowlist) together, in review.
    const SUPPRESSED_IN_WORKSPACE: usize = 26;

    #[test]
    fn the_seeded_inversion_fixture_is_caught() {
        let root = manifest_dir().join("fixtures/inversion");
        let outcome = analyze(&root, None).unwrap();
        assert!(
            outcome
                .findings
                .iter()
                .any(|f| f.message.contains("lock-order inversion")),
            "fixture inversion not caught: {:#?}",
            outcome.findings
        );
    }

    #[test]
    fn the_panic_path_fixture_is_caught() {
        let root = manifest_dir().join("fixtures/panic_path");
        let outcome = analyze(&root, None).unwrap();
        let msgs: Vec<&str> = outcome
            .findings
            .iter()
            .map(|f| f.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("lock result")), "{msgs:#?}");
        assert!(msgs.iter().any(|m| m.contains("wall-clock")), "{msgs:#?}");
    }

    #[test]
    fn the_ledger_fixture_is_caught_at_the_admit_site() {
        let root = manifest_dir().join("fixtures/ledger_unbalanced");
        let outcome = analyze(&root, None).unwrap();
        let f = outcome
            .findings
            .iter()
            .find(|f| f.pass == "ledger-balance")
            .unwrap_or_else(|| panic!("ledger fixture not caught: {:#?}", outcome.findings));
        assert_eq!(f.severity, Severity::Error);
        assert!(f.message.contains("no settling counter"), "{f:?}");
        // Span check: the finding anchors to the fetch_add on `admitted`.
        assert!(f.text.contains("admitted.fetch_add"), "{f:?}");
    }

    #[test]
    fn the_guard_blocking_fixture_is_caught_at_the_fsync() {
        let root = manifest_dir().join("fixtures/guard_blocking");
        let outcome = analyze(&root, None).unwrap();
        let f = outcome
            .findings
            .iter()
            .find(|f| f.pass == "guard-blocking")
            .unwrap_or_else(|| panic!("blocking fixture not caught: {:#?}", outcome.findings));
        assert!(f.message.contains("fsync"), "{f:?}");
        assert!(f.text.contains("sync_all"), "{f:?}");
    }

    #[test]
    fn the_relaxed_flag_fixture_is_caught_with_its_span() {
        let root = manifest_dir().join("fixtures/relaxed_flag");
        let outcome = analyze(&root, None).unwrap();
        let f = outcome
            .findings
            .iter()
            .find(|f| f.pass == "atomic-ordering")
            .unwrap_or_else(|| panic!("relaxed-flag fixture not caught: {:#?}", outcome.findings));
        assert!(f.message.contains("`shutdown`"), "{f:?}");
        assert!(f.line > 0 && f.col > 0, "{f:?}");
    }

    #[test]
    fn the_clean_fixture_passes() {
        let root = manifest_dir().join("fixtures/clean");
        let outcome = analyze(&root, None).unwrap();
        assert!(outcome.findings.is_empty(), "{:#?}", outcome.findings);
    }

    #[test]
    fn json_output_is_well_formed_and_spanned() {
        let root = manifest_dir().join("fixtures/relaxed_flag");
        let outcome = analyze(&root, None).unwrap();
        let json = render_json(&outcome);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pass\":\"atomic-ordering\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"line\":"), "{json}");
        assert!(json.contains("\"ordering_counts\":"), "{json}");
        // No raw control characters or unescaped quotes in string values.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn current_pr_reads_the_changelog_high_water_mark() {
        let dir = std::env::temp_dir().join(format!("xtask-pr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("CHANGES.md"),
            "- PR 1: seed\n- PR 12: later\n- PR 3: other\n",
        )
        .unwrap();
        assert_eq!(current_pr(&dir), 12);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(current_pr(Path::new("/nonexistent")), 0);
    }
}
