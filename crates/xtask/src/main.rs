//! Repo automation. One subcommand so far:
//!
//! ```text
//! cargo run -p xtask -- analyze [--root PATH] [--allowlist PATH]
//! ```
//!
//! `analyze` is the static layer of the concurrency verification story
//! (the dynamic layer is `cargo test -p fqos-server --features
//! model-check`, see DESIGN.md "Concurrency invariants"):
//!
//! - extracts every lock-acquisition site in `crates/server/src` and
//!   `crates/cluster/src`, builds
//!   the lock-order graph (including acquisitions reached through calls
//!   and guard-returning helpers) and fails on any edge that violates the
//!   documented hierarchy, or on any cycle;
//! - runs forbidden-pattern lints: `unwrap`/`expect` on lock results,
//!   panic paths in non-test server code, and wall-clock reads in
//!   deterministic test code outside `tests/common`;
//! - suppressions come from `crates/xtask/allowlist.txt`, where every
//!   entry carries a mandatory reason.
//!
//! With `--root` pointing at a directory that is *not* a workspace (no
//! `crates/server/src`), every `.rs` file under it is analyzed with all
//! rule sets — that mode exists for the negative fixtures under
//! `crates/xtask/fixtures/`, which CI uses to prove the analyzer still
//! catches a seeded lock-order inversion.

mod lints;
mod locks;
mod source;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One reported problem; `text` is the offending source snippet.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub text: String,
    pub message: String,
}

struct Outcome {
    findings: Vec<Finding>,
    suppressed: Vec<String>,
    files_scanned: usize,
    functions_analyzed: usize,
    distinct_edges: usize,
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                walk(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

fn load_file(path: &Path) -> Result<(Vec<String>, Vec<String>), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let original: Vec<String> = src.lines().map(str::to_string).collect();
    let stripped = source::strip(&src);
    Ok((original, stripped))
}

fn analyze(root: &Path, allowlist_path: Option<&Path>) -> Result<Outcome, String> {
    let server_src = root.join("crates/server/src");
    let workspace_mode = server_src.is_dir();

    let allow = {
        let default = root.join("crates/xtask/allowlist.txt");
        let chosen = allowlist_path
            .map(Path::to_path_buf)
            .or_else(|| default.is_file().then_some(default));
        match chosen {
            Some(p) => {
                let text =
                    std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
                lints::parse_allowlist(&text)?
            }
            None => Vec::new(),
        }
    };

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut files_scanned = 0;
    let mut segmented: Vec<(PathBuf, Vec<source::Function>)> = Vec::new();

    let src_files = {
        let mut v = Vec::new();
        if workspace_mode {
            walk(&server_src, &mut v)?;
            let cluster_src = root.join("crates/cluster/src");
            if cluster_src.is_dir() {
                walk(&cluster_src, &mut v)?;
            }
        } else {
            walk(root, &mut v)?;
        }
        v
    };
    for path in &src_files {
        files_scanned += 1;
        let (original, mut stripped) = load_file(path)?;
        source::blank_test_mods(&mut stripped);
        let logical = source::logical_lines(&stripped, 1);
        lints::lint_src(
            path,
            &logical,
            &original,
            &allow,
            &mut findings,
            &mut suppressed,
        );
        if !workspace_mode {
            lints::lint_test(
                path,
                &logical,
                &original,
                &allow,
                &mut findings,
                &mut suppressed,
            );
        }
        segmented.push((path.clone(), source::functions(&stripped)));
    }

    if workspace_mode {
        for tests_dir in ["crates/server/tests", "crates/cluster/tests"] {
            let tests_dir = root.join(tests_dir);
            if !tests_dir.is_dir() {
                continue;
            }
            let mut test_files = Vec::new();
            walk(&tests_dir, &mut test_files)?;
            for path in test_files {
                if path.components().any(|c| c.as_os_str() == "common") {
                    continue; // tests/common owns the seed/rng plumbing
                }
                files_scanned += 1;
                let (original, stripped) = load_file(&path)?;
                let logical = source::logical_lines(&stripped, 1);
                lints::lint_test(
                    &path,
                    &logical,
                    &original,
                    &allow,
                    &mut findings,
                    &mut suppressed,
                );
            }
        }
    }

    let lock_report = locks::analyze(&segmented);
    let distinct_edges = {
        let set: std::collections::BTreeSet<(usize, usize)> =
            lock_report.edges.iter().map(|e| (e.from, e.to)).collect();
        set.len()
    };
    findings.extend(lock_report.findings);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    Ok(Outcome {
        findings,
        suppressed,
        files_scanned,
        functions_analyzed: lock_report.functions_analyzed,
        distinct_edges,
    })
}

fn usage() -> String {
    "usage: cargo run -p xtask -- analyze [--root PATH] [--allowlist PATH]".to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("analyze") {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--allowlist" if i + 1 < args.len() => {
                allowlist = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace that contains this xtask.
    let root = root.unwrap_or_else(|| {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    match analyze(&root, allowlist.as_deref()) {
        Ok(outcome) => {
            for f in &outcome.findings {
                if f.line > 0 {
                    eprintln!("{}:{}: {}", f.file, f.line, f.message);
                } else {
                    eprintln!("{}: {}", f.file, f.message);
                }
                if !f.text.is_empty() {
                    eprintln!("    > {}", f.text);
                }
            }
            for s in &outcome.suppressed {
                eprintln!("{s}");
            }
            eprintln!(
                "analyze: {} file(s), {} function(s), {} distinct lock-order edge(s), \
                 {} finding(s), {} allowlisted",
                outcome.files_scanned,
                outcome.functions_analyzed,
                outcome.distinct_edges,
                outcome.findings.len(),
                outcome.suppressed.len()
            );
            if outcome.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn the_real_workspace_is_clean() {
        let root = manifest_dir().join("../..").canonicalize().unwrap();
        let outcome = analyze(&root, None).unwrap();
        assert!(
            outcome.findings.is_empty(),
            "expected a clean tree, got: {:#?}",
            outcome.findings
        );
        // The engine's documented lock nesting must actually be observed —
        // an empty graph would mean the extractor went blind.
        assert!(
            outcome.distinct_edges >= 5,
            "only {} lock-order edges observed",
            outcome.distinct_edges
        );
        assert!(outcome.functions_analyzed > 50);
        // The documented-invariant sites (window.rs panic paths, the
        // chaos suite's drain poll) must be allowlisted, not invisible:
        // each suppression is reported with its reason.
        assert_eq!(
            outcome.suppressed.len(),
            6,
            "allowlist drifted from the source: {:#?}",
            outcome.suppressed
        );
    }

    #[test]
    fn the_seeded_inversion_fixture_is_caught() {
        let root = manifest_dir().join("fixtures/inversion");
        let outcome = analyze(&root, None).unwrap();
        assert!(
            outcome
                .findings
                .iter()
                .any(|f| f.message.contains("lock-order inversion")),
            "fixture inversion not caught: {:#?}",
            outcome.findings
        );
    }

    #[test]
    fn the_panic_path_fixture_is_caught() {
        let root = manifest_dir().join("fixtures/panic_path");
        let outcome = analyze(&root, None).unwrap();
        let msgs: Vec<&str> = outcome
            .findings
            .iter()
            .map(|f| f.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("lock result")), "{msgs:#?}");
        assert!(msgs.iter().any(|m| m.contains("wall-clock")), "{msgs:#?}");
    }

    #[test]
    fn the_clean_fixture_passes() {
        let root = manifest_dir().join("fixtures/clean");
        let outcome = analyze(&root, None).unwrap();
        assert!(outcome.findings.is_empty(), "{:#?}", outcome.findings);
    }
}
