//! Ledger-balance pass: path-sensitive conservation-law accounting.
//!
//! The workspace's correctness story rests on one conservation law
//! (DESIGN.md, metrics.rs):
//!
//! ```text
//! Σ served + Σ fault_lost + Σ hedges_cancelled
//!     + migrated_in_flight + evacuation_lost == Σ admitted_total
//! ```
//!
//! where `admitted_total = admitted + overflow`. Every admitted request
//! must eventually be settled exactly once. This pass enumerates every
//! mutation site of the law's counters and then, per function, walks
//! every acyclic entry→exit path of the CFG checking that a path which
//! increments an admission counter either
//!
//! - reaches exactly one settling counter *kind* on the same path
//!   (tenant-level and global counters of the same kind both move for
//!   one logical event, so kinds are counted, not raw increments), or
//! - carries a `// ledger: defer(<reason>)` annotation on or directly
//!   above the admitting statement — the documented way to say
//!   "settlement happens later, in <reason>" (the seal/drain pipeline
//!   settles admissions from an earlier submit call, for example).
//!
//! The WAL recovery pair `recovered_admissions`/`recovered_lost` must
//! be restored together on every path — restoring one side only is
//! precisely the crash-recovery bug class PR 7 guarded against.
//! `migrated_in_flight` is a cross-function transit counter (incremented
//! when an evacuation starts, drained when it lands), so it is
//! enumerated in the site census but exempt from the per-path rule.
//!
//! Path enumeration is capped; functions that hit the cap are reported
//! in `truncated` and surfaced in the summary — never silently
//! under-checked.

use crate::cfg::{Cfg, FnDef, Stmt};
use crate::source::{Annotation, Tok, TokKind};
use crate::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Counters that form `admitted_total`.
const ADMIT: &[&str] = &["admitted", "overflow"];

/// Settling counters, mapped to their logical kind. Tenant-level `lost`
/// and global `fault_lost` record the same settlement event.
const SETTLE: &[(&str, &str)] = &[
    ("served", "served"),
    ("lost", "lost"),
    ("fault_lost", "lost"),
    ("hedges_cancelled", "hedges_cancelled"),
    ("evacuation_lost", "evacuation_lost"),
    ("write_settled", "write_settled"),
    ("write_lost", "write_lost"),
];

/// Transit counter: moves admissions between arrays, settled elsewhere.
const TRANSIT: &[&str] = &["migrated_in_flight"];

/// WAL recovery pair: must move together.
const PAIR: (&str, &str) = ("recovered_admissions", "recovered_lost");

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Inc,
    Dec,
    Set,
}

#[derive(Debug, Clone)]
struct Mutation {
    counter: String,
    op: Op,
    line: usize,
    col: usize,
}

fn is_tracked(name: &str) -> bool {
    ADMIT.contains(&name)
        || SETTLE.iter().any(|(n, _)| *n == name)
        || TRANSIT.contains(&name)
        || name == PAIR.0
        || name == PAIR.1
}

/// Find the tracked-counter mutations in one statement. A mutation is
/// `counter.fetch_add(…)` / `fetch_sub` / `store`, or `counter += …` /
/// `-= …`. Reads (`.load(…)`) and struct-literal field inits
/// (`counter: …`) are not mutations.
fn mutations(toks: &[Tok]) -> Vec<Mutation> {
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !is_tracked(&t.text) {
            continue;
        }
        let op = match (toks.get(k + 1), toks.get(k + 2), toks.get(k + 3)) {
            (Some(dot), Some(m), Some(open)) if dot.is(".") && open.is("(") => {
                match m.text.as_str() {
                    "fetch_add" => Some(Op::Inc),
                    "fetch_sub" => Some(Op::Dec),
                    "store" => Some(Op::Set),
                    _ => None,
                }
            }
            (Some(assign), _, _) if assign.is("+=") => Some(Op::Inc),
            (Some(assign), _, _) if assign.is("-=") => Some(Op::Dec),
            _ => None,
        };
        if let Some(op) = op {
            out.push(Mutation {
                counter: t.text.clone(),
                op,
                line: t.line,
                col: t.col,
            });
        }
    }
    out
}

fn settle_kind(counter: &str) -> Option<&'static str> {
    SETTLE.iter().find(|(n, _)| *n == counter).map(|(_, k)| *k)
}

/// Does a `// ledger: defer(…)` annotation attach to this statement —
/// i.e. sit on the line directly above its first token, or on any line
/// the statement spans?
fn annotated(stmt: &Stmt, anns: &[Annotation]) -> bool {
    let first = stmt.toks.first().map_or(0, |t| t.line);
    let last = stmt.toks.last().map_or(first, |t| t.line);
    anns.iter()
        .any(|a| a.line + 1 >= first && a.line <= last && a.text.contains("defer("))
}

pub struct LedgerReport {
    pub findings: Vec<Finding>,
    /// Mutation-site census: counter name → number of sites.
    pub sites: BTreeMap<String, usize>,
    /// Functions whose path enumeration hit the cap (reported, never
    /// silently under-checked).
    pub truncated: Vec<String>,
}

const PATH_CAP: usize = 4096;

pub fn analyze(files: &[(PathBuf, Vec<FnDef>, Vec<Annotation>)]) -> LedgerReport {
    let mut findings = Vec::new();
    let mut sites: BTreeMap<String, usize> = BTreeMap::new();
    let mut truncated = Vec::new();

    for (path, fns, anns) in files {
        let file = path.to_string_lossy().to_string();
        for f in fns {
            let mut stmts = Vec::new();
            crate::cfg::all_stmts(&f.nodes, &mut stmts);
            let mut touches_law = false;
            for s in &stmts {
                for m in mutations(&s.toks) {
                    *sites.entry(m.counter.clone()).or_insert(0) += 1;
                    touches_law = true;
                }
            }
            if !touches_law {
                continue;
            }

            let cfg = Cfg::build(&f.nodes);
            let (paths, was_truncated) = cfg.paths(PATH_CAP);
            if was_truncated {
                truncated.push(format!(
                    "{file}: fn {} at line {} (cap {PATH_CAP})",
                    f.name, f.line
                ));
            }

            // Deduplicate: many paths share the same offending statement.
            let mut reported: BTreeSet<(usize, &'static str)> = BTreeSet::new();
            for path_stmts in &paths {
                let mut admit: Option<Mutation> = None;
                let mut admit_annotated = true;
                let mut kinds: BTreeMap<&'static str, Mutation> = BTreeMap::new();
                let mut pair_a = 0usize;
                let mut pair_b = 0usize;
                let mut pair_line = 0usize;
                for s in path_stmts {
                    for m in mutations(&s.toks) {
                        if ADMIT.contains(&m.counter.as_str()) && m.op == Op::Inc {
                            if !annotated(s, anns) {
                                admit_annotated = false;
                            }
                            admit.get_or_insert(m.clone());
                        } else if m.op == Op::Inc {
                            if let Some(k) = settle_kind(&m.counter) {
                                kinds.entry(k).or_insert_with(|| m.clone());
                            }
                        }
                        if m.counter == PAIR.0 {
                            pair_a += 1;
                            pair_line = m.line;
                        }
                        if m.counter == PAIR.1 {
                            pair_b += 1;
                            pair_line = m.line;
                        }
                    }
                }
                if (pair_a > 0) != (pair_b > 0) && reported.insert((pair_line, "pair")) {
                    findings.push(Finding {
                        pass: "ledger-balance",
                        severity: Severity::Error,
                        file: file.clone(),
                        line: pair_line,
                        col: 0,
                        text: format!("in fn {}", f.name),
                        message: format!(
                            "WAL recovery pair split: a path touches `{}` without `{}` \
                             (they must be restored together or the conservation audit \
                             diverges after crash recovery)",
                            if pair_a > 0 { PAIR.0 } else { PAIR.1 },
                            if pair_a > 0 { PAIR.1 } else { PAIR.0 },
                        ),
                    });
                }
                let Some(adm) = admit else { continue };
                if admit_annotated {
                    continue; // explicitly deferred
                }
                if kinds.is_empty() {
                    if reported.insert((adm.line, "leak")) {
                        findings.push(Finding {
                            pass: "ledger-balance",
                            severity: Severity::Error,
                            file: file.clone(),
                            line: adm.line,
                            col: adm.col,
                            text: format!("in fn {}", f.name),
                            message: format!(
                                "path increments `{}` (part of admitted_total) but reaches \
                                 no settling counter; settle on every path or annotate the \
                                 admission with `// ledger: defer(<where it settles>)`",
                                adm.counter
                            ),
                        });
                    }
                } else if kinds.len() > 1 {
                    let second = kinds.values().max_by_key(|m| m.line).unwrap();
                    if reported.insert((second.line, "double")) {
                        let names: Vec<&str> = kinds.keys().copied().collect();
                        findings.push(Finding {
                            pass: "ledger-balance",
                            severity: Severity::Error,
                            file: file.clone(),
                            line: second.line,
                            col: second.col,
                            text: format!("in fn {}", f.name),
                            message: format!(
                                "path settles a single admission more than once \
                                 ({}); each admitted request must settle exactly once",
                                names.join(" and ")
                            ),
                        });
                    }
                }
            }
        }
    }

    LedgerReport {
        findings,
        sites,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::functions;
    use crate::source::lex;

    fn run(src: &str) -> LedgerReport {
        let (toks, anns) = lex(src);
        let fns = functions(&toks);
        analyze(&[(PathBuf::from("engine.rs"), fns, anns)])
    }

    #[test]
    fn balanced_admit_and_settle_on_every_arm_is_clean() {
        let r = run(
            "impl E {\n fn go(&self, ok: bool) {\n  self.stats.admitted.fetch_add(1, O::Relaxed);\n  if ok {\n   self.stats.served.fetch_add(1, O::Relaxed);\n  } else {\n   self.stats.fault_lost.fetch_add(1, O::Relaxed);\n  }\n }\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.sites.get("admitted"), Some(&1));
        assert_eq!(r.sites.get("served"), Some(&1));
    }

    #[test]
    fn unbalanced_arm_is_flagged_at_the_admit_site() {
        let r = run(
            "impl E {\n fn go(&self, ok: bool) {\n  self.stats.admitted.fetch_add(1, O::Relaxed);\n  if ok {\n   self.stats.served.fetch_add(1, O::Relaxed);\n  }\n }\n}",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 3);
        assert!(r.findings[0].message.contains("no settling counter"));
    }

    #[test]
    fn deferral_annotation_silences_the_admit() {
        let r = run(
            "impl E {\n fn admit(&self) {\n  // ledger: defer(settled by seal/drain)\n  self.stats.admitted.fetch_add(1, O::Relaxed);\n }\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn non_defer_ledger_comment_does_not_silence() {
        let r = run(
            "impl E {\n fn admit(&self) {\n  // ledger: note to self\n  self.stats.admitted.fetch_add(1, O::Relaxed);\n }\n}",
        );
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn tenant_and_global_counters_of_one_kind_settle_once() {
        // fault_lost (global) + lost (tenant) are one logical settlement.
        let r = run(
            "impl E {\n fn go(&self) {\n  self.stats.admitted.fetch_add(1, O::Relaxed);\n  self.stats.fault_lost.fetch_add(1, O::Relaxed);\n  t.counters.lost.fetch_add(1, O::Relaxed);\n }\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn two_distinct_settle_kinds_on_one_path_is_a_double_settle() {
        let r = run(
            "impl E {\n fn go(&self) {\n  self.stats.admitted.fetch_add(1, O::Relaxed);\n  self.stats.served.fetch_add(1, O::Relaxed);\n  self.stats.hedges_cancelled.fetch_add(1, O::Relaxed);\n }\n}",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("more than once"));
        assert_eq!(r.findings[0].line, 5);
    }

    #[test]
    fn try_operator_leaks_an_unsettled_admission() {
        // The `?` early exit creates a path where the admission never
        // settles — the crash-recovery bug class, caught statically.
        let r = run(
            "impl E {\n fn go(&self) -> Result<(), E> {\n  self.stats.admitted.fetch_add(1, O::Relaxed);\n  self.wal.log_admit()?;\n  self.stats.served.fetch_add(1, O::Relaxed);\n  Ok(())\n }\n}",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn recovery_pair_split_is_flagged() {
        let r = run(
            "impl W {\n fn recover(&self, ok: bool) {\n  self.stats.recovered_admissions.store(n, O::Relaxed);\n  if ok {\n   self.stats.recovered_lost.store(m, O::Relaxed);\n  }\n }\n}",
        );
        assert!(
            r.findings.iter().any(|f| f.message.contains("pair split")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn transit_counter_is_censused_but_exempt_from_the_path_rule() {
        let r = run(
            "impl C {\n fn evacuate(&self) {\n  self.metrics.migrated_in_flight.fetch_add(n, O::Relaxed);\n }\n}",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.sites.get("migrated_in_flight"), Some(&1));
    }

    #[test]
    fn loads_and_field_inits_are_not_mutations() {
        let r = run(
            "impl E {\n fn snap(&self) -> S {\n  let a = self.stats.admitted.load(O::Relaxed);\n  S { admitted: a, served: 0 }\n }\n}",
        );
        assert!(r.findings.is_empty());
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }
}
