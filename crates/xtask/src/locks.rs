//! Lock-order analysis: extract lock-acquisition sites per function,
//! build the may-hold-while-acquiring graph (direct nesting plus calls
//! into functions that acquire), and check it against the documented
//! hierarchy — see DESIGN.md, section "Concurrency invariants".
//!
//! The pass is textual and deliberately over-approximate:
//!
//! - a `let`-bound guard is assumed held until its enclosing block closes
//!   or an explicit `drop(name)` appears;
//! - a guard acquired in a `for`/`while`/`if`/`match` head is held through
//!   that construct's block;
//! - any other acquisition is held to the end of its logical line;
//! - calls are resolved by bare name against every `fn` in the scanned
//!   tree (receiver types are unknown), and a function's acquisition set
//!   is the fixpoint over its callees.
//!
//! Name collisions between unrelated methods therefore merge their
//! acquisition sets; the only systematic artifact is a same-class
//! self-edge (e.g. `TenantRegistry::limit` calling `AppAdmission::headroom`
//! resolving onto `TenantRegistry::headroom`), so self-edges are skipped.
//! Same-lock re-entrancy is out of scope for a textual pass — the
//! model-check suite (`fqos-server` `tests/model.rs`) covers it by
//! executing the real lock protocol under every explored schedule.

use crate::source::Function;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The documented lock hierarchy, outermost first. An edge `A -> B`
/// (B acquired while A is held) is legal iff A appears strictly before B
/// here. Keep this table in sync with DESIGN.md "Concurrency invariants".
pub const HIERARCHY: &[(&str, &str)] = &[
    (
        "cluster.ctrl",
        "global control-loop state (fqos-cluster cluster.rs Shared::ctrl) \
         — held across a whole control tick, above every engine class",
    ),
    (
        "cluster.router",
        "tenant placement ring (fqos-cluster cluster.rs Shared::router)",
    ),
    (
        "cluster.arrays",
        "array slot table (fqos-cluster cluster.rs Shared::arrays, RwLock) \
         — kill/restore/add take the write lock, submit paths the read lock",
    ),
    (
        "cluster.health",
        "array liveness scorer (fqos-cluster cluster.rs Shared::liveness) \
         — probed under the slot table, below every cluster class",
    ),
    (
        "engine.quiesce",
        "submission quiesce gate (engine.rs Engine::quiesce, RwLock) \
         — every submit holds the read side for its full duration; halt \
         passes through the write side once after setting shutdown",
    ),
    (
        "engine.dispatch",
        "seal/dispatch state (engine.rs Engine::dispatch)",
    ),
    (
        "registry.admission",
        "aggregate S(M) admission (registry.rs TenantRegistry::admission)",
    ),
    (
        "engine.handles",
        "open submitter-handle list (engine.rs Engine::handles)",
    ),
    (
        "engine.stat_counters",
        "statistical admission counters (engine.rs StatState::counters)",
    ),
    (
        "window.slot",
        "per-window ring slot (window.rs WindowRing::slots[_])",
    ),
    (
        "registry.shard",
        "tenant lookup shard (registry.rs TenantRegistry::shards[_])",
    ),
    (
        "fault.inner",
        "fault-plane event log (fault.rs FaultPlane::inner)",
    ),
    (
        "fault.health",
        "device health scorer (fault.rs FaultPlane::health)",
    ),
    (
        "engine.hedge",
        "hedge frontiers (engine.rs Engine::hedge) — no lock other than \
         `engine.wal` may be acquired under it",
    ),
    (
        "engine.wal",
        "write-ahead log inner state (wal.rs Wal::wal) — leaf: no lock may \
         be acquired under it",
    ),
];

pub fn class_name(class: usize) -> &'static str {
    HIERARCHY[class].0
}

fn class_index(name: &str) -> usize {
    HIERARCHY
        .iter()
        .position(|(n, _)| *n == name)
        .expect("class name in HIERARCHY")
}

/// An acquisition site found on one logical line.
#[derive(Debug, Clone, Copy)]
struct Acquisition {
    pos: usize,
    class: usize,
}

/// Classify every lock acquisition on a stripped logical line.
fn acquisitions(file_name: &str, text: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let simple: &[(&str, &str)] = &[
        ("ctrl.lock(", "cluster.ctrl"),
        ("router.lock(", "cluster.router"),
        ("arrays.read()", "cluster.arrays"),
        ("arrays.write()", "cluster.arrays"),
        ("liveness.lock(", "cluster.health"),
        ("quiesce.read()", "engine.quiesce"),
        ("quiesce.write()", "engine.quiesce"),
        ("dispatch.lock(", "engine.dispatch"),
        ("admission.lock(", "registry.admission"),
        ("handles.lock(", "engine.handles"),
        ("counters.lock(", "engine.stat_counters"),
        ("inner.lock(", "fault.inner"),
        ("health.lock(", "fault.health"),
        ("hedge.lock(", "engine.hedge"),
        ("wal.lock(", "engine.wal"),
    ];
    for (needle, class) in simple {
        let mut from = 0;
        while let Some(p) = text[from..].find(needle) {
            out.push(Acquisition {
                pos: from + p,
                class: class_index(class),
            });
            from += p + needle.len();
        }
    }
    // Ring slot: `self.slot(window).lock()` or similar — a `.lock(` with a
    // `slot(` receiver earlier on the line.
    if let Some(sp) = text.find("slot(") {
        if let Some(lp) = text[sp..].find(".lock(") {
            out.push(Acquisition {
                pos: sp + lp,
                class: class_index("window.slot"),
            });
        }
    }
    // Registry shard: RwLock read/write, either on a `shard(...)` receiver
    // or anywhere inside registry.rs (the shard vec is its only RwLock).
    if file_name.ends_with("registry.rs") || text.contains("shard(") {
        for needle in [".read()", ".write()"] {
            let mut from = 0;
            while let Some(p) = text[from..].find(needle) {
                out.push(Acquisition {
                    pos: from + p,
                    class: class_index("registry.shard"),
                });
                from += p + needle.len();
            }
        }
    }
    out.sort_by_key(|a| a.pos);
    out.dedup_by_key(|a| a.pos);
    out
}

/// Does the text after an acquisition needle at `pos` reduce to a bare
/// guard value (its own call parens, then at most `;`)? Used to decide
/// whether a `let` binds the guard itself or a value derived from it.
fn guard_escapes_into_let(text: &str, pos: usize) -> bool {
    let open = match text[pos..].find('(') {
        Some(o) => pos + o,
        None => return false,
    };
    let mut depth = 0i32;
    for (k, c) in text[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    let rest = text[open + k + 1..].trim();
                    return rest.is_empty() || rest == ";";
                }
            }
            _ => {}
        }
    }
    false
}

fn let_binding_name(text: &str) -> Option<String> {
    let rest = text.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

fn is_block_head(text: &str) -> bool {
    ["for ", "while ", "if ", "match "]
        .iter()
        .any(|h| text.starts_with(h))
}

/// Find boundary-respecting call sites of `name` in `text`. Positions
/// overlapping `skip` (acquisition needle positions) are ignored.
fn call_sites(text: &str, name: &str, needles: &[String]) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for needle in needles {
        let mut from = 0;
        while let Some(p) = text[from..].find(needle.as_str()) {
            let at = from + p;
            // The needle itself anchors the boundary for qualified forms;
            // for the bare `name(` form check the preceding character so
            // `fleet_metrics(` does not alias onto `metrics`.
            let bare = needle.len() == name.len() + 1;
            let prev_ok = !bare
                || at == 0
                || (!bytes[at - 1].is_ascii_alphanumeric()
                    && bytes[at - 1] != b'_'
                    && bytes[at - 1] != b'.');
            if prev_ok {
                out.push(at + needle.len() - name.len() - 1);
            }
            from = at + needle.len();
        }
    }
    out
}

#[derive(Debug, Clone)]
struct HeldGuard {
    class: usize,
    /// Guard dies once brace depth drops below this value; `usize::MAX`
    /// marks a line-scoped temporary.
    dies_below: usize,
    name: Option<String>,
}

/// One recorded `A held while B acquired` observation.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub file: String,
    pub line: usize,
    pub function: String,
}

#[derive(Default)]
struct FnFacts {
    /// Classes acquired directly anywhere in the body.
    direct: BTreeSet<usize>,
    /// Names of crate functions called anywhere in the body.
    calls: BTreeSet<String>,
    /// Guard class this function returns, if its signature returns a guard.
    returns_guard: Option<usize>,
}

pub struct LockReport {
    pub edges: Vec<Edge>,
    pub findings: Vec<Finding>,
    pub functions_analyzed: usize,
}

/// Run the lock-order pass over segmented source files.
pub fn analyze(files: &[(std::path::PathBuf, Vec<Function>)]) -> LockReport {
    // Pass 1: collect per-name facts (merged across same-name functions —
    // receivers are unknown to a textual pass).
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    let all_names: BTreeSet<String> = files
        .iter()
        .flat_map(|(_, fns)| fns.iter().map(|f| f.name.clone()))
        .collect();
    // Ambiguous names need a qualified needle to avoid swallowing std
    // calls (HashMap::get etc.); everything else matches `.name(`/`name(`.
    // `new` is never resolved: every `Arc::new`/`Vec::new` would alias
    // onto crate constructors, and the one constructor that touches locks
    // (QosServer::new) only does so inside spawned worker closures, which
    // run on other threads and must not count as synchronous acquisition.
    // `submit` is likewise never resolved: the public
    // `SubmitterHandle::submit` has no intra-crate callers, so the only
    // `.submit(` sites in server src are the flashsim device twin inside
    // the worker (called under the hedge lock); resolving the name would
    // alias the device model onto the handle's full acquisition set and
    // fabricate `engine.hedge -> *` inversions.
    // `recover` is never resolved for the same reason: the pure
    // `FaultSchedule::recover` builder (called from `FaultSchedule::parse`)
    // would alias onto `QosServer::recover`, whose replay path touches
    // nearly every class; both are only ever called from top-level startup
    // code with no lock held.
    // `metrics` is never resolved because `QosServer::metrics` (engine
    // classes only, legitimately called under cluster locks by the control
    // loop and restore path) would alias onto `QosCluster::metrics`, which
    // takes the top-ranked cluster locks and is only ever called from
    // drivers with no lock held; the merged set would fabricate
    // `cluster.arrays -> cluster.ctrl` inversions at every engine snapshot.
    let needles_for = |name: &str| -> Vec<String> {
        match name {
            "new" | "submit" | "recover" | "metrics" => Vec::new(),
            "get" => vec!["registry.get(".to_string()],
            _ => vec![format!(".{name}("), format!("{name}(")],
        }
    };

    for (path, fns) in files {
        let file_name = path.to_string_lossy().to_string();
        for f in fns {
            let entry = facts.entry(f.name.clone()).or_default();
            if f.signature.contains("->")
                && ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"]
                    .iter()
                    .any(|g| {
                        f.signature
                            .split("->")
                            .nth(1)
                            .is_some_and(|r| r.contains(g))
                    })
            {
                // The guard class a guard-returning fn hands back is its
                // first direct acquisition.
                for l in &f.body {
                    if let Some(a) = acquisitions(&file_name, &l.text).first() {
                        entry.returns_guard = Some(a.class);
                        break;
                    }
                }
            }
            for l in &f.body {
                for a in acquisitions(&file_name, &l.text) {
                    entry.direct.insert(a.class);
                }
                for name in &all_names {
                    if name == &f.name {
                        // Skip trivial self-recursion matches; real mutual
                        // recursion through other names still resolves.
                        continue;
                    }
                    if !call_sites(&l.text, name, &needles_for(name)).is_empty() {
                        entry.calls.insert(name.clone());
                    }
                }
            }
        }
    }

    // Fixpoint: transitive acquisition sets per name.
    let mut acquires: BTreeMap<String, BTreeSet<usize>> = facts
        .iter()
        .map(|(n, f)| (n.clone(), f.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, f) in &facts {
            let mut merged = acquires[name].clone();
            for callee in &f.calls {
                if let Some(set) = acquires.get(callee) {
                    for c in set.clone() {
                        merged.insert(c);
                    }
                }
                if let Some(g) = facts.get(callee).and_then(|cf| cf.returns_guard) {
                    merged.insert(g);
                }
            }
            if merged.len() > acquires[name].len() {
                acquires.insert(name.clone(), merged);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: simulate held guards through each function body and record
    // edges for nested acquisitions and for calls made under a lock.
    let mut edges: Vec<Edge> = Vec::new();
    let mut functions_analyzed = 0;
    for (path, fns) in files {
        let file_name = path.to_string_lossy().to_string();
        for f in fns {
            functions_analyzed += 1;
            let mut held: Vec<HeldGuard> = Vec::new();
            for l in &f.body {
                held.retain(|g| g.dies_below == usize::MAX || l.depth_before >= g.dies_below);
                held.retain(|g| match &g.name {
                    Some(n) => !l.text.contains(&format!("drop({n})")),
                    None => true,
                });

                // Gather this line's events (acquisitions + calls) in
                // textual order.
                #[derive(Clone)]
                enum Event {
                    Acquire(usize),
                    Call(String),
                }
                let mut events: Vec<(usize, Event)> = acquisitions(&file_name, &l.text)
                    .into_iter()
                    .map(|a| (a.pos, Event::Acquire(a.class)))
                    .collect();
                let acq_positions: Vec<usize> = events.iter().map(|(p, _)| *p).collect();
                for name in &all_names {
                    if name == &f.name {
                        // Mirror pass 1: a same-name call site inside the
                        // function is treated as self-recursion, not as a
                        // call into the name's merged acquisition set
                        // (e.g. `router.add_array(..)` inside
                        // `QosCluster::add_array` must not alias the
                        // cluster method onto the ring helper).
                        continue;
                    }
                    for pos in call_sites(&l.text, name, &needles_for(name)) {
                        if !acq_positions.contains(&pos) {
                            events.push((pos, Event::Call(name.clone())));
                        }
                    }
                }
                events.sort_by_key(|(p, _)| *p);

                let let_name = let_binding_name(&l.text);
                let block_head = is_block_head(&l.text);
                let mut temps: Vec<usize> = Vec::new();
                let n_events = events.len();
                for (idx, (pos, ev)) in events.into_iter().enumerate() {
                    let held_now: Vec<usize> = held
                        .iter()
                        .map(|g| g.class)
                        .chain(temps.iter().copied())
                        .collect();
                    match ev {
                        Event::Acquire(class) => {
                            for h in &held_now {
                                if *h != class {
                                    edges.push(Edge {
                                        from: *h,
                                        to: class,
                                        file: file_name.clone(),
                                        line: l.line,
                                        function: f.name.clone(),
                                    });
                                }
                            }
                            let last = idx + 1 == n_events;
                            if let_name.is_some() && last && guard_escapes_into_let(&l.text, pos) {
                                held.push(HeldGuard {
                                    class,
                                    dies_below: l.depth_before,
                                    name: let_name.clone(),
                                });
                            } else if block_head {
                                held.push(HeldGuard {
                                    class,
                                    dies_below: l.depth_before + 1,
                                    name: None,
                                });
                            } else {
                                temps.push(class);
                            }
                        }
                        Event::Call(callee) => {
                            let mut callee_acquires: BTreeSet<usize> =
                                acquires.get(&callee).cloned().unwrap_or_default();
                            let returns = facts.get(&callee).and_then(|cf| cf.returns_guard);
                            if let Some(g) = returns {
                                callee_acquires.insert(g);
                            }
                            for c in &callee_acquires {
                                for h in &held_now {
                                    if h != c {
                                        edges.push(Edge {
                                            from: *h,
                                            to: *c,
                                            file: file_name.clone(),
                                            line: l.line,
                                            function: f.name.clone(),
                                        });
                                    }
                                }
                            }
                            // A guard-returning call behaves like an
                            // acquisition at the call site.
                            if let Some(g) = returns {
                                let last = idx + 1 == n_events;
                                if let_name.is_some()
                                    && last
                                    && guard_escapes_into_let(&l.text, pos)
                                {
                                    held.push(HeldGuard {
                                        class: g,
                                        dies_below: l.depth_before,
                                        name: let_name.clone(),
                                    });
                                } else if block_head {
                                    held.push(HeldGuard {
                                        class: g,
                                        dies_below: l.depth_before + 1,
                                        name: None,
                                    });
                                } else {
                                    temps.push(g);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Check the edge set: every edge must go strictly down the documented
    // hierarchy, and the graph must be acyclic.
    let mut findings = Vec::new();
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in &edges {
        if !seen.insert((e.from, e.to)) {
            continue;
        }
        if e.from >= e.to {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                text: format!("in fn {}", e.function),
                message: format!(
                    "lock-order inversion: `{}` acquired while `{}` is held \
                     (hierarchy rank {} must not precede rank {}); \
                     see DESIGN.md \"Concurrency invariants\" for the documented order",
                    class_name(e.to),
                    class_name(e.from),
                    e.from + 1,
                    e.to + 1,
                ),
            });
        }
    }
    // Cycle check over distinct edges (redundant once ranks hold, but it
    // localizes multi-edge cycles when the hierarchy table is stale).
    if let Some(cycle) = find_cycle(&seen) {
        let names: Vec<&str> = cycle.iter().map(|c| class_name(*c)).collect();
        findings.push(Finding {
            file: "(lock-order graph)".to_string(),
            line: 0,
            text: String::new(),
            message: format!(
                "lock-order cycle: {} -> (back to start); \
                 see DESIGN.md \"Concurrency invariants\"",
                names.join(" -> ")
            ),
        });
    }

    LockReport {
        edges,
        findings,
        functions_analyzed,
    }
}

fn find_cycle(edges: &BTreeSet<(usize, usize)>) -> Option<Vec<usize>> {
    let nodes: BTreeSet<usize> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    // Iterative DFS with colors; small graph, recursion depth bounded by
    // the hierarchy size.
    fn visit(
        n: usize,
        edges: &BTreeSet<(usize, usize)>,
        state: &mut BTreeMap<usize, u8>,
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state.insert(n, 1);
        path.push(n);
        for &(a, b) in edges.iter() {
            if a == n {
                match state.get(&b) {
                    Some(1) => {
                        let start = path.iter().position(|&x| x == b).unwrap_or(0);
                        return Some(path[start..].to_vec());
                    }
                    Some(2) => {}
                    _ => {
                        if let Some(c) = visit(b, edges, state, path) {
                            return Some(c);
                        }
                    }
                }
            }
        }
        path.pop();
        state.insert(n, 2);
        None
    }
    let mut state = BTreeMap::new();
    for &n in &nodes {
        if !state.contains_key(&n) {
            if let Some(c) = visit(n, edges, &mut state, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{functions, strip};
    use std::path::PathBuf;

    fn run(file: &str, src: &str) -> LockReport {
        let stripped = strip(src);
        let fns = functions(&stripped);
        analyze(&[(PathBuf::from(file), fns)])
    }

    #[test]
    fn classifies_the_engine_lock_sites() {
        let a = acquisitions("engine.rs", "let ds = self.dispatch.lock();");
        assert_eq!(a.len(), 1);
        assert_eq!(class_name(a[0].class), "engine.dispatch");
        let a = acquisitions("window.rs", "let mut s = self.slot(window).lock();");
        assert_eq!(class_name(a[0].class), "window.slot");
        let a = acquisitions("registry.rs", "self.shard(tenant).write().insert(t, r);");
        assert_eq!(class_name(a[0].class), "registry.shard");
    }

    #[test]
    fn nested_acquisition_in_hierarchy_order_passes() {
        let r = run(
            "engine.rs",
            "impl E {\n fn ok(&self) {\n  let ds = self.dispatch.lock();\n  let h = self.handles.lock();\n }\n}",
        );
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
        assert!(r.edges.iter().any(
            |e| class_name(e.from) == "engine.dispatch" && class_name(e.to) == "engine.handles"
        ));
    }

    #[test]
    fn inverted_acquisition_is_flagged() {
        let r = run(
            "engine.rs",
            "impl E {\n fn bad(&self) {\n  let i = self.fault.inner.lock();\n  let ds = self.dispatch.lock();\n }\n}",
        );
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn dropped_guard_creates_no_edge() {
        let r = run(
            "engine.rs",
            "impl E {\n fn ok(&self) {\n  let i = self.inner.lock();\n  drop(i);\n  let ds = self.dispatch.lock();\n }\n}",
        );
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
    }

    #[test]
    fn for_head_guard_dies_with_its_block() {
        // finish()-shape: iterate under handles, then lock dispatch after
        // the loop — must NOT produce a handles -> dispatch edge.
        let r = run(
            "engine.rs",
            "impl E {\n fn finish(&self) {\n  for h in self.handles.lock().iter() {\n   h.close();\n  }\n  let ds = self.dispatch.lock();\n }\n}",
        );
        assert!(
            !r.edges
                .iter()
                .any(|e| class_name(e.from) == "engine.handles"),
            "{:?}",
            r.edges
        );
    }

    #[test]
    fn inversion_through_a_call_is_flagged() {
        let src = "impl E {\n fn helper(&self) {\n  let ds = self.dispatch.lock();\n }\n fn bad(&self) {\n  let i = self.inner.lock();\n  self.helper();\n }\n}";
        let r = run("engine.rs", src);
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn guard_returning_fn_transfers_the_lock_to_its_caller() {
        let src = "impl R {\n fn locked(&self, w: u64) -> MutexGuard<'_, S> {\n  let s = self.slot(w).lock();\n  s\n }\n fn bad(&self) {\n  let s = self.locked(0);\n  let a = self.admission.lock();\n }\n}";
        let r = run("window.rs", src);
        // slot (rank 5) held while admission (rank 2) acquired: inversion.
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn derived_let_binding_is_not_a_held_guard() {
        // `let removed = shard.write().remove(..)` binds the removed value,
        // not the guard: no lock is held on the next line.
        let r = run(
            "registry.rs",
            "impl R {\n fn ok(&self) {\n  let removed = self.shard(t).write().remove(&t);\n  let a = self.admission.lock();\n }\n}",
        );
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
    }
}
