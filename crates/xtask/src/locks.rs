//! Lock-order and guard-across-blocking analysis over the per-function
//! statement trees (`cfg.rs`) — see DESIGN.md, "Concurrency invariants".
//!
//! The pass extracts every lock-acquisition site per function, builds
//! the may-hold-while-acquiring graph (direct nesting plus calls into
//! functions that acquire, as a call-graph fixpoint) and checks it
//! against the documented hierarchy. Guard lifetimes follow the tree:
//!
//! - a `let`-bound guard is held until its enclosing block ends or an
//!   explicit `drop(name)` appears;
//! - a guard acquired in an `if`/`match`/`while`/`for` head is held
//!   through that construct's branches;
//! - any other acquisition is a temporary held to the end of its
//!   statement;
//! - `spawn(move || …)` closure bodies are detached functions — guards
//!   held at the spawn site are not held inside them (cfg.rs cuts them
//!   out before this pass runs).
//!
//! Call resolution is owner-aware: `Type::name(…)` and `self.name(…)`
//! resolve against that type's methods only, and a receiver-hint table
//! maps well-known binding names (`router`, `registry`, `wal`, …) to
//! their types. Unhinted receivers and bare names still merge every
//! same-name function (over-approximate, the safe direction), except a
//! short documented never-resolve list where merging fabricated edges.
//!
//! The same guard simulation feeds **guard-across-blocking**: an
//! *exclusive* guard (mutex or write lock) live across a blocking
//! operation — fsync, channel send/recv, thread join, sleep, condvar
//! wait, subprocess I/O — stalls every contender for the duration, so
//! each such site must be restructured or allowlisted with a reason.
//! Shared (`read()`) guards are exempt: readers don't serialize
//! readers, and the submit path holds `engine.quiesce` read-side for
//! its whole duration by design.

use crate::cfg::{all_stmts, FnDef, Node, Stmt};
use crate::source::{Tok, TokKind};
use crate::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// The documented lock hierarchy, outermost first. An edge `A -> B`
/// (B acquired while A is held) is legal iff A appears strictly before B
/// here. Keep this table in sync with DESIGN.md "Concurrency invariants".
pub const HIERARCHY: &[(&str, &str)] = &[
    (
        "cluster.ctrl",
        "global control-loop state (fqos-cluster cluster.rs Shared::ctrl) \
         — held across a whole control tick, above every engine class",
    ),
    (
        "cluster.router",
        "tenant placement ring (fqos-cluster cluster.rs Shared::router)",
    ),
    (
        "cluster.arrays",
        "array slot table (fqos-cluster cluster.rs Shared::arrays, RwLock) \
         — kill/restore/add take the write lock, submit paths the read lock",
    ),
    (
        "cluster.health",
        "array liveness scorer (fqos-cluster cluster.rs Shared::liveness) \
         — probed under the slot table, below every cluster class",
    ),
    (
        "engine.quiesce",
        "submission quiesce gate (engine.rs Engine::quiesce, RwLock) \
         — every submit holds the read side for its full duration; halt \
         passes through the write side once after setting shutdown",
    ),
    (
        "engine.dispatch",
        "seal/dispatch state (engine.rs Engine::dispatch)",
    ),
    (
        "registry.admission",
        "aggregate S(M) admission (registry.rs TenantRegistry::admission)",
    ),
    (
        "engine.handles",
        "open submitter-handle list (engine.rs Engine::handles)",
    ),
    (
        "engine.stat_counters",
        "statistical admission counters (engine.rs StatState::counters)",
    ),
    (
        "window.slot",
        "per-window ring slot (window.rs WindowRing::slots[_])",
    ),
    (
        "registry.shard",
        "tenant lookup shard (registry.rs TenantRegistry::shards[_])",
    ),
    (
        "fault.inner",
        "fault-plane event log (fault.rs FaultPlane::inner)",
    ),
    (
        "fault.health",
        "device health scorer (fault.rs FaultPlane::health)",
    ),
    (
        "engine.hedge",
        "hedge frontiers (engine.rs Engine::hedge) — no lock other than \
         `engine.wal` may be acquired under it",
    ),
    (
        "engine.wal",
        "write-ahead log inner state (wal.rs Wal::wal) — leaf: no lock may \
         be acquired under it",
    ),
];

pub fn class_name(class: usize) -> &'static str {
    HIERARCHY[class].0
}

fn class_index(name: &str) -> usize {
    HIERARCHY
        .iter()
        .position(|(n, _)| *n == name)
        .expect("class name in HIERARCHY")
}

/// Binding names whose receiver type is known. A hinted receiver
/// resolves *only* against the named types — the collision killer: a
/// method name shared with an unrelated type no longer merges their
/// acquisition sets through hinted call sites.
const RECEIVER_HINTS: &[(&str, &[&str])] = &[
    ("router", &["Router"]),
    ("registry", &["TenantRegistry"]),
    ("wal", &["Wal", "WalInner", "WalState"]),
    ("fault", &["FaultPlane"]),
    ("engine", &["Engine"]),
    ("liveness", &["HealthPlane"]),
    ("health", &["HealthBoard", "HealthPlane"]),
    ("ring", &["WindowRing"]),
    ("cluster", &["QosCluster"]),
    ("server", &["QosServer"]),
    ("srv", &["QosServer"]),
    ("handle", &["ClusterHandle", "SubmitterHandle"]),
    ("inner", &["PlaneInner", "WalInner"]),
];

/// Names never resolved through bare/unhinted forms: merging them
/// across same-name functions fabricated edges. `new` would alias every
/// `Arc::new`/`Vec::new` onto crate constructors; `submit` the flashsim
/// device twin onto `SubmitterHandle::submit`; `recover` the pure
/// `FaultSchedule::recover` builder onto `QosServer::recover`; `metrics`
/// `QosServer::metrics` onto `QosCluster::metrics`; `get` every
/// `HashMap::get`; `drop` would alias `std::mem::drop` (every
/// guard-release site) onto `Drop` impls, which are never invoked as a
/// bare call. Qualified (`Type::name`), `self.`, and hinted forms still
/// resolve these precisely.
const NEVER_RESOLVE_BARE: &[&str] = &["new", "submit", "recover", "metrics", "get", "drop"];

/// One lock-acquisition event inside a statement.
#[derive(Debug, Clone, Copy)]
pub struct Acq {
    pub class: usize,
    pub exclusive: bool,
    /// Token index of the acquiring method (`lock`/`read`/`write`).
    pub idx: usize,
    pub line: usize,
    pub col: usize,
}

fn matching(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Classify every lock acquisition in a statement's tokens.
pub fn acquisitions(file_name: &str, toks: &[Tok]) -> Vec<Acq> {
    // (field, method, class, exclusive)
    const TABLE: &[(&str, &str, &str, bool)] = &[
        ("ctrl", "lock", "cluster.ctrl", true),
        ("router", "lock", "cluster.router", true),
        ("arrays", "read", "cluster.arrays", false),
        ("arrays", "write", "cluster.arrays", true),
        ("liveness", "lock", "cluster.health", true),
        ("quiesce", "read", "engine.quiesce", false),
        ("quiesce", "write", "engine.quiesce", true),
        ("dispatch", "lock", "engine.dispatch", true),
        ("admission", "lock", "registry.admission", true),
        ("handles", "lock", "engine.handles", true),
        ("counters", "lock", "engine.stat_counters", true),
        ("inner", "lock", "fault.inner", true),
        ("health", "lock", "fault.health", true),
        ("hedge", "lock", "engine.hedge", true),
        ("wal", "lock", "engine.wal", true),
    ];
    let mut out: Vec<Acq> = Vec::new();
    let mut push = |class: &str, exclusive: bool, idx: usize, t: &Tok| {
        if !out.iter().any(|a| a.idx == idx) {
            out.push(Acq {
                class: class_index(class),
                exclusive,
                idx,
                line: t.line,
                col: t.col,
            });
        }
    };
    let has_shard_recv = toks
        .iter()
        .zip(toks.iter().skip(1))
        .any(|(a, b)| a.is_ident("shard") && b.is("("));
    for k in 0..toks.len() {
        let field = &toks[k];
        if field.kind != TokKind::Ident {
            continue;
        }
        if let (Some(dot), Some(method), Some(open)) =
            (toks.get(k + 1), toks.get(k + 2), toks.get(k + 3))
        {
            if dot.is(".") && method.kind == TokKind::Ident && open.is("(") {
                for (f, m, class, excl) in TABLE {
                    if field.text == *f && method.text == *m {
                        // RwLock read()/write() take no arguments; requiring
                        // the empty call keeps `file.read(buf)` out.
                        let rw = *m != "lock";
                        if !rw || toks.get(k + 4).is_some_and(|t| t.is(")")) {
                            push(class, *excl, k + 2, method);
                        }
                    }
                }
            }
        }
        // Registry shard RwLock: any bare `.read()`/`.write()` inside
        // registry.rs (the shard vec is its only RwLock), or in a
        // statement that calls `shard(…)`. The receiver is usually a call
        // expression (`self.shard(t).write()`), so this matches on the
        // method token rather than a field identifier; acquisitions the
        // field table already claimed are deduplicated by token index.
        if (file_name.ends_with("registry.rs") || has_shard_recv)
            && (field.is_ident("read") || field.is_ident("write"))
            && k > 0
            && toks[k - 1].is(".")
            && toks.get(k + 1).is_some_and(|t| t.is("("))
            && toks.get(k + 2).is_some_and(|t| t.is(")"))
        {
            push("registry.shard", field.is_ident("write"), k, field);
        }
        // Ring slot: `slot(…).lock()`.
        if field.is_ident("slot") && toks.get(k + 1).is_some_and(|t| t.is("(")) {
            let close = matching(toks, k + 1);
            if toks.get(close + 1).is_some_and(|t| t.is("."))
                && toks.get(close + 2).is_some_and(|t| t.is_ident("lock"))
                && toks.get(close + 3).is_some_and(|t| t.is("("))
            {
                let m = &toks[close + 2];
                push("window.slot", true, close + 2, m);
            }
        }
    }
    out.sort_by_key(|a| a.idx);
    out
}

/// One blocking operation inside a statement.
#[derive(Debug, Clone)]
struct BlockingOp {
    idx: usize,
    what: String,
    line: usize,
    col: usize,
}

/// Direct blocking primitives: fsync, channel send/recv, thread join,
/// sleep, condvar wait, subprocess I/O.
fn blocking_ops(toks: &[Tok]) -> Vec<BlockingOp> {
    let mut out = Vec::new();
    let has_command = toks.iter().any(|t| t.is_ident("Command"));
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        let method_call =
            k > 0 && toks[k - 1].is(".") && toks.get(k + 1).is_some_and(|n| n.is("("));
        let bare_call = toks.get(k + 1).is_some_and(|n| n.is("("));
        let what: Option<&str> = match t.text.as_str() {
            "sync_all" | "sync_data" if method_call => Some("fsync"),
            "send" | "recv" | "recv_timeout" | "recv_deadline" if method_call => {
                Some("channel send/recv")
            }
            "join" if method_call && toks.get(k + 2).is_some_and(|n| n.is(")")) => {
                Some("thread join")
            }
            "sleep" if bare_call => Some("sleep"),
            "wait" | "wait_timeout" if method_call => Some("blocking wait"),
            "output" | "status" if method_call && has_command => Some("subprocess I/O"),
            _ => None,
        };
        if let Some(w) = what {
            out.push(BlockingOp {
                idx: k,
                what: w.to_string(),
                line: t.line,
                col: t.col,
            });
        }
    }
    out
}

/// How a call site names its target.
#[derive(Debug, Clone)]
enum CallForm {
    /// `Type::name(…)`
    Qualified(String),
    /// `recv.name(…)`
    Receiver(String),
    /// `expr….name(…)` — receiver unknowable
    Chain,
    /// `name(…)`
    Bare,
}

#[derive(Debug, Clone)]
struct CallSite {
    name: String,
    form: CallForm,
    idx: usize,
}

/// Extract call sites (ident directly followed by `(`), skipping token
/// indexes already claimed by acquisition events.
fn call_sites(toks: &[Tok], skip: &BTreeSet<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for k in 0..toks.len() {
        if toks[k].kind != TokKind::Ident
            || !toks.get(k + 1).is_some_and(|n| n.is("("))
            || skip.contains(&k)
        {
            continue;
        }
        let form = if k >= 2 && toks[k - 1].is("::") && toks[k - 2].kind == TokKind::Ident {
            CallForm::Qualified(toks[k - 2].text.clone())
        } else if k >= 1 && toks[k - 1].is(".") {
            match toks.get(k.wrapping_sub(2)) {
                Some(r) if r.kind == TokKind::Ident => CallForm::Receiver(r.text.clone()),
                _ => CallForm::Chain,
            }
        } else {
            CallForm::Bare
        };
        out.push(CallSite {
            name: toks[k].text.clone(),
            form,
            idx: k,
        });
    }
    out
}

fn fn_key(owner: Option<&str>, name: &str) -> String {
    match owner {
        Some(o) => format!("{o}::{name}"),
        None => name.to_string(),
    }
}

#[derive(Default, Clone)]
struct Facts {
    /// Classes acquired directly anywhere in the body.
    direct: BTreeSet<usize>,
    /// Keys of crate functions called anywhere in the body.
    calls: BTreeSet<String>,
    /// Guard this function returns, if its signature returns one.
    returns_guard: Option<(usize, bool)>,
    /// Contains a direct blocking primitive.
    blocks_directly: Option<String>,
}

#[derive(Debug, Clone)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub function: String,
}

pub struct LockReport {
    pub edges: Vec<Edge>,
    pub findings: Vec<Finding>,
    pub functions_analyzed: usize,
}

struct Resolver {
    /// fn name -> [(owner, key)]
    by_name: BTreeMap<String, Vec<(Option<String>, String)>>,
}

impl Resolver {
    fn resolve(&self, site: &CallSite, cur_owner: Option<&str>, caller_name: &str) -> Vec<String> {
        if site.name == caller_name {
            // Same-name call sites inside a function are treated as
            // self-recursion, never as a call into the name's merged set
            // (e.g. `router.add_array(..)` inside `QosCluster::add_array`).
            return Vec::new();
        }
        let Some(defs) = self.by_name.get(&site.name) else {
            return Vec::new();
        };
        let only_owner = |owners: &[&str]| -> Vec<String> {
            defs.iter()
                .filter(|(o, _)| o.as_deref().is_some_and(|o| owners.contains(&o)))
                .map(|(_, k)| k.clone())
                .collect()
        };
        match &site.form {
            CallForm::Qualified(t) => only_owner(&[t.as_str()]),
            CallForm::Receiver(r) if r == "self" => {
                let own: Vec<String> = cur_owner.map(|o| only_owner(&[o])).unwrap_or_default();
                if !own.is_empty() {
                    own
                } else {
                    self.merged(&site.name, defs)
                }
            }
            CallForm::Receiver(r) => {
                if let Some((_, owners)) = RECEIVER_HINTS.iter().find(|(n, _)| n == r) {
                    only_owner(owners)
                } else {
                    self.merged(&site.name, defs)
                }
            }
            CallForm::Chain | CallForm::Bare => self.merged(&site.name, defs),
        }
    }

    fn merged(&self, name: &str, defs: &[(Option<String>, String)]) -> Vec<String> {
        if NEVER_RESOLVE_BARE.contains(&name) {
            return Vec::new();
        }
        defs.iter().map(|(_, k)| k.clone()).collect()
    }
}

/// Run the lock-order and guard-across-blocking passes.
pub fn analyze(files: &[(std::path::PathBuf, Vec<FnDef>)]) -> LockReport {
    // Function table.
    let mut by_name: BTreeMap<String, Vec<(Option<String>, String)>> = BTreeMap::new();
    for (_, fns) in files {
        for f in fns {
            let key = fn_key(f.owner.as_deref(), &f.name);
            let entry = by_name.entry(f.name.clone()).or_default();
            if !entry.iter().any(|(_, k)| *k == key) {
                entry.push((f.owner.clone(), key));
            }
        }
    }
    let resolver = Resolver { by_name };

    // Pass 1: per-function facts.
    let mut facts: BTreeMap<String, Facts> = BTreeMap::new();
    for (path, fns) in files {
        let file_name = path.to_string_lossy().to_string();
        for f in fns {
            let key = fn_key(f.owner.as_deref(), &f.name);
            let entry = facts.entry(key).or_default();
            let mut stmts = Vec::new();
            all_stmts(&f.nodes, &mut stmts);
            if returns_guard_sig(&f.sig).is_some() {
                for s in &stmts {
                    if let Some(a) = acquisitions(&file_name, &s.toks).first() {
                        entry.returns_guard = Some((a.class, a.exclusive));
                        break;
                    }
                }
            }
            for s in &stmts {
                let acqs = acquisitions(&file_name, &s.toks);
                let skip: BTreeSet<usize> = acqs.iter().map(|a| a.idx).collect();
                for a in &acqs {
                    entry.direct.insert(a.class);
                }
                if entry.blocks_directly.is_none() {
                    if let Some(b) = blocking_ops(&s.toks).first() {
                        entry.blocks_directly = Some(b.what.clone());
                    }
                }
                for site in call_sites(&s.toks, &skip) {
                    for key in resolver.resolve(&site, f.owner.as_deref(), &f.name) {
                        entry.calls.insert(key);
                    }
                }
            }
        }
    }

    // Fixpoint: transitive acquisition sets and blocking reachability.
    let mut acquires: BTreeMap<String, BTreeSet<usize>> = facts
        .iter()
        .map(|(n, f)| (n.clone(), f.direct.clone()))
        .collect();
    let mut blocks: BTreeMap<String, Option<String>> = facts
        .iter()
        .map(|(n, f)| (n.clone(), f.blocks_directly.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, f) in &facts {
            let mut merged = acquires[name].clone();
            let mut blocked = blocks[name].clone();
            for callee in &f.calls {
                if let Some(set) = acquires.get(callee) {
                    for c in set.clone() {
                        merged.insert(c);
                    }
                }
                if let Some(cf) = facts.get(callee) {
                    if let Some((g, _)) = cf.returns_guard {
                        merged.insert(g);
                    }
                }
                if blocked.is_none() {
                    if let Some(Some(why)) = blocks.get(callee) {
                        blocked = Some(format!("{why}, via `{callee}`"));
                    }
                }
            }
            if merged.len() > acquires[name].len() {
                acquires.insert(name.clone(), merged);
                changed = true;
            }
            if blocked.is_some() && blocks[name].is_none() {
                blocks.insert(name.clone(), blocked);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: guard simulation over each function's statement tree.
    let mut sim = Sim {
        resolver: &resolver,
        facts: &facts,
        acquires: &acquires,
        blocks: &blocks,
        edges: Vec::new(),
        findings: Vec::new(),
        file: String::new(),
        fn_name: String::new(),
        owner: None,
        functions_analyzed: 0,
    };
    for (path, fns) in files {
        sim.file = path.to_string_lossy().to_string();
        for f in fns {
            sim.functions_analyzed += 1;
            sim.fn_name = f.name.clone();
            sim.owner = f.owner.clone();
            sim.walk_nodes(&f.nodes, &[]);
        }
    }

    // Check the edge set: every edge must go strictly down the documented
    // hierarchy, and the graph must be acyclic.
    let mut findings = sim.findings;
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in &sim.edges {
        if !seen.insert((e.from, e.to)) {
            continue;
        }
        if e.from >= e.to {
            findings.push(Finding {
                pass: "lock-order",
                severity: Severity::Error,
                file: e.file.clone(),
                line: e.line,
                col: e.col,
                text: format!("in fn {}", e.function),
                message: format!(
                    "lock-order inversion: `{}` acquired while `{}` is held \
                     (hierarchy rank {} must not precede rank {}); \
                     see DESIGN.md \"Concurrency invariants\" for the documented order",
                    class_name(e.to),
                    class_name(e.from),
                    e.from + 1,
                    e.to + 1,
                ),
            });
        }
    }
    if let Some(cycle) = find_cycle(&seen) {
        let names: Vec<&str> = cycle.iter().map(|c| class_name(*c)).collect();
        findings.push(Finding {
            pass: "lock-order",
            severity: Severity::Error,
            file: "(lock-order graph)".to_string(),
            line: 0,
            col: 0,
            text: String::new(),
            message: format!(
                "lock-order cycle: {} -> (back to start); \
                 see DESIGN.md \"Concurrency invariants\"",
                names.join(" -> ")
            ),
        });
    }

    LockReport {
        edges: sim.edges,
        findings,
        functions_analyzed: sim.functions_analyzed,
    }
}

fn returns_guard_sig(sig: &[Tok]) -> Option<bool> {
    let arrow = sig.iter().position(|t| t.is("->"))?;
    for t in &sig[arrow..] {
        match t.text.as_str() {
            "MutexGuard" | "RwLockWriteGuard" => return Some(true),
            "RwLockReadGuard" => return Some(false),
            _ => {}
        }
    }
    None
}

#[derive(Debug, Clone)]
struct Held {
    class: usize,
    exclusive: bool,
    name: Option<String>,
}

struct Sim<'a> {
    resolver: &'a Resolver,
    facts: &'a BTreeMap<String, Facts>,
    acquires: &'a BTreeMap<String, BTreeSet<usize>>,
    blocks: &'a BTreeMap<String, Option<String>>,
    edges: Vec<Edge>,
    findings: Vec<Finding>,
    file: String,
    fn_name: String,
    owner: Option<String>,
    functions_analyzed: usize,
}

/// Does the guard value produced at `open` (a `(` token) escape into the
/// statement's `let` binding — i.e. is nothing but `;`/`?` left after
/// its call parens close? `let v = g.lock().field;` binds a *derived*
/// value, not the guard.
fn escapes_into_let(toks: &[Tok], open: usize) -> bool {
    let close = matching(toks, open);
    toks[close.saturating_add(1).min(toks.len())..]
        .iter()
        .all(|t| t.is(";") || t.is("?"))
}

fn let_binding_name(toks: &[Tok]) -> Option<String> {
    if !toks.first().is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut k = 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    toks.get(k)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

enum Ev {
    Acq(Acq),
    Call {
        idx: usize,
        keys: Vec<String>,
        line: usize,
        col: usize,
    },
    Blocking(BlockingOp),
}

impl Ev {
    fn idx(&self) -> usize {
        match self {
            Ev::Acq(a) => a.idx,
            Ev::Call { idx, .. } => *idx,
            Ev::Blocking(b) => b.idx,
        }
    }
}

impl Sim<'_> {
    fn walk_nodes(&mut self, nodes: &[Node], held0: &[Held]) {
        let mut held: Vec<Held> = held0.to_vec();
        for n in nodes {
            match n {
                Node::Stmt(s) => self.do_stmt(s, &mut held, false),
                Node::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let mut hc = held.clone();
                    self.do_stmt(cond, &mut hc, true);
                    self.walk_nodes(then_branch, &hc);
                    if let Some(e) = else_branch {
                        self.walk_nodes(e, &hc);
                    }
                }
                Node::Match { head, arms } => {
                    let mut hc = held.clone();
                    self.do_stmt(head, &mut hc, true);
                    for a in arms {
                        self.walk_nodes(&a.body, &hc);
                    }
                }
                Node::Loop { head, body } => {
                    let mut hc = held.clone();
                    self.do_stmt(head, &mut hc, true);
                    self.walk_nodes(body, &hc);
                }
                Node::Block(b) | Node::Else(b) => self.walk_nodes(b, &held),
            }
        }
    }

    fn do_stmt(&mut self, s: &Stmt, held: &mut Vec<Held>, head_mode: bool) {
        // Explicit `drop(name)` releases the named guard.
        for k in 0..s.toks.len() {
            if s.toks[k].is_ident("drop")
                && s.toks.get(k + 1).is_some_and(|t| t.is("("))
                && s.toks.get(k + 3).is_some_and(|t| t.is(")"))
            {
                if let Some(n) = s.toks.get(k + 2).filter(|t| t.kind == TokKind::Ident) {
                    held.retain(|g| g.name.as_deref() != Some(&n.text));
                }
            }
        }

        let acqs = acquisitions(&self.file, &s.toks);
        let skip: BTreeSet<usize> = acqs.iter().map(|a| a.idx).collect();
        let mut events: Vec<Ev> = acqs.into_iter().map(Ev::Acq).collect();
        for b in blocking_ops(&s.toks) {
            events.push(Ev::Blocking(b));
        }
        for site in call_sites(&s.toks, &skip) {
            let keys = self
                .resolver
                .resolve(&site, self.owner.as_deref(), &self.fn_name);
            if !keys.is_empty() {
                let t = &s.toks[site.idx];
                events.push(Ev::Call {
                    idx: site.idx,
                    keys,
                    line: t.line,
                    col: t.col,
                });
            }
        }
        events.sort_by_key(Ev::idx);

        let let_name = let_binding_name(&s.toks);
        let mut temps: Vec<Held> = Vec::new();
        let n_events = events.len();
        for (i, ev) in events.into_iter().enumerate() {
            let last = i + 1 == n_events;
            match ev {
                Ev::Acq(a) => {
                    self.record_edges(a.class, held, &temps, a.line, a.col);
                    self.bind_guard(
                        Held {
                            class: a.class,
                            exclusive: a.exclusive,
                            name: let_name.clone(),
                        },
                        s,
                        a.idx + 1,
                        last,
                        head_mode,
                        held,
                        &mut temps,
                    );
                }
                Ev::Call {
                    idx,
                    keys,
                    line,
                    col,
                } => {
                    let mut callee_classes: BTreeSet<usize> = BTreeSet::new();
                    let mut returns: Option<(usize, bool)> = None;
                    let mut blocking_why: Option<(String, String)> = None;
                    for key in &keys {
                        if let Some(set) = self.acquires.get(key) {
                            callee_classes.extend(set.iter().copied());
                        }
                        if let Some(cf) = self.facts.get(key) {
                            if returns.is_none() {
                                returns = cf.returns_guard;
                            }
                        }
                        if blocking_why.is_none() {
                            if let Some(Some(why)) = self.blocks.get(key) {
                                blocking_why = Some((key.clone(), why.clone()));
                            }
                        }
                    }
                    for c in &callee_classes {
                        self.record_edges(*c, held, &temps, line, col);
                    }
                    if let Some((key, why)) = blocking_why {
                        self.check_blocking(held, &temps, line, col, &format!("{why} in `{key}`"));
                    }
                    if let Some((g, excl)) = returns {
                        self.bind_guard(
                            Held {
                                class: g,
                                exclusive: excl,
                                name: let_name.clone(),
                            },
                            s,
                            idx + 1,
                            last,
                            head_mode,
                            held,
                            &mut temps,
                        );
                    }
                }
                Ev::Blocking(b) => {
                    self.check_blocking(held, &temps, b.line, b.col, &b.what);
                }
            }
        }
    }

    fn record_edges(&mut self, to: usize, held: &[Held], temps: &[Held], line: usize, col: usize) {
        for g in held.iter().chain(temps.iter()) {
            if g.class != to {
                self.edges.push(Edge {
                    from: g.class,
                    to,
                    file: self.file.clone(),
                    line,
                    col,
                    function: self.fn_name.clone(),
                });
            }
        }
    }

    fn check_blocking(
        &mut self,
        held: &[Held],
        temps: &[Held],
        line: usize,
        col: usize,
        what: &str,
    ) {
        if let Some(g) = held.iter().chain(temps.iter()).find(|g| g.exclusive) {
            self.findings.push(Finding {
                pass: "guard-blocking",
                severity: Severity::Warning,
                file: self.file.clone(),
                line,
                col,
                text: format!("in fn {}", self.fn_name),
                message: format!(
                    "`{}` (exclusive) guard held across blocking op ({what}); \
                     every contender stalls for the full duration — move the \
                     operation outside the critical section or allowlist it \
                     with a reason (DESIGN.md \"Static analysis passes\")",
                    class_name(g.class),
                ),
            });
        }
    }

    #[allow(clippy::too_many_arguments)] // flat event-loop plumbing
    fn bind_guard(
        &mut self,
        g: Held,
        s: &Stmt,
        open: usize,
        last: bool,
        head_mode: bool,
        held: &mut Vec<Held>,
        temps: &mut Vec<Held>,
    ) {
        if head_mode {
            held.push(Held { name: None, ..g });
        } else if g.name.is_some() && last && escapes_into_let(&s.toks, open) {
            held.push(g);
        } else {
            temps.push(Held { name: None, ..g });
        }
    }
}

fn find_cycle(edges: &BTreeSet<(usize, usize)>) -> Option<Vec<usize>> {
    let nodes: BTreeSet<usize> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    fn visit(
        n: usize,
        edges: &BTreeSet<(usize, usize)>,
        state: &mut BTreeMap<usize, u8>,
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state.insert(n, 1);
        path.push(n);
        for &(a, b) in edges.iter() {
            if a == n {
                match state.get(&b) {
                    Some(1) => {
                        let start = path.iter().position(|&x| x == b).unwrap_or(0);
                        return Some(path[start..].to_vec());
                    }
                    Some(2) => {}
                    _ => {
                        if let Some(c) = visit(b, edges, state, path) {
                            return Some(c);
                        }
                    }
                }
            }
        }
        path.pop();
        state.insert(n, 2);
        None
    }
    let mut state = BTreeMap::new();
    for &n in &nodes {
        if !state.contains_key(&n) {
            if let Some(c) = visit(n, edges, &mut state, &mut Vec::new()) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::functions;
    use crate::source::lex;
    use std::path::PathBuf;

    fn run(file: &str, src: &str) -> LockReport {
        let (toks, _) = lex(src);
        let fns = functions(&toks);
        analyze(&[(PathBuf::from(file), fns)])
    }

    fn acq(file: &str, stmt: &str) -> Vec<Acq> {
        acquisitions(file, &lex(stmt).0)
    }

    #[test]
    fn classifies_the_engine_lock_sites() {
        let a = acq("engine.rs", "let ds = self.dispatch.lock();");
        assert_eq!(a.len(), 1);
        assert_eq!(class_name(a[0].class), "engine.dispatch");
        assert!(a[0].exclusive);
        let a = acq("window.rs", "let mut s = self.slot(window).lock();");
        assert_eq!(class_name(a[0].class), "window.slot");
        let a = acq("registry.rs", "self.shard(tenant).write().insert(t, r);");
        assert_eq!(class_name(a[0].class), "registry.shard");
        assert!(a[0].exclusive);
        let a = acq("cluster.rs", "let arrays = self.shared.arrays.read();");
        assert_eq!(class_name(a[0].class), "cluster.arrays");
        assert!(!a[0].exclusive, "read side is shared");
    }

    #[test]
    fn spanned_acquisitions_carry_line_and_col() {
        let a = acq("engine.rs", "let a = 1;\nlet ds = self.dispatch.lock();");
        assert_eq!(a[0].line, 2);
        assert_eq!(a[0].col, 24);
    }

    #[test]
    fn nested_acquisition_in_hierarchy_order_passes() {
        let r = run(
            "engine.rs",
            "impl E {\n fn ok(&self) {\n  let ds = self.dispatch.lock();\n  let h = self.handles.lock();\n }\n}",
        );
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
        assert!(r.edges.iter().any(
            |e| class_name(e.from) == "engine.dispatch" && class_name(e.to) == "engine.handles"
        ));
    }

    #[test]
    fn inverted_acquisition_is_flagged() {
        let r = run(
            "engine.rs",
            "impl E {\n fn bad(&self) {\n  let i = self.fault.inner.lock();\n  let ds = self.dispatch.lock();\n }\n}",
        );
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn dropped_guard_creates_no_edge() {
        let r = run(
            "engine.rs",
            "impl E {\n fn ok(&self) {\n  let i = self.inner.lock();\n  drop(i);\n  let ds = self.dispatch.lock();\n }\n}",
        );
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
    }

    #[test]
    fn for_head_guard_dies_with_its_block() {
        // finish()-shape: iterate under handles, then lock dispatch after
        // the loop — must NOT produce a handles -> dispatch edge.
        let r = run(
            "engine.rs",
            "impl E {\n fn finish(&self) {\n  for h in self.handles.lock().iter() {\n   h.close();\n  }\n  let ds = self.dispatch.lock();\n }\n}",
        );
        assert!(
            !r.edges
                .iter()
                .any(|e| class_name(e.from) == "engine.handles"),
            "{:?}",
            r.edges
        );
    }

    #[test]
    fn branch_guard_dies_at_branch_end() {
        // A guard let-bound inside a then-branch must not be held after
        // the `if` — the statement tree gives this for free.
        let r = run(
            "engine.rs",
            "impl E {\n fn ok(&self, c: bool) {\n  if c {\n   let i = self.inner.lock();\n   i.log();\n  }\n  let ds = self.dispatch.lock();\n }\n}",
        );
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
    }

    #[test]
    fn match_head_guard_is_held_through_every_arm() {
        let r = run(
            "engine.rs",
            "impl E {\n fn bad(&self, x: u8) {\n  match self.inner.lock().kind(x) {\n   0 => { let ds = self.dispatch.lock(); }\n   _ => {}\n  }\n }\n}",
        );
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn inversion_through_a_call_is_flagged() {
        let src = "impl E {\n fn helper(&self) {\n  let ds = self.dispatch.lock();\n }\n fn bad(&self) {\n  let i = self.inner.lock();\n  self.helper();\n }\n}";
        let r = run("engine.rs", src);
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn mutually_recursive_helpers_reach_a_fixpoint() {
        // a -> b -> a cycle in the call graph; b acquires dispatch. The
        // fixpoint must terminate and propagate dispatch into a, so
        // holding fault.inner while calling a is an inversion.
        let src = "impl E {\n fn a(&self, n: u64) {\n  if n > 0 { self.b(n - 1); }\n }\n fn b(&self, n: u64) {\n  let ds = self.dispatch.lock();\n  drop(ds);\n  self.a(n);\n }\n fn bad(&self) {\n  let i = self.inner.lock();\n  self.a(3);\n }\n}";
        let r = run("engine.rs", src);
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "mutual recursion lost acquisitions: {:?}",
            r.findings
        );
    }

    #[test]
    fn guard_returning_fn_transfers_the_lock_to_its_caller() {
        let src = "impl R {\n fn locked(&self, w: u64) -> MutexGuard<'_, S> {\n  let s = self.slot(w).lock();\n  s\n }\n fn bad(&self) {\n  let s = self.locked(0);\n  let a = self.admission.lock();\n }\n}";
        let r = run("window.rs", src);
        // window.slot held while registry.admission acquired: inversion.
        assert!(
            r.findings.iter().any(|f| f.message.contains("inversion")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn derived_let_binding_is_not_a_held_guard() {
        // `let removed = shard.write().remove(..)` binds the removed value,
        // not the guard: no lock is held on the next line.
        let r = run(
            "registry.rs",
            "impl R {\n fn ok(&self) {\n  let removed = self.shard(t).write().remove(&t);\n  let a = self.admission.lock();\n }\n}",
        );
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
    }

    #[test]
    fn receiver_hints_disambiguate_method_name_collisions() {
        // Both Router::probe and Wal::probe exist; Wal::probe takes the
        // wal lock. A hinted `router.probe()` call under cluster.router
        // must NOT pick up Wal::probe's acquisition (which would be fine
        // here) nor merge sets; an unhinted receiver still merges.
        let src = "impl Router {\n fn probe(&self) { self.tick(); }\n}\nimpl Wal {\n fn probe(&self) {\n  let w = self.wal.lock();\n }\n}\nimpl C {\n fn hinted(&self) {\n  let mut router = self.shared.router.lock();\n  router.probe();\n }\n}";
        let r = run("cluster.rs", src);
        // Hinted resolution: no router -> wal edge.
        assert!(
            !r.edges
                .iter()
                .any(|e| class_name(e.from) == "cluster.router"
                    && class_name(e.to) == "engine.wal"),
            "hint failed, sets merged: {:?}",
            r.edges
        );
    }

    #[test]
    fn spawned_closure_does_not_inherit_the_spawn_sites_guards() {
        let src = "impl E {\n fn start(&self) {\n  let h = self.handles.lock();\n  thread::spawn(move || {\n   let ds = self.dispatch.lock();\n  });\n }\n}";
        let r = run("engine.rs", src);
        // dispatch is acquired on the new thread: no handles -> dispatch
        // edge (which would be an inversion, rank 8 before rank 6).
        assert!(
            r.findings.is_empty()
                && !r
                    .edges
                    .iter()
                    .any(|e| class_name(e.from) == "engine.handles"),
            "{:?} / {:?}",
            r.findings,
            r.edges
        );
    }

    // --- guard-across-blocking ---

    #[test]
    fn exclusive_guard_across_fsync_is_flagged() {
        let r = run(
            "wal.rs",
            "impl W {\n fn bad(&self) {\n  let w = self.wal.lock();\n  self.file.sync_all();\n }\n}",
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.pass == "guard-blocking" && f.message.contains("fsync")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn shared_read_guard_across_blocking_is_exempt() {
        let r = run(
            "engine.rs",
            "impl E {\n fn ok(&self) {\n  let q = self.quiesce.read();\n  self.rx.recv();\n }\n}",
        );
        assert!(
            !r.findings.iter().any(|f| f.pass == "guard-blocking"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn blocking_reached_through_a_call_is_flagged_transitively() {
        let src = "impl W {\n fn flush_inner(&self) {\n  self.file.sync_all();\n }\n fn bad(&self) {\n  let ds = self.dispatch.lock();\n  self.flush_inner();\n }\n}";
        let r = run("engine.rs", src);
        assert!(
            r.findings
                .iter()
                .any(|f| f.pass == "guard-blocking" && f.message.contains("flush_inner")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn blocking_after_guard_dropped_is_clean() {
        let r = run(
            "engine.rs",
            "impl E {\n fn ok(&self) {\n  let ds = self.dispatch.lock();\n  drop(ds);\n  self.rx.recv();\n }\n}",
        );
        assert!(
            !r.findings.iter().any(|f| f.pass == "guard-blocking"),
            "{:?}",
            r.findings
        );
    }
}
