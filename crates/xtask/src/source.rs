//! A minimal, line-oriented Rust source model for the `analyze` pass.
//!
//! This is deliberately **not** a parser: the analyzer only needs four
//! things from a source file, all robust to the subset of Rust this repo
//! writes —
//!
//! 1. comments and string contents blanked out (so needles never match
//!    inside them),
//! 2. `#[cfg(test)]` modules blanked out (test code has its own rules),
//! 3. physical lines folded into *logical* lines (a continuation line
//!    starting with `.`, `?`, `&&`, `||` or a string literal belongs to
//!    the statement above — multi-line method chains and wrapped macro
//!    messages are the common cases),
//! 4. function boundaries with their signatures, so acquisitions can be
//!    attributed to a function and a call graph can be built.

/// One logical line: `text` is the folded, stripped statement text and
/// `line` the 1-based physical line it starts on.
#[derive(Debug, Clone)]
pub struct LogicalLine {
    pub text: String,
    pub line: usize,
    /// Brace depth *before* this logical line is processed.
    pub depth_before: usize,
    /// Net brace delta across the logical line.
    pub delta: i32,
}

/// One `fn` item: signature text (joined up to the opening brace) and
/// its body as logical lines.
#[derive(Debug)]
pub struct Function {
    pub name: String,
    pub signature: String,
    pub body: Vec<LogicalLine>,
}

/// Strip `//` and nested `/* */` comments and blank out string/char
/// literal *contents* (delimiters stay, so the line shape survives).
/// Operates on the whole file so multi-line literals are handled.
pub fn strip(source: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut kept = String::with_capacity(chars.len());
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => break, // rest is a line comment
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        i += 2;
                    }
                    '"' => {
                        kept.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Raw string r"..." or r#"..."# (any hash count).
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            kept.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                        } else {
                            kept.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a lifetime is `'ident`
                        // with no closing quote right after the ident char.
                        if next == Some('\\') {
                            kept.push('\'');
                            state = State::Char;
                            i += 2;
                        } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                            kept.push_str("''");
                            i += 3;
                        } else {
                            kept.push('\''); // lifetime
                            i += 1;
                        }
                    }
                    _ => {
                        kept.push(c);
                        i += 1;
                    }
                },
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        kept.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        i += 1; // blank the content
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            kept.push('"');
                            state = State::Code;
                            i += 1 + hashes as usize;
                        } else {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
                State::Char => {
                    if c == '\'' {
                        kept.push('\'');
                        state = State::Code;
                    }
                    i += 1;
                }
            }
        }
        out.push(kept);
    }
    out
}

/// Blank out every `#[cfg(test)] mod … { … }` block in stripped lines.
pub fn blank_test_mods(lines: &mut [String]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            // Find the opening brace of the item that follows, then blank
            // through its matching close.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].clone().chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].clear();
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

fn brace_delta(s: &str) -> i32 {
    s.chars().fold(0, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    })
}

fn is_continuation(trimmed: &str) -> bool {
    // A line opening with a string literal is a wrapped macro/call
    // argument (`panic!(\n    "message…"`), never a fresh statement.
    trimmed.starts_with('.')
        || trimmed.starts_with('?')
        || trimmed.starts_with("&&")
        || trimmed.starts_with("||")
        || trimmed.starts_with('"')
}

/// Fold stripped physical lines into logical lines with depth tracking.
pub fn logical_lines(stripped: &[String], first_line: usize) -> Vec<LogicalLine> {
    let mut out: Vec<LogicalLine> = Vec::new();
    let mut depth = 0usize;
    for (k, raw) in stripped.iter().enumerate() {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let delta = brace_delta(raw);
        if is_continuation(trimmed) {
            if let Some(last) = out.last_mut() {
                last.text.push_str(trimmed);
                last.delta += delta;
                depth = (depth as i32 + delta).max(0) as usize;
                continue;
            }
        }
        out.push(LogicalLine {
            text: trimmed.to_string(),
            line: first_line + k,
            depth_before: depth,
            delta,
        });
        depth = (depth as i32 + delta).max(0) as usize;
    }
    out
}

fn fn_name_at(line: &str) -> Option<(usize, String)> {
    // Find a `fn ` token at a word boundary and return (offset, name).
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("fn ") {
        let at = from + pos;
        let boundary = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        if boundary {
            let rest = &line[at + 3..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some((at, name));
            }
        }
        from = at + 3;
    }
    None
}

/// Segment a stripped file (test mods already blanked) into functions.
/// Nested items attribute their lines to the innermost enclosing `fn`;
/// closures stay part of the enclosing function, which is exactly what
/// the lock analysis wants.
pub fn functions(stripped: &[String]) -> Vec<Function> {
    struct Open {
        func: Function,
        body_depth: i32,
        raw_body: Vec<String>,
        body_first_line: usize,
    }
    let mut out = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut depth = 0i32;
    let mut pending: Option<(String, String, usize)> = None; // (name, sig, line)

    // Close every open fn whose body the current depth has exited.
    fn pop_closed(stack: &mut Vec<Open>, out: &mut Vec<Function>, depth: i32) {
        while let Some(open) = stack.last() {
            if depth < open.body_depth {
                let mut done = stack.pop().expect("stack non-empty");
                done.func.body = logical_lines(&done.raw_body, done.body_first_line);
                out.push(done.func);
            } else {
                break;
            }
        }
    }

    // Open a fn whose declaration line contains its body brace. The body
    // starts right after the FIRST `{`; the line's remainder (possibly a
    // complete one-line body like `{ self.devices }` or `{}`) is processed
    // as body text so single-line functions close immediately.
    fn open_fn(
        stack: &mut Vec<Open>,
        out: &mut Vec<Function>,
        depth: &mut i32,
        name: String,
        sig: String,
        line: &str,
        lineno: usize,
    ) {
        let brace = line.find('{').expect("caller checked for a brace");
        let rest = &line[brace + 1..];
        *depth += 1; // the body brace itself
        stack.push(Open {
            func: Function {
                name,
                signature: sig,
                body: Vec::new(),
            },
            body_depth: *depth,
            raw_body: Vec::new(),
            body_first_line: lineno,
        });
        let body_depth = *depth;
        // Body text on the declaration line: everything up to the brace
        // that closes the body (if it closes on this very line).
        let mut cur = body_depth;
        let mut body_end = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '{' => cur += 1,
                '}' => {
                    cur -= 1;
                    if cur < body_depth {
                        body_end = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        stack
            .last_mut()
            .expect("just pushed")
            .raw_body
            .push(rest[..body_end].to_string());
        *depth += brace_delta(rest);
        pop_closed(stack, out, *depth);
    }

    for (k, line) in stripped.iter().enumerate() {
        let lineno = k + 1;
        if let Some((name, mut sig, start)) = pending.take() {
            sig.push(' ');
            sig.push_str(line.trim());
            if line.contains('{') {
                open_fn(&mut stack, &mut out, &mut depth, name, sig, line, lineno);
                continue;
            } else if line.contains(';') {
                // Trait method declaration without a body: drop it.
                depth += brace_delta(line);
                continue;
            }
            pending = Some((name, sig, start));
            continue;
        }

        if let Some((_, name)) = fn_name_at(line) {
            if line.contains('{') {
                let sig = line.trim().to_string();
                open_fn(&mut stack, &mut out, &mut depth, name, sig, line, lineno);
                continue;
            } else if !line.contains(';') {
                pending = Some((name, line.trim().to_string(), lineno));
                continue;
            }
        }

        depth += brace_delta(line);
        if let Some(open) = stack.last_mut() {
            if depth >= open.body_depth {
                open.raw_body.push(line.clone());
            }
        }
        pop_closed(&mut stack, &mut out, depth);
    }
    while let Some(mut d) = stack.pop() {
        d.func.body = logical_lines(&d.raw_body, d.body_first_line);
        out.push(d.func);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_string_contents() {
        let src =
            "let a = 1; // lock()\nlet s = \"inner.lock()\"; /* dispatch.lock() */ let b = 2;";
        let out = strip(src);
        assert_eq!(out[0], "let a = 1; ");
        assert!(!out[1].contains("inner.lock"));
        assert!(!out[1].contains("dispatch.lock"));
        assert!(out[1].contains("let b = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = strip("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(out[0].contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn folds_method_chains_into_logical_lines() {
        let stripped = strip("let x = a\n    .b()\n    .c();\nlet y = 2;");
        let lines = logical_lines(&stripped, 1);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].text, "let x = a.b().c();");
        assert_eq!(lines[0].line, 1);
        assert_eq!(lines[1].line, 4);
    }

    #[test]
    fn blanks_cfg_test_modules() {
        let mut lines = strip(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.lock(); }\n}\nfn after() {}",
        );
        blank_test_mods(&mut lines);
        let joined = lines.join("\n");
        assert!(!joined.contains("x.lock()"));
        assert!(joined.contains("fn live()"));
        assert!(joined.contains("fn after()"));
    }

    #[test]
    fn segments_functions_with_multiline_signatures() {
        let src = "impl S {\n    pub fn alpha(\n        &self,\n        x: u64,\n    ) -> u64 {\n        self.inner.lock();\n        x\n    }\n    fn beta(&self) {}\n}";
        let stripped = strip(src);
        let fns = functions(&stripped);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert!(
            names.contains(&"alpha") && names.contains(&"beta"),
            "{names:?}"
        );
        let alpha = fns.iter().find(|f| f.name == "alpha").unwrap();
        assert!(alpha.signature.contains("-> u64"));
        assert!(alpha.body.iter().any(|l| l.text.contains("inner.lock()")));
    }
}
