//! Source model for the `analyze` passes, two layers deep.
//!
//! **Layer 1 — stripped logical lines** (the original, line-oriented
//! model, still used by the forbidden-pattern lints in `lints.rs`):
//! comments and string contents blanked out, `#[cfg(test)]` modules
//! blanked, physical lines folded into logical statements.
//!
//! **Layer 2 — a spanned token stream** (`lex`), feeding the
//! branch-aware passes in `cfg.rs`/`locks.rs`/`ledger.rs`/`atomics.rs`.
//! The lexer is a real hand-written scanner: every token carries its
//! 1-based line and column, string/char/raw-string literals are reduced
//! to empty spans (their *contents* can never alias code), lifetimes are
//! distinguished from char literals, and nested block comments are
//! skipped. Annotation comments (`// ledger: defer(...)`) are captured
//! with their line so the ledger pass can honor documented deferral
//! sites.
//!
//! Neither layer is a full parser; both are robust to the subset of
//! Rust this repo writes, and the regression tests below pin the
//! historically sharp edges (raw strings containing `{` or `//`,
//! multi-line raw strings, `[u8; N]` types inside signatures, nested
//! generics).

/// One logical line: `text` is the folded, stripped statement text and
/// `line` the 1-based physical line it starts on.
#[derive(Debug, Clone)]
pub struct LogicalLine {
    pub text: String,
    pub line: usize,
}

/// Strip `//` and nested `/* */` comments and blank out string/char
/// literal *contents* (delimiters stay, so the line shape survives).
/// Operates on the whole file so multi-line literals are handled.
pub fn strip(source: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut kept = String::with_capacity(chars.len());
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => break, // rest is a line comment
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        i += 2;
                    }
                    '"' => {
                        kept.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' if (next == Some('"') || next == Some('#'))
                        && !prev_is_ident_char(&chars, i) =>
                    {
                        // Raw string r"..." or r#"..."# (any hash count).
                        // The identifier-boundary check keeps an ident
                        // ending in `r` (`attr`, `ptr`) from opening a
                        // phantom raw string; `r#ident` raw identifiers
                        // fall through to the ident path below because no
                        // quote follows the hashes.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            kept.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                        } else {
                            kept.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a lifetime is `'ident`
                        // with no closing quote right after the ident char.
                        if next == Some('\\') {
                            kept.push('\'');
                            state = State::Char;
                            i += 2;
                        } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                            kept.push_str("''");
                            i += 3;
                        } else {
                            kept.push('\''); // lifetime
                            i += 1;
                        }
                    }
                    _ => {
                        kept.push(c);
                        i += 1;
                    }
                },
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        kept.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        i += 1; // blank the content
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            kept.push('"');
                            state = State::Code;
                            i += 1 + hashes as usize;
                        } else {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
                State::Char => {
                    if c == '\'' {
                        kept.push('\'');
                        state = State::Code;
                    }
                    i += 1;
                }
            }
        }
        out.push(kept);
    }
    out
}

fn prev_is_ident_char(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_')
}

/// Blank out every `#[cfg(test)] mod … { … }` block in stripped lines.
pub fn blank_test_mods(lines: &mut [String]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            // Find the opening brace of the item that follows, then blank
            // through its matching close.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].clone().chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].clear();
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

fn is_continuation(trimmed: &str) -> bool {
    // A line opening with a string literal is a wrapped macro/call
    // argument (`panic!(\n    "message…"`), never a fresh statement.
    trimmed.starts_with('.')
        || trimmed.starts_with('?')
        || trimmed.starts_with("&&")
        || trimmed.starts_with("||")
        || trimmed.starts_with('"')
}

/// Fold stripped physical lines into logical lines.
pub fn logical_lines(stripped: &[String], first_line: usize) -> Vec<LogicalLine> {
    let mut out: Vec<LogicalLine> = Vec::new();
    for (k, raw) in stripped.iter().enumerate() {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        if is_continuation(trimmed) {
            if let Some(last) = out.last_mut() {
                last.text.push_str(trimmed);
                continue;
            }
        }
        out.push(LogicalLine {
            text: trimmed.to_string(),
            line: first_line + k,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Layer 2: the spanned token stream.
// ---------------------------------------------------------------------------

/// Token classes the branch-aware passes distinguish. Literal contents
/// are dropped (a string body can never be code), so `Lit` carries only
/// the delimiter shape (`""`, `''`, or the numeric text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Lit,
    Punct,
}

/// One spanned token. `line`/`col` are 1-based positions of the token's
/// first character in the original source.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Tok {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// An annotation comment captured by the lexer. Only `// ledger:` lines
/// are collected today; the text is everything after the marker.
#[derive(Debug, Clone)]
pub struct Annotation {
    pub line: usize,
    pub text: String,
}

/// Multi-character punctuation, longest first. `<<`/`>>` deliberately
/// stay two tokens so angle-depth tracking over generics keeps working.
const PUNCTS: &[&str] = &[
    "..=", "::", "->", "=>", "..", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "==", "!=", "<=", ">=",
];

/// Lex a source file into spanned tokens plus annotation comments.
/// Comments are skipped (but `// ledger:` annotations are captured),
/// string/char contents are dropped, lifetimes are told apart from char
/// literals, raw strings of any hash count are handled — including
/// bodies containing `{`, `}` or `//`, which the historical line-based
/// scanner only got right by construction of this repo's code.
pub fn lex(source: &str) -> (Vec<Tok>, Vec<Annotation>) {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut anns = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (and annotation capture).
        if c == '/' && next == Some('/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(rest) = text.trim_start_matches('/').trim().strip_prefix("ledger:") {
                anns.push(Annotation {
                    line,
                    text: rest.trim().to_string(),
                });
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && next == Some('*') {
            let mut depth = 1u32;
            bump!();
            bump!();
            while i < chars.len() && depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!();
                    bump!();
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            continue;
        }
        // String literal.
        if c == '"' {
            let (l, co) = (line, col);
            bump!();
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!();
                    if i < chars.len() {
                        bump!();
                    }
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            toks.push(Tok {
                kind: TokKind::Lit,
                text: "\"\"".to_string(),
                line: l,
                col: co,
            });
            continue;
        }
        // Raw string (r"..."), any hash count, or byte-string prefix.
        if (c == 'r' || c == 'b') && !prev_is_ident_char(&chars, i) {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            let rawish = (c == 'r' || chars.get(i + 1) == Some(&'r')) || hashes == 0;
            if chars.get(j) == Some(&'"') && (hashes > 0 || c != 'b' || rawish) {
                // Opens a (raw/byte) string iff a quote follows the
                // optional hashes. `r#ident` has no quote and falls
                // through to the identifier path.
                let is_raw = c == 'r' || chars.get(i + 1) == Some(&'r') || hashes > 0;
                let (l, co) = (line, col);
                while i <= j {
                    bump!();
                }
                if is_raw {
                    // Scan for `"` followed by `hashes` hash marks.
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(i + 1 + k) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                } else {
                    // b"..." plain byte string: escapes apply.
                    while i < chars.len() {
                        if chars[i] == '\\' {
                            bump!();
                            if i < chars.len() {
                                bump!();
                            }
                        } else if chars[i] == '"' {
                            bump!();
                            break;
                        } else {
                            bump!();
                        }
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: "\"\"".to_string(),
                    line: l,
                    col: co,
                });
                continue;
            }
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (l, co) = (line, col);
            if next == Some('\\') {
                // Escaped char literal: consume to the closing quote.
                bump!();
                bump!();
                while i < chars.len() && chars[i] != '\'' {
                    bump!();
                }
                if i < chars.len() {
                    bump!();
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: "''".to_string(),
                    line: l,
                    col: co,
                });
            } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                bump!();
                bump!();
                bump!();
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: "''".to_string(),
                    line: l,
                    col: co,
                });
            } else {
                // Lifetime: 'ident.
                bump!();
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                let name: String = chars[start..i].iter().collect();
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: format!("'{name}"),
                    line: l,
                    col: co,
                });
            }
            continue;
        }
        // Identifier / keyword / raw identifier.
        if c.is_ascii_alphabetic() || c == '_' {
            let (l, co) = (line, col);
            let start = i;
            // r#ident raw identifiers: skip the prefix, keep the name.
            if c == 'r' && next == Some('#') {
                bump!();
                bump!();
            }
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let mut text: String = chars[start..i].iter().collect();
            if let Some(stripped) = text.strip_prefix("r#") {
                text = stripped.to_string();
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: l,
                col: co,
            });
            continue;
        }
        // Number literal (decimal, hex, float, suffixed).
        if c.is_ascii_digit() {
            let (l, co) = (line, col);
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            // A fractional part: `.` followed by a digit (so `0..10`
            // stays a range, not a float).
            if i < chars.len()
                && chars[i] == '.'
                && chars.get(i + 1).is_some_and(char::is_ascii_digit)
            {
                bump!();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
            }
            toks.push(Tok {
                kind: TokKind::Lit,
                text: chars[start..i].iter().collect(),
                line: l,
                col: co,
            });
            continue;
        }
        // Multi-char punctuation, longest first.
        let mut matched = false;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if chars[i..].starts_with(&pc) {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line,
                    col,
                });
                for _ in 0..pc.len() {
                    bump!();
                }
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Single-char punctuation.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
        bump!();
    }
    (toks, anns)
}

/// Reconstruct compact statement text from tokens: a space is inserted
/// only between two "wordy" tokens (idents, literals, lifetimes), so
/// needle matching (`dispatch.lock(`, `Ordering::Relaxed`) stays exact.
/// Test scaffolding — the passes match against original source lines.
#[cfg(test)]
pub fn text_of(toks: &[Tok]) -> String {
    let mut out = String::new();
    let mut prev_wordy = false;
    for t in toks {
        let wordy = matches!(t.kind, TokKind::Ident | TokKind::Lit | TokKind::Lifetime);
        if wordy && prev_wordy {
            out.push(' ');
        }
        out.push_str(&t.text);
        prev_wordy = wordy;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_string_contents() {
        let src =
            "let a = 1; // lock()\nlet s = \"inner.lock()\"; /* dispatch.lock() */ let b = 2;";
        let out = strip(src);
        assert_eq!(out[0], "let a = 1; ");
        assert!(!out[1].contains("inner.lock"));
        assert!(!out[1].contains("dispatch.lock"));
        assert!(out[1].contains("let b = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = strip("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(out[0].contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn folds_method_chains_into_logical_lines() {
        let stripped = strip("let x = a\n    .b()\n    .c();\nlet y = 2;");
        let lines = logical_lines(&stripped, 1);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].text, "let x = a.b().c();");
        assert_eq!(lines[0].line, 1);
        assert_eq!(lines[1].line, 4);
    }

    #[test]
    fn blanks_cfg_test_modules() {
        let mut lines = strip(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.lock(); }\n}\nfn after() {}",
        );
        blank_test_mods(&mut lines);
        let joined = lines.join("\n");
        assert!(!joined.contains("x.lock()"));
        assert!(joined.contains("fn live()"));
        assert!(joined.contains("fn after()"));
    }

    // --- regression tests: raw strings and generics (historic gaps) ---

    #[test]
    fn raw_string_bodies_with_braces_and_comments_are_blanked() {
        let out = strip("let s = r#\"body { // with } braces\"#;\nlet g = m.lock();");
        assert_eq!(out[0], "let s = \"\";");
        assert_eq!(out[1], "let g = m.lock();");
    }

    #[test]
    fn multiline_raw_strings_do_not_leak_braces() {
        let out = strip("let s = r#\"line1 {\n// not a comment\nline3 }\"#;\nlet x = 1;");
        let joined = out.join("");
        assert!(!joined.contains('{'), "{out:?}");
        assert!(!joined.contains("not a comment"), "{out:?}");
        assert!(out[3].contains("let x = 1;"), "{out:?}");
    }

    #[test]
    fn ident_ending_in_r_does_not_open_a_raw_string() {
        // `attr` ends in `r`; a following string must lex as a normal
        // string, not swallow the rest of the file as a raw literal.
        let out = strip("f(attr,\"a{\");\nlet g = m.lock();");
        assert_eq!(out[1], "let g = m.lock();");
    }

    #[test]
    fn nested_generics_survive_stripping() {
        let out = strip("fn g(m: &HashMap<u64, Vec<Mutex<u64>>>) -> Option<Vec<u64>> { x }");
        assert!(out[0].contains("HashMap<u64, Vec<Mutex<u64>>>"), "{out:?}");
    }

    // --- lexer ---

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_spanned_tokens() {
        let (toks, _) = lex("let ds = self.dispatch.lock();\nlet x = 2;");
        let lock = toks.iter().find(|t| t.text == "lock").unwrap();
        assert_eq!((lock.line, lock.col), (1, 24));
        let x = toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn lexes_raw_strings_with_braces_as_one_literal() {
        let toks = kinds("let s = r#\"a { // } b\"#; m.lock();");
        let lit = toks.iter().filter(|(k, _)| *k == TokKind::Lit).count();
        assert_eq!(lit, 1, "{toks:?}");
        assert!(toks.iter().any(|(_, t)| t == "lock"), "{toks:?}");
        assert!(!toks.iter().any(|(_, t)| t == "{"), "{toks:?}");
    }

    #[test]
    fn lexes_lifetimes_chars_and_ranges() {
        let toks = kinds("fn f<'a>(c: char) { matches!(c, '0'..='9') }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokKind::Punct, "..=".to_string())));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Lit && t == "''")
                .count(),
            2
        );
    }

    #[test]
    fn lexes_raw_identifiers_and_numbers() {
        let toks = kinds("let r#type = 0xFA177; let f = 1.5e3;");
        assert!(toks.contains(&(TokKind::Ident, "type".to_string())));
        assert!(toks.contains(&(TokKind::Lit, "0xFA177".to_string())));
        assert!(toks.contains(&(TokKind::Lit, "1.5e3".to_string())));
    }

    #[test]
    fn captures_ledger_annotations() {
        let (_, anns) = lex("// ledger: defer(settles at seal)\nx.admitted.fetch_add(1, O);");
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].line, 1);
        assert!(anns[0].text.starts_with("defer("));
    }

    #[test]
    fn text_of_reconstructs_needle_exact_text() {
        let (toks, _) = lex("let ds = self.dispatch.lock();");
        assert_eq!(text_of(&toks), "let ds=self.dispatch.lock();");
        let (toks, _) = lex("self.shutdown.store(true, Ordering::Relaxed)");
        assert_eq!(
            text_of(&toks),
            "self.shutdown.store(true,Ordering::Relaxed)"
        );
    }
}
