//! Seeded ledger-balance violation: the `else` arm admits into
//! `admitted_total` but never settles, so one path leaks an admission —
//! exactly the branch-blind bug class the textual scanner missed.
//! The analyzer must exit non-zero on this tree.

use std::sync::atomic::{AtomicU64, Ordering};

struct Stats {
    admitted: AtomicU64,
    served: AtomicU64,
}

struct Seeded {
    stats: Stats,
}

impl Seeded {
    fn admit(&self, fast_path: bool) {
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        if fast_path {
            self.stats.served.fetch_add(1, Ordering::Relaxed);
        } else {
            // forgot to settle: the admission leaks on this arm
            self.observe();
        }
    }

    fn observe(&self) {}
}
