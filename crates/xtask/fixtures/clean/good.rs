//! Positive fixture: hierarchy-respecting nesting and no forbidden
//! patterns — `analyze --root` on this directory must exit 0.

struct Clean {
    dispatch: Mutex<DispatchState>,
    handles: Mutex<Vec<Handle>>,
    fault: FaultPlane,
}

impl Clean {
    fn nested_in_order(&self) {
        let ds = self.dispatch.lock();
        let hs = self.handles.lock();
        drop(hs);
        let inner = self.fault.inner.lock();
        drop(inner);
        drop(ds);
    }

    fn handled_failure(&self, v: Option<u64>) -> u64 {
        v.unwrap_or(0)
    }
}
