//! Negative fixture: a seeded lock-order inversion. `fault.inner` (the
//! innermost class in the documented hierarchy) is held while
//! `engine.dispatch` (the outermost) is acquired — the AB-BA half that,
//! combined with any legal dispatch -> inner nesting, deadlocks.
//!
//! CI runs `cargo run -p xtask -- analyze --root crates/xtask/fixtures/inversion`
//! and requires a non-zero exit to prove the analyzer still catches this.

struct Seeded {
    dispatch: Mutex<DispatchState>,
    fault: FaultPlane,
}

impl Seeded {
    fn inverted(&self) {
        let inner = self.fault.inner.lock();
        let ds = self.dispatch.lock();
        drop(ds);
        drop(inner);
    }
}
