//! Seeded atomic-ordering violation: `shutdown` gates a cross-thread
//! control decision but is published and observed with `Relaxed`, so
//! the flag flip carries no happens-before edge to the state it is
//! supposed to publish. The analyzer must exit non-zero here.

use std::sync::atomic::{AtomicBool, Ordering};

struct Seeded {
    shutdown: AtomicBool,
}

impl Seeded {
    fn stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn keep_running(&self) -> bool {
        !self.shutdown.load(Ordering::Relaxed)
    }
}
