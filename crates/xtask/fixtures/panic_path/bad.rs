//! Negative fixture for the pattern lints: a std-style lock-result
//! unwrap, a panic path, and a wall-clock read.

struct Fixture {
    dispatch: std::sync::Mutex<u64>,
}

impl Fixture {
    fn lock_unwrap(&self) -> u64 {
        *self.dispatch.lock().unwrap()
    }

    fn panics(&self, v: Option<u64>) -> u64 {
        v.expect("fixture invariant")
    }

    fn wall_clock(&self) -> std::time::Instant {
        std::time::Instant::now()
    }
}
