//! Seeded guard-across-blocking violation: an exclusive `engine.wal`
//! guard is held across an fsync, stalling every contender for the
//! duration of the disk flush. The analyzer must exit non-zero here.

use std::fs::File;
use std::sync::Mutex;

struct WalState {
    frames: u64,
}

struct Seeded {
    wal: Mutex<WalState>,
    file: File,
}

impl Seeded {
    fn flush_under_lock(&self) {
        let mut w = self.wal.lock();
        w.frames += 1;
        let _ = self.file.sync_all();
        drop(w);
    }
}
