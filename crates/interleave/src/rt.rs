//! The model-checking runtime: a deterministic cooperative scheduler plus a
//! DFS schedule explorer with a preemption bound.
//!
//! # How an execution runs
//!
//! Model threads are real OS threads, but at most one is ever logically
//! running: every instrumented operation (lock, atomic access, channel
//! send/recv, join) first calls [`Rt::yield_point`], which hands the baton
//! to the scheduler. The scheduler computes the set of *runnable* threads
//! (not finished, blocking condition satisfied), consults the explorer for
//! which one continues, and grants it the baton. Because threads only
//! interleave at instrumented operations and everything in between is
//! thread-local, replaying the same sequence of choices replays the same
//! execution bit-for-bit.
//!
//! # How the space is explored
//!
//! The explorer keeps the current schedule as a path of choice frames
//! (`candidates`, `chosen`). An execution replays the recorded prefix, then
//! extends it by always picking the first candidate (the previously running
//! thread, making the first schedule near-sequential). After each execution
//! the deepest frame with an untried candidate is advanced and everything
//! below it is discarded — classic iterative DFS. Context switches away
//! from a still-runnable thread count as *preemptions*; once an execution
//! has used its preemption budget, only forced switches (current thread
//! blocked or finished) remain, which is the standard preemption-bounding
//! trick: almost all concurrency bugs manifest within 2–3 preemptions.
//!
//! Blocked-forever states are detected positively: if no thread is runnable
//! and not all threads have finished, the execution aborts with a deadlock
//! report naming every thread's pending operation.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Once, PoisonError};

/// Panic payload used to unwind model threads when an execution aborts
/// (deadlock, another thread's failure, budget exhausted). Never escapes
/// [`model_with`]: the wrapper catches it and the real failure is re-raised
/// from the controlling thread with the schedule trace attached.
pub(crate) struct ModelAbort;

/// What a parked model thread is waiting for. `Always` means the thread is
/// at a plain scheduling point and can run immediately.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Condition {
    Always,
    MutexFree(usize),
    RwRead(usize),
    RwWrite(usize),
    ChanSend(usize),
    ChanRecv(usize),
    Join(usize),
}

/// Scheduler-visible mirror of one synchronization object's state. The
/// objects themselves (queues, guarded data) live outside the runtime; the
/// mirror exists so blocking conditions can be evaluated without touching
/// user types.
#[derive(Debug)]
pub(crate) enum Resource {
    Mutex {
        held: bool,
    },
    RwLock {
        readers: usize,
        writer: bool,
    },
    Channel {
        len: usize,
        cap: usize,
        senders: usize,
        receivers: usize,
    },
}

struct ThreadCell {
    finished: bool,
    cond: Condition,
    /// Label of the pending operation, for deadlock/failure reports.
    op: &'static str,
}

/// One DFS choice point: which threads were runnable and which was taken.
struct Frame {
    candidates: Vec<usize>,
    chosen: usize,
}

struct Inner {
    // Per-execution state, reset by `begin`.
    turn: usize,
    threads: Vec<ThreadCell>,
    resources: Vec<Resource>,
    ops: u64,
    preemptions: usize,
    cursor: usize,
    trace: Vec<(usize, &'static str)>,
    abort: Option<String>,
    // Explorer state, persistent across executions.
    path: Vec<Frame>,
    schedules: u64,
    max_depth: usize,
    epoch: u64,
}

/// Exploration limits for [`crate::model_with`].
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum context switches away from a runnable thread per execution.
    pub preemptions: usize,
    /// Stop after exploring this many schedules even if the space is not
    /// exhausted.
    pub max_schedules: u64,
    /// Abort a single execution after this many instrumented operations
    /// (livelock guard).
    pub max_ops: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemptions: 2,
            max_schedules: 4096,
            max_ops: 1_000_000,
        }
    }
}

/// What an exploration covered.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct schedules executed to completion.
    pub schedules: u64,
    /// True when every schedule within the preemption bound was explored
    /// (rather than stopping at `max_schedules`).
    pub exhausted: bool,
    /// Longest schedule, in scheduling decisions.
    pub max_depth: usize,
}

pub(crate) struct Rt {
    m: StdMutex<Inner>,
    cv: Condvar,
    cfg: Config,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The runtime of the model execution this thread belongs to, if any.
/// `None` outside `model()`: instrumented primitives fall back to plain
/// blocking behavior so feature-unified test binaries still run normally.
pub(crate) fn ctx() -> Option<(Arc<Rt>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(rt: Arc<Rt>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

impl Inner {
    fn cond_ok(&self, c: Condition) -> bool {
        match c {
            Condition::Always => true,
            Condition::MutexFree(r) => match &self.resources[r] {
                Resource::Mutex { held } => !held,
                other => unreachable!("mutex condition on {other:?}"),
            },
            Condition::RwRead(r) => match &self.resources[r] {
                Resource::RwLock { writer, .. } => !writer,
                other => unreachable!("rwlock condition on {other:?}"),
            },
            Condition::RwWrite(r) => match &self.resources[r] {
                Resource::RwLock { readers, writer } => !writer && *readers == 0,
                other => unreachable!("rwlock condition on {other:?}"),
            },
            Condition::ChanSend(r) => match &self.resources[r] {
                Resource::Channel {
                    len,
                    cap,
                    receivers,
                    ..
                } => len < cap || *receivers == 0,
                other => unreachable!("channel condition on {other:?}"),
            },
            Condition::ChanRecv(r) => match &self.resources[r] {
                Resource::Channel { len, senders, .. } => *len > 0 || *senders == 0,
                other => unreachable!("channel condition on {other:?}"),
            },
            Condition::Join(t) => self.threads[t].finished,
        }
    }

    fn set_abort(&mut self, msg: String) {
        if self.abort.is_none() {
            let mut full = msg;
            full.push_str("\nschedule trace (thread:op):");
            let tail = self.trace.len().saturating_sub(200);
            if tail > 0 {
                full.push_str(&format!(" …{tail} earlier decisions elided…"));
            }
            for (tid, op) in &self.trace[tail..] {
                full.push_str(&format!(" {tid}:{op}"));
            }
            self.abort = Some(full);
        }
    }
}

impl Rt {
    pub(crate) fn new(cfg: Config) -> Self {
        Rt {
            m: StdMutex::new(Inner {
                turn: usize::MAX,
                threads: Vec::new(),
                resources: Vec::new(),
                ops: 0,
                preemptions: 0,
                cursor: 0,
                trace: Vec::new(),
                abort: None,
                path: Vec::new(),
                schedules: 0,
                max_depth: 0,
                epoch: 0,
            }),
            cv: Condvar::new(),
            cfg,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Reset per-execution state and register the root thread (tid 0).
    fn begin(&self) {
        let mut st = self.lock();
        st.turn = usize::MAX;
        st.threads.clear();
        st.resources.clear();
        st.ops = 0;
        st.preemptions = 0;
        st.cursor = 0;
        st.trace.clear();
        st.abort = None;
        st.epoch += 1;
        st.threads.push(ThreadCell {
            finished: false,
            cond: Condition::Always,
            op: "start",
        });
    }

    /// Register a freshly spawned model thread; it becomes schedulable at
    /// the spawner's next yield point.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(ThreadCell {
            finished: false,
            cond: Condition::Always,
            op: "start",
        });
        st.threads.len() - 1
    }

    /// Register a synchronization object for the current execution.
    pub(crate) fn register_resource(&self, r: Resource) -> usize {
        let mut st = self.lock();
        st.resources.push(r);
        st.resources.len() - 1
    }

    /// Mutate a resource mirror without yielding (release-style updates:
    /// unlocks, channel pushes/pops, endpoint drops). These only ever
    /// *unblock* other threads; the next scheduling point picks them up.
    pub(crate) fn update_resource(&self, id: usize, f: impl FnOnce(&mut Resource)) {
        let mut st = self.lock();
        f(&mut st.resources[id]);
    }

    /// Read a resource mirror (only sound while holding the baton).
    pub(crate) fn read_resource<T>(&self, id: usize, f: impl FnOnce(&Resource) -> T) -> T {
        let st = self.lock();
        f(&st.resources[id])
    }

    /// The heart of the checker: park the calling thread at a scheduling
    /// point with blocking condition `cond`, let the explorer pick who runs
    /// next, and return once this thread is granted the baton *and* `cond`
    /// holds. Panics with [`ModelAbort`] if the execution aborted meanwhile.
    pub(crate) fn yield_point(self: &Arc<Self>, me: usize, cond: Condition, op: &'static str) {
        let mut st = self.lock();
        st.ops += 1;
        if st.ops > self.cfg.max_ops {
            st.set_abort(format!(
                "execution exceeded {} instrumented operations (livelock?)",
                self.cfg.max_ops
            ));
        }
        st.threads[me].cond = cond;
        st.threads[me].op = op;
        self.schedule(&mut st, Some(me));
        loop {
            if st.abort.is_some() {
                drop(st);
                self.cv.notify_all();
                panic::panic_any(ModelAbort);
            }
            if st.turn == me {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mark `me` finished and hand the baton onward. `failure` carries a
    /// real panic message (not a [`ModelAbort`] unwind) and aborts the
    /// whole execution.
    pub(crate) fn finish_thread(&self, me: usize, failure: Option<String>) {
        let mut st = self.lock();
        st.threads[me].finished = true;
        st.threads[me].op = "exit";
        if let Some(msg) = failure {
            st.set_abort(format!("model thread {me} panicked: {msg}"));
        }
        if st.abort.is_none() {
            self.schedule(&mut st, None);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Pick the next thread to run and grant it the baton. `yielder` is the
    /// thread releasing the baton (None when it just finished).
    fn schedule(&self, st: &mut Inner, yielder: Option<usize>) {
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        if st.threads.iter().all(|t| t.finished) {
            st.turn = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&i| !st.threads[i].finished && st.cond_ok(st.threads[i].cond))
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.finished)
                .map(|(i, t)| format!("thread {i} blocked at {} on {:?}", t.op, t.cond))
                .collect();
            st.set_abort(format!("deadlock: {}", blocked.join("; ")));
            self.cv.notify_all();
            return;
        }
        // Candidate order: the yielding thread first (so the first DFS
        // schedule is near-sequential), then the rest by id. Once the
        // preemption budget is spent, a still-runnable yielder must keep
        // running.
        let mut candidates = Vec::with_capacity(runnable.len());
        let yielder_runnable = yielder.is_some_and(|y| runnable.contains(&y));
        if let Some(y) = yielder {
            if yielder_runnable {
                candidates.push(y);
                if st.preemptions < self.cfg.preemptions {
                    candidates.extend(runnable.iter().copied().filter(|&t| t != y));
                }
            } else {
                candidates.extend(runnable.iter().copied());
            }
        } else {
            candidates.extend(runnable.iter().copied());
        }
        // Explore: replay the recorded prefix, extend past it with choice 0.
        let cursor = st.cursor;
        let chosen_idx = if cursor < st.path.len() {
            if st.path[cursor].candidates != candidates {
                let recorded = format!("{:?}", st.path[cursor].candidates);
                st.set_abort(format!(
                    "nondeterministic model: replay step {cursor} saw candidates {candidates:?}, \
                     recorded {recorded} — model closures must not depend on time, \
                     ambient randomness or address-dependent ordering"
                ));
                self.cv.notify_all();
                return;
            }
            st.path[cursor].chosen
        } else {
            st.path.push(Frame {
                candidates: candidates.clone(),
                chosen: 0,
            });
            0
        };
        st.cursor += 1;
        let choice = candidates[chosen_idx];
        if yielder_runnable && Some(choice) != yielder {
            st.preemptions += 1;
        }
        let op = st.threads[choice].op;
        st.trace.push((choice, op));
        st.turn = choice;
        self.cv.notify_all();
    }

    /// Block the controlling thread until every model thread has finished.
    fn wait_all_finished(&self) -> Option<String> {
        let mut st = self.lock();
        while !st.threads.iter().all(|t| t.finished) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.max_depth = st.max_depth.max(st.cursor);
        st.abort.take()
    }

    /// Advance the explorer to the next unexplored schedule. Returns false
    /// once the bounded space is exhausted.
    fn advance(&self) -> bool {
        let mut st = self.lock();
        st.schedules += 1;
        loop {
            match st.path.last_mut() {
                None => return false,
                Some(last) if last.chosen + 1 < last.candidates.len() => {
                    last.chosen += 1;
                    return true;
                }
                Some(_) => {
                    st.path.pop();
                }
            }
        }
    }

    fn schedules(&self) -> u64 {
        self.lock().schedules
    }
}

/// Lazily assigned, per-execution scheduler slot for one sync object.
/// Packs `(epoch, id + 1)` into a single atomic word so an object
/// constructed during one execution transparently re-registers itself when
/// the next execution (a new epoch) first touches it; `0` means unset.
/// Only the running model thread ever assigns, so plain relaxed accesses
/// suffice.
pub(crate) struct ResourceId(std::sync::atomic::AtomicU64);

impl Default for ResourceId {
    fn default() -> Self {
        ResourceId::new()
    }
}

impl ResourceId {
    pub(crate) const fn new() -> Self {
        ResourceId(std::sync::atomic::AtomicU64::new(0))
    }

    /// The object's slot for the current execution, registering it with
    /// `make`'s initial mirror state on first touch.
    pub(crate) fn get(&self, rt: &Rt, make: impl FnOnce() -> Resource) -> usize {
        if let Some(id) = self.peek(rt) {
            return id;
        }
        let id = rt.register_resource(make());
        let epoch = rt.epoch() & 0xffff_ffff;
        self.0.store(
            (epoch << 32) | (id as u64 + 1),
            std::sync::atomic::Ordering::Relaxed,
        );
        id
    }

    /// The slot if it was already assigned during the current execution.
    pub(crate) fn peek(&self, rt: &Rt) -> Option<usize> {
        let cur = self.0.load(std::sync::atomic::Ordering::Relaxed);
        if cur != 0 && (cur >> 32) == (rt.epoch() & 0xffff_ffff) {
            Some((cur & 0xffff_ffff) as usize - 1)
        } else {
            None
        }
    }
}

/// Spawn a model OS thread running `f` as model thread `tid`, storing the
/// result where the matching `JoinHandle` can pick it up.
pub(crate) type ResultSlot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

pub(crate) fn spawn_model_thread<F, T>(
    rt: Arc<Rt>,
    tid: usize,
    name: Option<String>,
    f: F,
) -> (ResultSlot<T>, std::thread::JoinHandle<()>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: ResultSlot<T> = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let mut b = std::thread::Builder::new();
    if let Some(n) = name {
        b = b.name(n);
    }
    let os = b
        .spawn(move || {
            set_ctx(Arc::clone(&rt), tid);
            // Wait for the first grant of the baton.
            {
                let mut st = rt.lock();
                loop {
                    if st.abort.is_some() {
                        drop(st);
                        rt.finish_thread(tid, None);
                        return;
                    }
                    if st.turn == tid {
                        break;
                    }
                    st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
            let out = panic::catch_unwind(AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                    rt.finish_thread(tid, None);
                }
                Err(payload) => {
                    if payload.downcast_ref::<ModelAbort>().is_some() {
                        rt.finish_thread(tid, None);
                    } else {
                        // `as_ref`, not `&payload`: a `&Box<dyn Any>`
                        // would unsize-coerce to `&dyn Any` with the Box
                        // itself as the concrete type, defeating downcast.
                        let msg = panic_message(payload.as_ref());
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(payload));
                        rt.finish_thread(tid, Some(msg));
                    }
                }
            }
        })
        .expect("spawning model OS thread");
    (result, os)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Install (once, process-wide) a panic hook that silences the expected
/// [`ModelAbort`] unwinds model threads use to tear down an aborted
/// execution, while forwarding every real panic to the previous hook.
fn install_quiet_abort_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Explore every thread interleaving of `f` (within `cfg`'s bounds),
/// panicking with a schedule trace on the first assertion failure, panic,
/// or deadlock. See the crate docs for the execution model.
pub fn model_with<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_abort_hook();
    let rt = Arc::new(Rt::new(cfg));
    let f = Arc::new(f);
    loop {
        rt.begin();
        let body = Arc::clone(&f);
        let (_result, os) = spawn_model_thread(Arc::clone(&rt), 0, None, move || body());
        {
            let mut st = rt.lock();
            rt.schedule(&mut st, None);
        }
        let failure = rt.wait_all_finished();
        let _ = os.join();
        if let Some(msg) = failure {
            let done = rt.schedules();
            panic!("model failed after {done} fully explored schedules: {msg}");
        }
        if !rt.advance() {
            let st = rt.lock();
            return Report {
                schedules: st.schedules,
                exhausted: true,
                max_depth: st.max_depth,
            };
        }
        if rt.schedules() >= rt.cfg.max_schedules {
            let st = rt.lock();
            return Report {
                schedules: st.schedules,
                exhausted: false,
                max_depth: st.max_depth,
            };
        }
    }
}

/// [`model_with`] under the default [`Config`].
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}
