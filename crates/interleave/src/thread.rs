//! Instrumented counterpart of `std::thread`'s `Builder`/`spawn`/`join`
//! subset. Inside a [`crate::model`] execution, spawned closures become
//! model threads under the scheduler and `join` parks on a scheduler
//! condition; outside, everything delegates to `std::thread`.

use std::io;
use std::sync::{Arc, PoisonError};

use crate::rt::{ctx, spawn_model_thread, Condition, ResultSlot, Rt};

/// Thread factory mirroring `std::thread::Builder`'s `name` + `spawn`.
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Create a builder with no name set.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Name the thread (visible in panic messages and debuggers).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawn `f`, as a model thread when called inside a model execution.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            Some((rt, _)) => {
                let tid = rt.register_thread();
                let (result, os) = spawn_model_thread(Arc::clone(&rt), tid, self.name, f);
                Ok(JoinHandle(Inner::Model {
                    rt,
                    tid,
                    result,
                    os: Some(os),
                }))
            }
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
        }
    }
}

/// Spawn an unnamed thread; see [`Builder::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        rt: Arc<Rt>,
        tid: usize,
        result: ResultSlot<T>,
        os: Option<std::thread::JoinHandle<()>>,
    },
}

/// Owned permission to join a spawned thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish, returning its result. Under a model
    /// this parks the caller on a scheduler condition, so a join cycle is
    /// reported as a deadlock rather than hanging.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model {
                rt,
                tid,
                result,
                os,
            } => {
                let (_, me) = ctx().expect("model JoinHandle joined from outside its model");
                rt.yield_point(me, Condition::Join(tid), "thread.join");
                if let Some(os) = os {
                    let _ = os.join();
                }
                result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("model thread finished without storing a result")
            }
        }
    }
}
