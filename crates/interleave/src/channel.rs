//! Instrumented MPMC channel matching the `crossbeam` shim's API subset
//! (`bounded`/`unbounded`, disconnect-on-last-endpoint-drop semantics).
//!
//! Under a [`crate::model`] execution, send/recv park on scheduler
//! conditions evaluated against a mirror of the queue state — a blocked
//! send is runnable once there is room *or* every receiver is gone (so the
//! disconnect error is itself an explorable outcome). Outside a model the
//! channel degrades to the same mutex-plus-condvars implementation as the
//! crossbeam shim.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::rt::{ctx, Condition, Resource, ResourceId, Rt};

struct Shared<T> {
    id: ResourceId,
    queue: Mutex<VecDeque<T>>,
    /// None = unbounded.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Sending half; clonable for multi-producer use.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clonable for multi-consumer use.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Send failed: all receivers dropped. Returns the unsent value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Non-blocking send failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Channel at capacity; value returned.
    Full(T),
    /// All receivers dropped; value returned.
    Disconnected(T),
}

/// Receive failed: channel empty and all senders dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Non-blocking receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Channel buffering at most `cap` messages; sends block when full.
/// `cap = 0` is rounded up to 1 (true rendezvous is not needed here).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

/// Channel with no capacity bound; sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        id: ResourceId::new(),
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Shared<T> {
    fn no_receivers(&self) -> bool {
        self.receivers.load(Ordering::Acquire) == 0
    }

    fn no_senders(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register with the scheduler, snapshotting live endpoint counts so an
    /// object first touched mid-execution mirrors its real state.
    fn ensure(&self, rt: &Rt) -> usize {
        self.id.get(rt, || Resource::Channel {
            len: self.lock_queue().len(),
            cap: self.capacity.unwrap_or(usize::MAX),
            senders: self.senders.load(Ordering::Acquire),
            receivers: self.receivers.load(Ordering::Acquire),
        })
    }

    fn mirror(&self, rt: &Rt, f: impl FnOnce(&mut usize, usize, &mut usize, &mut usize)) {
        if let Some(id) = self.id.peek(rt) {
            rt.update_resource(id, |r| match r {
                Resource::Channel {
                    len,
                    cap,
                    senders,
                    receivers,
                } => f(len, *cap, senders, receivers),
                other => unreachable!("channel slot holds {other:?}"),
            });
        }
    }
}

impl<T> Sender<T> {
    /// Block until the value is enqueued, or fail if all receivers are
    /// gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        if let Some((rt, me)) = ctx() {
            let id = shared.ensure(&rt);
            rt.yield_point(me, Condition::ChanSend(id), "chan.send");
            let receivers = rt.read_resource(id, |r| match r {
                Resource::Channel { receivers, .. } => *receivers,
                other => unreachable!("channel slot holds {other:?}"),
            });
            if receivers == 0 {
                return Err(SendError(value));
            }
            shared.lock_queue().push_back(value);
            rt.update_resource(id, |r| match r {
                Resource::Channel { len, .. } => *len += 1,
                other => unreachable!("channel slot holds {other:?}"),
            });
            return Ok(());
        }
        let mut q = shared.lock_queue();
        loop {
            if shared.no_receivers() {
                return Err(SendError(value));
            }
            match shared.capacity {
                Some(cap) if q.len() >= cap => {
                    q = shared
                        .not_full
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        q.push_back(value);
        drop(q);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let shared = &*self.shared;
        if let Some((rt, me)) = ctx() {
            let id = shared.ensure(&rt);
            rt.yield_point(me, Condition::Always, "chan.try_send");
            let (len, cap, receivers) = rt.read_resource(id, |r| match r {
                Resource::Channel {
                    len,
                    cap,
                    receivers,
                    ..
                } => (*len, *cap, *receivers),
                other => unreachable!("channel slot holds {other:?}"),
            });
            if receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if len >= cap {
                return Err(TrySendError::Full(value));
            }
            shared.lock_queue().push_back(value);
            rt.update_resource(id, |r| match r {
                Resource::Channel { len, .. } => *len += 1,
                other => unreachable!("channel slot holds {other:?}"),
            });
            return Ok(());
        }
        let mut q = shared.lock_queue();
        if shared.no_receivers() {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = shared.capacity {
            if q.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        q.push_back(value);
        drop(q);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock_queue().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives, or fail once the channel is empty with
    /// all senders gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        if let Some((rt, me)) = ctx() {
            let id = shared.ensure(&rt);
            rt.yield_point(me, Condition::ChanRecv(id), "chan.recv");
            match shared.lock_queue().pop_front() {
                Some(v) => {
                    rt.update_resource(id, |r| match r {
                        Resource::Channel { len, .. } => *len -= 1,
                        other => unreachable!("channel slot holds {other:?}"),
                    });
                    return Ok(v);
                }
                // Runnable with an empty queue implies every sender is
                // gone: disconnect.
                None => return Err(RecvError),
            }
        }
        let mut q = shared.lock_queue();
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.no_senders() {
                return Err(RecvError);
            }
            q = shared
                .not_empty
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        if let Some((rt, me)) = ctx() {
            let id = shared.ensure(&rt);
            rt.yield_point(me, Condition::Always, "chan.try_recv");
            match shared.lock_queue().pop_front() {
                Some(v) => {
                    rt.update_resource(id, |r| match r {
                        Resource::Channel { len, .. } => *len -= 1,
                        other => unreachable!("channel slot holds {other:?}"),
                    });
                    return Ok(v);
                }
                None => {
                    return if shared.no_senders() {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    };
                }
            }
        }
        let mut q = shared.lock_queue();
        if let Some(v) = q.pop_front() {
            drop(q);
            shared.not_full.notify_one();
            return Ok(v);
        }
        if shared.no_senders() {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock_queue().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        if let Some((rt, _)) = ctx() {
            self.shared.mirror(&rt, |_, _, senders, _| *senders += 1);
        }
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        if let Some((rt, _)) = ctx() {
            self.shared
                .mirror(&rt, |_, _, _, receivers| *receivers += 1);
        }
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let Some((rt, _)) = ctx() {
            self.shared.senders.fetch_sub(1, Ordering::AcqRel);
            self.shared.mirror(&rt, |_, _, senders, _| *senders -= 1);
            // Blocked receivers become runnable at the next scheduling
            // point; no wakeup needed under the model.
            return;
        }
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake receivers so they observe disconnect.
            let _unused = self.shared.queue.lock();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let Some((rt, _)) = ctx() {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
            self.shared
                .mirror(&rt, |_, _, _, receivers| *receivers -= 1);
            return;
        }
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver: wake senders blocked on a full queue.
            let _unused = self.shared.queue.lock();
            self.shared.not_full.notify_all();
        }
    }
}
