//! Instrumented drop-in replacements for the `parking_lot` shim's
//! `Mutex`/`RwLock` (same signatures: panic-free guards, poison recovery)
//! plus model-aware `atomic` wrappers and a re-exported `Arc`.
//!
//! Inside a [`crate::model`] execution every acquisition and every atomic
//! access is a scheduling point; blocking is expressed as a condition the
//! scheduler evaluates against a mirror of the lock state, so the explorer
//! can enumerate who wins each race. Outside a model (no thread-local
//! runtime), all types degrade to their plain blocking behavior, which is
//! what lets one feature-unified test binary run both model and ordinary
//! suites.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

use crate::rt::{ctx, Condition, Resource, ResourceId, Rt};

pub use std::sync::Arc;

/// Mutual exclusion lock; `lock` never returns an error. Scheduling point
/// under a model.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    id: ResourceId,
    cell: sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the scheduler mirror on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    model: Option<(Arc<Rt>, usize)>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: ResourceId::new(),
            cell: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.cell
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn ensure(&self, rt: &Rt) -> usize {
        self.id.get(rt, || Resource::Mutex {
            held: self.cell.try_lock().is_err(),
        })
    }

    fn take_cell(&self) -> sync::MutexGuard<'_, T> {
        match self.cell.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => {
                unreachable!("scheduler granted a mutex that is still held")
            }
        }
    }

    /// Acquire the lock, blocking; recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match ctx() {
            Some((rt, me)) => {
                let id = self.ensure(&rt);
                rt.yield_point(me, Condition::MutexFree(id), "mutex.lock");
                rt.update_resource(id, |r| match r {
                    Resource::Mutex { held } => *held = true,
                    other => unreachable!("mutex slot holds {other:?}"),
                });
                MutexGuard {
                    model: Some((rt, id)),
                    inner: Some(self.take_cell()),
                }
            }
            None => MutexGuard {
                model: None,
                inner: Some(
                    self.cell
                        .lock()
                        .unwrap_or_else(sync::PoisonError::into_inner),
                ),
            },
        }
    }

    /// Try to acquire without blocking. Still a scheduling point under a
    /// model (the outcome of the race is what is being explored).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match ctx() {
            Some((rt, me)) => {
                let id = self.ensure(&rt);
                rt.yield_point(me, Condition::Always, "mutex.try_lock");
                let held = rt.read_resource(id, |r| match r {
                    Resource::Mutex { held } => *held,
                    other => unreachable!("mutex slot holds {other:?}"),
                });
                if held {
                    return None;
                }
                rt.update_resource(id, |r| match r {
                    Resource::Mutex { held } => *held = true,
                    other => unreachable!("mutex slot holds {other:?}"),
                });
                Some(MutexGuard {
                    model: Some((rt, id)),
                    inner: Some(self.take_cell()),
                })
            }
            None => match self.cell.try_lock() {
                Ok(g) => Some(MutexGuard {
                    model: None,
                    inner: Some(g),
                }),
                Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    model: None,
                    inner: Some(p.into_inner()),
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.cell
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data before the mirror so no schedule can observe
        // the mirror free while the std lock is still held.
        self.inner = None;
        if let Some((rt, id)) = self.model.take() {
            rt.update_resource(id, |r| match r {
                Resource::Mutex { held } => *held = false,
                other => unreachable!("mutex slot holds {other:?}"),
            });
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

/// Reader–writer lock; `read`/`write` never return errors. Scheduling
/// points under a model.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    id: ResourceId,
    cell: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    model: Option<(Arc<Rt>, usize)>,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    model: Option<(Arc<Rt>, usize)>,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            id: ResourceId::new(),
            cell: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.cell
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    fn ensure(&self, rt: &Rt) -> usize {
        self.id.get(rt, || Resource::RwLock {
            readers: 0,
            writer: false,
        })
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match ctx() {
            Some((rt, me)) => {
                let id = self.ensure(&rt);
                rt.yield_point(me, Condition::RwRead(id), "rwlock.read");
                rt.update_resource(id, |r| match r {
                    Resource::RwLock { readers, .. } => *readers += 1,
                    other => unreachable!("rwlock slot holds {other:?}"),
                });
                let g = match self.cell.try_read() {
                    Ok(g) => g,
                    Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        unreachable!("scheduler granted a read on a write-held rwlock")
                    }
                };
                RwLockReadGuard {
                    model: Some((rt, id)),
                    inner: Some(g),
                }
            }
            None => RwLockReadGuard {
                model: None,
                inner: Some(
                    self.cell
                        .read()
                        .unwrap_or_else(sync::PoisonError::into_inner),
                ),
            },
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match ctx() {
            Some((rt, me)) => {
                let id = self.ensure(&rt);
                rt.yield_point(me, Condition::RwWrite(id), "rwlock.write");
                rt.update_resource(id, |r| match r {
                    Resource::RwLock { writer, .. } => *writer = true,
                    other => unreachable!("rwlock slot holds {other:?}"),
                });
                let g = match self.cell.try_write() {
                    Ok(g) => g,
                    Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(sync::TryLockError::WouldBlock) => {
                        unreachable!("scheduler granted a write on a held rwlock")
                    }
                };
                RwLockWriteGuard {
                    model: Some((rt, id)),
                    inner: Some(g),
                }
            }
            None => RwLockWriteGuard {
                model: None,
                inner: Some(
                    self.cell
                        .write()
                        .unwrap_or_else(sync::PoisonError::into_inner),
                ),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.cell
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((rt, id)) = self.model.take() {
            rt.update_resource(id, |r| match r {
                Resource::RwLock { readers, .. } => *readers -= 1,
                other => unreachable!("rwlock slot holds {other:?}"),
            });
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((rt, id)) = self.model.take() {
            rt.update_resource(id, |r| match r {
                Resource::RwLock { writer, .. } => *writer = false,
                other => unreachable!("rwlock slot holds {other:?}"),
            });
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

/// Model-aware atomics. Each access is a scheduling point (atomics are
/// exactly where store/load interleavings matter); the values themselves
/// live in the matching `std` atomic, so `Ordering` is the std enum and
/// non-model code pays nothing but a thread-local check.
pub mod atomic {
    use crate::rt::{ctx, Condition};

    pub use std::sync::atomic::Ordering;

    fn interleave_here(op: &'static str) {
        if let Some((rt, me)) = ctx() {
            rt.yield_point(me, Condition::Always, op);
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $prim:ty) => {
            /// Instrumented counterpart of the same-named `std` atomic.
            #[derive(Debug, Default)]
            pub struct $name {
                cell: std::sync::atomic::$std,
            }

            impl $name {
                /// Create a new atomic.
                pub const fn new(v: $prim) -> Self {
                    $name {
                        cell: std::sync::atomic::$std::new(v),
                    }
                }

                /// Atomic load; scheduling point under a model.
                pub fn load(&self, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".load"));
                    self.cell.load(order)
                }

                /// Atomic store; scheduling point under a model.
                pub fn store(&self, v: $prim, order: Ordering) {
                    interleave_here(concat!(stringify!($name), ".store"));
                    self.cell.store(v, order);
                }

                /// Atomic swap; scheduling point under a model.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".swap"));
                    self.cell.swap(v, order)
                }

                /// Mutable access without synchronization.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.cell.get_mut()
                }

                /// Consume the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.cell.into_inner()
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $std:ident, $prim:ty) => {
            model_atomic!($name, $std, $prim);

            impl $name {
                /// Atomic add returning the previous value; scheduling
                /// point under a model.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".fetch_add"));
                    self.cell.fetch_add(v, order)
                }

                /// Atomic subtract returning the previous value;
                /// scheduling point under a model.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".fetch_sub"));
                    self.cell.fetch_sub(v, order)
                }

                /// Atomic max returning the previous value; scheduling
                /// point under a model.
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".fetch_max"));
                    self.cell.fetch_max(v, order)
                }

                /// Atomic min returning the previous value; scheduling
                /// point under a model.
                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".fetch_min"));
                    self.cell.fetch_min(v, order)
                }

                /// Atomic bitwise OR returning the previous value;
                /// scheduling point under a model.
                pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".fetch_or"));
                    self.cell.fetch_or(v, order)
                }

                /// Atomic bitwise AND returning the previous value;
                /// scheduling point under a model.
                pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                    interleave_here(concat!(stringify!($name), ".fetch_and"));
                    self.cell.fetch_and(v, order)
                }

                /// Atomic compare-exchange; scheduling point under a model.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    interleave_here(concat!(stringify!($name), ".compare_exchange"));
                    self.cell.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    model_atomic_int!(AtomicU64, AtomicU64, u64);
    model_atomic_int!(AtomicUsize, AtomicUsize, usize);
    model_atomic_int!(AtomicU32, AtomicU32, u32);
    model_atomic!(AtomicBool, AtomicBool, bool);

    impl AtomicBool {
        /// Atomic OR returning the previous value; scheduling point under
        /// a model.
        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            interleave_here("AtomicBool.fetch_or");
            self.cell.fetch_or(v, order)
        }
    }
}
