//! Loom-style bounded-exhaustive interleaving model checker.
//!
//! Concurrency bugs live in thread interleavings that stress tests sample
//! with vanishing probability. This crate explores them systematically:
//! wrap a concurrent scenario in [`model`] and build it from the
//! instrumented primitives in [`sync`], [`channel`] and [`thread`] — the
//! same signatures as the repo's `parking_lot`/`crossbeam` shims and
//! `std::thread`, so production code runs unmodified behind an import
//! swap. The runner executes the closure once per distinct thread
//! schedule, enumerating schedules by DFS with a preemption bound and
//! replaying each deterministically; any panic, failed assertion, or
//! deadlock is reported with the schedule trace that produced it.
//!
//! ```
//! use interleave::sync::Arc;
//! use interleave::sync::atomic::{AtomicU64, Ordering};
//!
//! let report = interleave::model(|| {
//!     let x = Arc::new(AtomicU64::new(0));
//!     let t = {
//!         let x = Arc::clone(&x);
//!         interleave::thread::spawn(move || x.fetch_add(1, Ordering::SeqCst))
//!     };
//!     x.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(x.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.exhausted);
//! ```
//!
//! Outside a [`model`] execution every primitive falls back to plain
//! blocking behavior, so binaries that link both model suites and
//! ordinary tests work unchanged.
//!
//! Model closures must be deterministic: no wall-clock reads, ambient
//! randomness, or control flow keyed on addresses/hash order that varies
//! between runs — the checker detects divergence during replay and
//! reports it as a nondeterministic model.

#![forbid(unsafe_code)]

mod rt;

pub mod channel;
pub mod sync;
pub mod thread;

pub use rt::{model, model_with, Config, Report};

#[cfg(test)]
mod tests {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Arc, Mutex};
    use crate::{channel, model, model_with, thread, Config};

    fn failure_message(f: impl Fn() + Send + Sync + 'static) -> String {
        let err = catch_unwind(AssertUnwindSafe(|| model(f)))
            .expect_err("model accepted a buggy scenario");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload should be a string")
    }

    #[test]
    fn finds_lost_update() {
        // A read-modify-write race on a plain shared counter: some
        // schedule interleaves the two load/store pairs and loses one
        // increment. The checker must find it and name the schedule.
        let msg = failure_message(|| {
            let x = Arc::new(AtomicU64::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let v = x.load(Ordering::SeqCst);
                        x.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(msg.contains("lost update"), "unexpected report: {msg}");
        assert!(msg.contains("schedule trace"), "missing trace: {msg}");
    }

    #[test]
    fn finds_ab_ba_deadlock() {
        let msg = failure_message(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join().unwrap();
        });
        assert!(msg.contains("deadlock"), "unexpected report: {msg}");
    }

    #[test]
    fn atomic_increments_are_exhaustively_verified() {
        let report = model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        x.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(x.load(Ordering::SeqCst), 2);
        });
        assert!(report.exhausted, "tiny model should be fully explored");
        assert!(report.schedules > 1, "no interleaving was explored");
    }

    #[test]
    fn mutex_protects_read_modify_write() {
        // The locked version of the lost-update scenario must pass on
        // every schedule.
        let report = model(|| {
            let x = Arc::new(Mutex::new(0u64));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || {
                        let mut g = x.lock();
                        *g += 1;
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(*x.lock(), 2);
        });
        assert!(report.exhausted);
        assert!(report.schedules > 1);
    }

    #[test]
    fn channel_backpressure_and_disconnect() {
        // A capacity-1 channel forces the producer to block mid-stream;
        // dropping the producer must surface as disconnect, in order, on
        // every schedule.
        let report = model(|| {
            let (tx, rx) = channel::bounded(2);
            let producer = thread::spawn(move || {
                tx.send(0u32).unwrap();
                tx.send(1u32).unwrap();
                tx.send(2u32).unwrap();
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2]);
            producer.join().unwrap();
        });
        assert!(report.exhausted);
        assert!(report.schedules > 1);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let report = model(|| {
            let (tx, rx) = channel::bounded(1);
            drop(rx);
            assert!(tx.send(7u32).is_err());
        });
        assert!(report.exhausted);
    }

    #[test]
    fn schedule_cap_is_respected() {
        let report = model_with(
            Config {
                preemptions: 3,
                max_schedules: 10,
                max_ops: 100_000,
            },
            || {
                let x = Arc::new(AtomicU64::new(0));
                let workers: Vec<_> = (0..3)
                    .map(|_| {
                        let x = Arc::clone(&x);
                        thread::spawn(move || {
                            for _ in 0..4 {
                                x.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().unwrap();
                }
            },
        );
        assert!(!report.exhausted, "3x4 ops cannot exhaust in 10 schedules");
        assert_eq!(report.schedules, 10);
    }

    #[test]
    fn fallback_primitives_work_outside_model() {
        // No model context here: everything must behave like the plain
        // blocking shims.
        let m = Arc::new(Mutex::new(0u64));
        let (tx, rx) = channel::bounded(2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                let tx = tx.clone();
                thread::spawn(move || {
                    *m.lock() += 1;
                    tx.send(i).unwrap();
                    i
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let mut ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(*m.lock(), 4);
    }

    #[test]
    fn replays_are_deterministic() {
        // Two identical runs over a contended scenario must explore the
        // same number of schedules to the same depth.
        fn run() -> crate::Report {
            model(|| {
                let x = Arc::new(Mutex::new(Vec::new()));
                let workers: Vec<_> = (0..2)
                    .map(|i| {
                        let x = Arc::clone(&x);
                        thread::spawn(move || x.lock().push(i))
                    })
                    .collect();
                for w in workers {
                    w.join().unwrap();
                }
                assert_eq!(x.lock().len(), 2);
            })
        }
        let (a, b) = (run(), run());
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.max_depth, b.max_depth);
    }
}
