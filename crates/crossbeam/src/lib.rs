//! Offline stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! Provides [`channel::bounded`] / [`channel::unbounded`] multi-producer
//! multi-consumer channels with crossbeam's disconnect semantics: cloning
//! tracks endpoint counts, dropping the last `Sender` wakes blocked
//! receivers with [`channel::RecvError`], and dropping the last `Receiver`
//! fails sends. Built on a `Mutex<VecDeque>` plus two condvars — correct
//! and fair enough for queue depths in the hundreds; not a lock-free
//! performance shim.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// None = unbounded.
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable for multi-producer use.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable for multi-consumer use.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Send failed: all receivers dropped. Returns the unsent value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Non-blocking send failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Channel at capacity; value returned.
        Full(T),
        /// All receivers dropped; value returned.
        Disconnected(T),
    }

    /// Receive failed: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing buffered right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Channel buffering at most `cap` messages; sends block when full.
    /// `cap = 0` is rounded up to 1 (true rendezvous is not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    /// Channel with no capacity bound; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn no_receivers(&self) -> bool {
            self.receivers.load(Ordering::Acquire) == 0
        }

        fn no_senders(&self) -> bool {
            self.senders.load(Ordering::Acquire) == 0
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued, or fail if all receivers are
        /// gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.no_receivers() {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = shared
                            .not_full
                            .wait(q)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let shared = &*self.shared;
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if shared.no_receivers() {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = shared.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives, or fail once the channel is empty
        /// with all senders gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if shared.no_senders() {
                    return Err(RecvError);
                }
                q = shared
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = q.pop_front() {
                drop(q);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.no_senders() {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake receivers so they observe disconnect.
                let _unused = self.shared.queue.lock();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders blocked on a full queue.
                let _unused = self.shared.queue.lock();
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvError, TryRecvError, TrySendError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = channel::bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.try_send(9), Err(TrySendError::Full(9)));
        assert_eq!(
            (0..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn blocking_send_resumes_after_recv() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).map(|_| true).unwrap_or(false));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn drop_of_all_senders_disconnects() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drop_of_all_receivers_fails_send() {
        let (tx, rx) = channel::bounded(2);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = channel::bounded(8);
        let n = 200;
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..n {
                        tx.send(p * n + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..2 * n).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_iter_drains_until_disconnect() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }
}
