//! Property-based tests: the three miners agree with each other and with a
//! brute-force oracle on random transaction databases, and the matcher
//! always produces legal assignments.

use fqos_fim::transaction::brute_force_pairs;
use fqos_fim::{match_design_blocks, Apriori, Eclat, FpGrowth, PairMiner, TransactionDb};
use proptest::prelude::*;

fn db_strategy() -> impl Strategy<Value = TransactionDb> {
    (
        2u32..20,
        prop::collection::vec(prop::collection::vec(0u32..20, 0..8), 0..40),
    )
        .prop_map(|(num_items, txs)| {
            let txs: Vec<Vec<u32>> = txs
                .into_iter()
                .map(|t| t.into_iter().map(|i| i % num_items).collect())
                .collect();
            TransactionDb::from_transactions(txs, num_items)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn miners_agree_with_oracle(db in db_strategy(), support in 1u32..5) {
        let oracle = brute_force_pairs(&db, support);
        prop_assert_eq!(&Apriori.mine_pairs(&db, support), &oracle, "apriori");
        prop_assert_eq!(&Eclat.mine_pairs(&db, support), &oracle, "eclat");
        prop_assert_eq!(&FpGrowth.mine_pairs(&db, support), &oracle, "fp-growth");
    }

    #[test]
    fn support_is_monotone(db in db_strategy()) {
        // Raising min_support can only shrink the result set, and every
        // surviving pair keeps its exact support.
        let low = Apriori.mine_pairs(&db, 1);
        let high = Apriori.mine_pairs(&db, 3);
        prop_assert!(high.len() <= low.len());
        for p in &high {
            prop_assert!(p.support >= 3);
            prop_assert!(low.contains(p));
        }
    }

    #[test]
    fn matcher_assignments_are_in_range(db in db_strategy(), d in 1usize..40) {
        let pairs = Apriori.mine_pairs(&db, 1);
        let m = match_design_blocks(&pairs, d);
        for p in &pairs {
            prop_assert!(m.bucket_for(p.a) < d);
            prop_assert!(m.bucket_for(p.b) < d);
            prop_assert!(m.is_matched(p.a) && m.is_matched(p.b));
        }
        // Unseen blocks use modulo.
        prop_assert_eq!(m.bucket_for(10_000_019), (10_000_019 % d as u64) as usize);
    }

    #[test]
    fn matcher_separates_when_colors_suffice(db in db_strategy()) {
        // With more design blocks than pair-graph degree+1, a perfect
        // separation always exists, and greedy achieves it because a
        // zero-conflict color is always available.
        let pairs = Apriori.mine_pairs(&db, 1);
        let m = match_design_blocks(&pairs, 64);
        // Max degree in the pair graph is < 20 items < 64 colors.
        prop_assert_eq!(m.separation_quality(&pairs), 1.0);
    }
}
