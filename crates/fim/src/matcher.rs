//! Matching data blocks to design blocks from mined frequent pairs (§IV-A).
//!
//! "Matching of the design blocks to the data blocks is done by using the
//! information returned by the FIM such that the data blocks requested
//! together are mapped to the different design blocks. The data blocks that
//! are not returned by FIM … are matched to the design block number returned
//! by `dataBlockNumber % numberOfDesignBlocks`."
//!
//! Internally this is weighted graph coloring with `D` colors: blocks are
//! vertices, frequent pairs are edges weighted by support, and we greedily
//! color in descending order of incident support, picking the color that
//! minimizes conflict weight (breaking ties toward the globally least-used
//! color so buckets stay balanced).

use crate::transaction::FrequentPair;
use std::collections::HashMap;

/// A data-block → design-block assignment with modulo fallback.
#[derive(Debug, Clone)]
pub struct BlockMatcher {
    assignment: HashMap<u64, usize>,
    num_design_blocks: usize,
}

impl BlockMatcher {
    /// An empty matcher: every block falls back to modulo (the paper's
    /// behaviour for the first interval, before any history exists).
    pub fn empty(num_design_blocks: usize) -> Self {
        assert!(num_design_blocks > 0);
        BlockMatcher {
            assignment: HashMap::new(),
            num_design_blocks,
        }
    }

    /// Number of design blocks `D`.
    pub fn num_design_blocks(&self) -> usize {
        self.num_design_blocks
    }

    /// The design block (bucket) for a data block: the mined assignment if
    /// present, else `lbn % D`.
    pub fn bucket_for(&self, lbn: u64) -> usize {
        match self.assignment.get(&lbn) {
            Some(&d) => d,
            None => (lbn % self.num_design_blocks as u64) as usize,
        }
    }

    /// Whether this block was matched by mining (vs. modulo fallback).
    pub fn is_matched(&self, lbn: u64) -> bool {
        self.assignment.contains_key(&lbn)
    }

    /// Number of explicitly matched blocks.
    pub fn matched_blocks(&self) -> usize {
        self.assignment.len()
    }

    /// Fraction of the given requests whose block was matched by mining —
    /// the Fig. 11 metric when fed the *next* interval's requests.
    pub fn matched_fraction(&self, lbns: impl IntoIterator<Item = u64>) -> f64 {
        let (mut matched, mut total) = (0usize, 0usize);
        for lbn in lbns {
            total += 1;
            if self.is_matched(lbn) {
                matched += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            matched as f64 / total as f64
        }
    }

    /// Fraction of the supplied pairs whose two blocks map to *different*
    /// design blocks under this matcher — a quality diagnostic of the
    /// coloring (1.0 = every mined pair parallelizable).
    pub fn separation_quality(&self, pairs: &[FrequentPair]) -> f64 {
        if pairs.is_empty() {
            return 1.0;
        }
        let separated = pairs
            .iter()
            .filter(|p| self.bucket_for(p.a) != self.bucket_for(p.b))
            .count();
        separated as f64 / pairs.len() as f64
    }
}

/// Build a matcher from mined pairs by weighted greedy coloring.
pub fn match_design_blocks(pairs: &[FrequentPair], num_design_blocks: usize) -> BlockMatcher {
    assert!(num_design_blocks > 0);
    if pairs.is_empty() {
        return BlockMatcher::empty(num_design_blocks);
    }

    // Adjacency with support weights, plus total incident weight per block.
    let mut adj: HashMap<u64, Vec<(u64, u32)>> = HashMap::new();
    for p in pairs {
        adj.entry(p.a).or_default().push((p.b, p.support));
        adj.entry(p.b).or_default().push((p.a, p.support));
    }
    let mut order: Vec<u64> = adj.keys().copied().collect();
    let weight = |lbn: &u64| -> u64 { adj[lbn].iter().map(|&(_, s)| s as u64).sum() };
    order.sort_by_key(|lbn| (std::cmp::Reverse(weight(lbn)), *lbn));

    let mut assignment: HashMap<u64, usize> = HashMap::new();
    let mut color_use = vec![0usize; num_design_blocks];
    let mut conflict = vec![0u64; num_design_blocks];
    for lbn in order {
        // Conflict weight per color from already-colored neighbours.
        conflict.iter_mut().for_each(|c| *c = 0);
        for &(nbr, support) in &adj[&lbn] {
            if let Some(&c) = assignment.get(&nbr) {
                conflict[c] += support as u64;
            }
        }
        let best = (0..num_design_blocks)
            .min_by_key(|&c| (conflict[c], color_use[c], c))
            .expect("at least one design block");
        color_use[best] += 1;
        assignment.insert(lbn, best);
    }
    BlockMatcher {
        assignment,
        num_design_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u64, b: u64, support: u32) -> FrequentPair {
        FrequentPair {
            a: a.min(b),
            b: a.max(b),
            support,
        }
    }

    #[test]
    fn empty_matcher_is_modulo() {
        let m = BlockMatcher::empty(36);
        assert_eq!(m.bucket_for(0), 0);
        assert_eq!(m.bucket_for(37), 1);
        assert!(!m.is_matched(0));
        assert_eq!(m.matched_fraction(vec![1, 2, 3]), 0.0);
    }

    #[test]
    fn paired_blocks_get_different_design_blocks() {
        let pairs = vec![pair(10, 20, 5), pair(10, 30, 3), pair(20, 30, 2)];
        let m = match_design_blocks(&pairs, 36);
        assert_eq!(m.matched_blocks(), 3);
        assert_ne!(m.bucket_for(10), m.bucket_for(20));
        assert_ne!(m.bucket_for(10), m.bucket_for(30));
        assert_ne!(m.bucket_for(20), m.bucket_for(30));
        assert_eq!(m.separation_quality(&pairs), 1.0);
    }

    #[test]
    fn over_constrained_graph_minimizes_heavy_conflicts() {
        // 4 mutually-paired blocks but only 2 design blocks: some conflict
        // is unavoidable; the heaviest pairs must be separated.
        let pairs = vec![
            pair(1, 2, 100),
            pair(3, 4, 90),
            pair(1, 3, 1),
            pair(2, 4, 1),
            pair(1, 4, 1),
            pair(2, 3, 1),
        ];
        let m = match_design_blocks(&pairs, 2);
        assert_ne!(
            m.bucket_for(1),
            m.bucket_for(2),
            "heaviest pair must separate"
        );
        assert_ne!(
            m.bucket_for(3),
            m.bucket_for(4),
            "second-heaviest pair must separate"
        );
    }

    #[test]
    fn matched_fraction_counts_requests_not_blocks() {
        let pairs = vec![pair(10, 20, 5)];
        let m = match_design_blocks(&pairs, 36);
        // 3 requests, 2 of them matched blocks.
        let f = m.matched_fraction(vec![10, 20, 999]);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coloring_balances_design_block_usage() {
        // 100 isolated pairs → 200 blocks; usage per design block should be
        // near 200/36 ≈ 5.6, never wildly skewed.
        let pairs: Vec<FrequentPair> = (0..100)
            .map(|i| pair(1000 + 2 * i, 1001 + 2 * i, 1))
            .collect();
        let m = match_design_blocks(&pairs, 36);
        let mut use_count = vec![0usize; 36];
        for i in 0..100u64 {
            use_count[m.bucket_for(1000 + 2 * i)] += 1;
            use_count[m.bucket_for(1001 + 2 * i)] += 1;
        }
        assert!(use_count.iter().all(|&u| u <= 8), "{use_count:?}");
    }
}
