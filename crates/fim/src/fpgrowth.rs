//! FP-Growth: frequent-pattern tree mining (Han, Pei & Yin, SIGMOD 2000).
//!
//! Transactions are inserted into a prefix tree with items ordered by
//! descending support; shared prefixes compress the database. For set size
//! 2 the mining step is a single tree walk: every node contributes its
//! count to the pair (node item, ancestor item) for each ancestor.

use crate::transaction::{lbn_pair, FrequentPair, PairMiner, TransactionDb};
use std::collections::HashMap;

/// FP-Growth pair miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpGrowth;

#[derive(Debug)]
struct Node {
    item: u32,
    count: u32,
    parent: usize,
    /// Child lookup: item → node index.
    children: HashMap<u32, usize>,
}

impl PairMiner for FpGrowth {
    fn name(&self) -> &'static str {
        "fp-growth"
    }

    fn mine_pairs(&self, db: &TransactionDb, min_support: u32) -> Vec<FrequentPair> {
        let min_support = min_support.max(1);

        // Item supports and frequency order.
        let mut item_support = vec![0u32; db.num_items()];
        for t in db.transactions() {
            for &i in t {
                item_support[i as usize] += 1;
            }
        }
        // rank[item] = position in descending-support order (frequent only).
        let mut order: Vec<u32> = (0..db.num_items() as u32)
            .filter(|&i| item_support[i as usize] >= min_support)
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(item_support[i as usize]));
        let mut rank = vec![u32::MAX; db.num_items()];
        for (r, &i) in order.iter().enumerate() {
            rank[i as usize] = r as u32;
        }

        // Build the FP-tree. Node 0 is the root.
        let mut nodes = vec![Node {
            item: u32::MAX,
            count: 0,
            parent: usize::MAX,
            children: HashMap::new(),
        }];
        let mut sorted_tx: Vec<u32> = Vec::new();
        for t in db.transactions() {
            sorted_tx.clear();
            sorted_tx.extend(t.iter().copied().filter(|&i| rank[i as usize] != u32::MAX));
            sorted_tx.sort_by_key(|&i| rank[i as usize]);
            let mut cur = 0usize;
            for &item in &sorted_tx {
                cur = match nodes[cur].children.get(&item) {
                    Some(&c) => {
                        nodes[c].count += 1;
                        c
                    }
                    None => {
                        let idx = nodes.len();
                        nodes.push(Node {
                            item,
                            count: 1,
                            parent: cur,
                            children: HashMap::new(),
                        });
                        nodes[cur].children.insert(item, idx);
                        idx
                    }
                };
            }
        }

        // Mine pairs: each node's count flows to (node item, every ancestor).
        let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
        for idx in 1..nodes.len() {
            let item = nodes[idx].item;
            let count = nodes[idx].count;
            let mut anc = nodes[idx].parent;
            while anc != 0 {
                *pair_counts.entry((nodes[anc].item, item)).or_insert(0) += count;
                anc = nodes[anc].parent;
            }
        }

        let mut out: Vec<FrequentPair> = pair_counts
            .into_iter()
            .filter(|&(_, c)| c >= min_support)
            .map(|((x, y), support)| {
                let (a, b) = lbn_pair(db, x, y);
                FrequentPair { a, b, support }
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn peak_bytes_estimate(&self, db: &TransactionDb, pairs_found: usize) -> usize {
        // Upper bound: one tree node per item occurrence (no sharing) at
        // ~64 B per node, plus the pair map.
        db.total_occurrences() * 64 + pairs_found * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::brute_force_pairs;

    #[test]
    fn matches_brute_force() {
        let db = TransactionDb::from_transactions(
            vec![
                vec![0, 1, 2, 4],
                vec![1, 2, 3],
                vec![0, 2, 3],
                vec![0, 1, 3],
                vec![0, 1, 2, 3],
                vec![4],
                vec![2, 4],
            ],
            5,
        );
        for support in 1..=5 {
            assert_eq!(
                FpGrowth.mine_pairs(&db, support),
                brute_force_pairs(&db, support),
                "support {support}"
            );
        }
    }

    #[test]
    fn tree_compression_preserves_counts() {
        // Many identical transactions share one path; the pair count must be
        // the transaction count, not 1.
        let db = TransactionDb::from_transactions(vec![vec![3, 7]; 50], 8);
        let pairs = FpGrowth.mine_pairs(&db, 1);
        assert_eq!(
            pairs,
            vec![FrequentPair {
                a: 3,
                b: 7,
                support: 50
            }]
        );
    }

    #[test]
    fn infrequent_items_are_pruned_before_tree_build() {
        let db = TransactionDb::from_transactions(vec![vec![0, 1], vec![0, 1], vec![0, 2]], 3);
        // With support 2, item 2 is infrequent → only pair (0,1).
        let pairs = FpGrowth.mine_pairs(&db, 2);
        assert_eq!(
            pairs,
            vec![FrequentPair {
                a: 0,
                b: 1,
                support: 2
            }]
        );
    }

    #[test]
    fn all_three_miners_agree() {
        use crate::{Apriori, Eclat};
        let db = TransactionDb::from_transactions(
            vec![
                vec![0, 2, 4, 6, 8],
                vec![1, 3, 5, 7],
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
                vec![0, 4, 8],
                vec![2, 6],
            ],
            9,
        );
        for support in 1..=3 {
            let a = Apriori.mine_pairs(&db, support);
            assert_eq!(
                a,
                Eclat.mine_pairs(&db, support),
                "eclat, support {support}"
            );
            assert_eq!(
                a,
                FpGrowth.mine_pairs(&db, support),
                "fp-growth, support {support}"
            );
        }
    }
}
