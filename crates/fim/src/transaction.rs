//! Transactions, frequent pairs and the miner interface.

use std::collections::HashMap;
use std::time::Instant;

/// A transaction database: each transaction is the set of distinct blocks
/// requested within one time window `T` ("we first investigate the trace of
/// the storage system and determine the data blocks that are requested
/// within a short time interval T", §IV-A).
///
/// Block numbers (LBNs) are dictionary-compressed to dense item ids.
#[derive(Debug, Clone, Default)]
pub struct TransactionDb {
    /// Transactions; items are dense ids, sorted and deduplicated.
    transactions: Vec<Vec<u32>>,
    /// Item id → original LBN.
    item_to_lbn: Vec<u64>,
}

impl TransactionDb {
    /// Build from timed block requests `(time_ns, lbn)`, windowing by
    /// `window_ns`. Events need not be sorted; windows are absolute
    /// (`time / window_ns`).
    pub fn from_timed_events(events: impl IntoIterator<Item = (u64, u64)>, window_ns: u64) -> Self {
        assert!(window_ns > 0);
        let mut lbn_to_item: HashMap<u64, u32> = HashMap::new();
        let mut item_to_lbn = Vec::new();
        let mut windows: HashMap<u64, Vec<u32>> = HashMap::new();
        for (t, lbn) in events {
            let item = *lbn_to_item.entry(lbn).or_insert_with(|| {
                item_to_lbn.push(lbn);
                (item_to_lbn.len() - 1) as u32
            });
            windows.entry(t / window_ns).or_default().push(item);
        }
        let mut keys: Vec<u64> = windows.keys().copied().collect();
        keys.sort_unstable();
        let transactions = keys
            .into_iter()
            .map(|k| {
                let mut items = windows.remove(&k).unwrap();
                items.sort_unstable();
                items.dedup();
                items
            })
            .collect();
        TransactionDb {
            transactions,
            item_to_lbn,
        }
    }

    /// Build directly from item-id transactions (tests, benchmarks).
    pub fn from_transactions(transactions: Vec<Vec<u32>>, num_items: u32) -> Self {
        let mut txs = transactions;
        for t in &mut txs {
            t.sort_unstable();
            t.dedup();
            assert!(t.iter().all(|&i| i < num_items));
        }
        TransactionDb {
            transactions: txs,
            item_to_lbn: (0..num_items as u64).collect(),
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True if there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Number of distinct items (blocks).
    pub fn num_items(&self) -> usize {
        self.item_to_lbn.len()
    }

    /// The transactions (dense item ids, each sorted + deduplicated).
    pub fn transactions(&self) -> &[Vec<u32>] {
        &self.transactions
    }

    /// Original LBN of a dense item id.
    pub fn lbn_of(&self, item: u32) -> u64 {
        self.item_to_lbn[item as usize]
    }

    /// Total item occurrences (Σ transaction sizes) — the "request size"
    /// column of Table IV.
    pub fn total_occurrences(&self) -> usize {
        self.transactions.iter().map(std::vec::Vec::len).sum()
    }
}

/// A frequent block pair, reported in original LBN space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FrequentPair {
    /// Smaller LBN.
    pub a: u64,
    /// Larger LBN.
    pub b: u64,
    /// Number of transactions containing both.
    pub support: u32,
}

/// Resource report of one mining run (the Table IV columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningReport {
    /// Wall-clock mining time in seconds.
    pub seconds: f64,
    /// Estimated peak working-set bytes of the miner's data structures.
    pub peak_bytes: usize,
    /// Number of frequent pairs found.
    pub pairs_found: usize,
}

/// A size-2 frequent itemset miner.
pub trait PairMiner {
    /// Algorithm name.
    fn name(&self) -> &'static str;

    /// Mine all pairs with support ≥ `min_support`, reported in LBN space,
    /// sorted by `(a, b)`.
    fn mine_pairs(&self, db: &TransactionDb, min_support: u32) -> Vec<FrequentPair>;

    /// Mine and report wall time plus an estimate of peak memory.
    fn mine_pairs_with_report(
        &self,
        db: &TransactionDb,
        min_support: u32,
    ) -> (Vec<FrequentPair>, MiningReport) {
        let start = Instant::now();
        let pairs = self.mine_pairs(db, min_support);
        let seconds = start.elapsed().as_secs_f64();
        let report = MiningReport {
            seconds,
            peak_bytes: self.peak_bytes_estimate(db, pairs.len()),
            pairs_found: pairs.len(),
        };
        (pairs, report)
    }

    /// Estimated peak bytes for mining `db` (algorithm-specific).
    fn peak_bytes_estimate(&self, db: &TransactionDb, pairs_found: usize) -> usize;
}

/// Brute-force oracle used by tests: count all pairs per transaction.
pub fn brute_force_pairs(db: &TransactionDb, min_support: u32) -> Vec<FrequentPair> {
    let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
    for t in db.transactions() {
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                *counts.entry((t[i], t[j])).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<FrequentPair> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .map(|((x, y), support)| {
            let (a, b) = lbn_pair(db, x, y);
            FrequentPair { a, b, support }
        })
        .collect();
    out.sort_unstable();
    out
}

/// Map an item pair to an ordered LBN pair.
pub(crate) fn lbn_pair(db: &TransactionDb, x: u32, y: u32) -> (u64, u64) {
    let (la, lb) = (db.lbn_of(x), db.lbn_of(y));
    if la < lb {
        (la, lb)
    } else {
        (lb, la)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowing_groups_and_dedups() {
        let events = vec![(0u64, 100u64), (10, 200), (15, 100), (120, 300), (130, 300)];
        let db = TransactionDb::from_timed_events(events, 100);
        assert_eq!(db.len(), 2);
        assert_eq!(db.transactions()[0].len(), 2); // {100, 200}, dedup of 100
        assert_eq!(db.transactions()[1].len(), 1); // {300}
        assert_eq!(db.num_items(), 3);
    }

    #[test]
    fn item_dictionary_roundtrip() {
        let db = TransactionDb::from_timed_events(vec![(0, 42), (1, 7)], 10);
        let items: Vec<u64> = (0..db.num_items() as u32).map(|i| db.lbn_of(i)).collect();
        assert!(items.contains(&42) && items.contains(&7));
    }

    #[test]
    fn brute_force_counts_supports() {
        let db = TransactionDb::from_transactions(
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![0, 1],
            ],
            3,
        );
        let pairs = brute_force_pairs(&db, 2);
        // (0,1): 3, (0,2): 2, (1,2): 2.
        assert_eq!(pairs.len(), 3);
        assert_eq!(
            pairs[0],
            FrequentPair {
                a: 0,
                b: 1,
                support: 3
            }
        );
        let high = brute_force_pairs(&db, 3);
        assert_eq!(high.len(), 1);
    }

    #[test]
    fn total_occurrences_counts_items() {
        let db = TransactionDb::from_transactions(vec![vec![0, 1], vec![2]], 3);
        assert_eq!(db.total_occurrences(), 3);
    }
}
