//! Apriori with low-memory pair counting.
//!
//! The classical Apriori level-wise idea specialised for set size 2 the way
//! `fim apriori-lowmem` (Rácz et al., OSDM'05) does it: first count item
//! supports and prune infrequent items (downward closure: a frequent pair
//! consists of two frequent items), then count only pairs of frequent items
//! in a hash map during a second pass. No candidate list is materialized —
//! the "lowmem" trick — so memory is `O(#items + #co-occurring pairs)`.

use crate::transaction::{lbn_pair, FrequentPair, PairMiner, TransactionDb};
use std::collections::HashMap;

/// Apriori (low-memory variant) pair miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Apriori;

impl PairMiner for Apriori {
    fn name(&self) -> &'static str {
        "apriori-lowmem"
    }

    fn mine_pairs(&self, db: &TransactionDb, min_support: u32) -> Vec<FrequentPair> {
        let min_support = min_support.max(1);

        // Pass 1: item supports.
        let mut item_support = vec![0u32; db.num_items()];
        for t in db.transactions() {
            for &i in t {
                item_support[i as usize] += 1;
            }
        }
        let frequent: Vec<bool> = item_support.iter().map(|&s| s >= min_support).collect();

        // Pass 2: count pairs of frequent items per transaction.
        let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
        let mut kept: Vec<u32> = Vec::new();
        for t in db.transactions() {
            kept.clear();
            kept.extend(t.iter().copied().filter(|&i| frequent[i as usize]));
            for i in 0..kept.len() {
                for j in (i + 1)..kept.len() {
                    *pair_counts.entry((kept[i], kept[j])).or_insert(0) += 1;
                }
            }
        }

        let mut out: Vec<FrequentPair> = pair_counts
            .into_iter()
            .filter(|&(_, c)| c >= min_support)
            .map(|((x, y), support)| {
                let (a, b) = lbn_pair(db, x, y);
                FrequentPair { a, b, support }
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn peak_bytes_estimate(&self, db: &TransactionDb, pairs_found: usize) -> usize {
        // Item-support array + pair hash map (key 8B + value 4B + hashmap
        // overhead ≈ 2×); pairs_found underestimates live entries (pruned
        // pairs were counted too), so scale by a conservative factor.
        let item_bytes = db.num_items() * 4;
        let pair_entries = (pairs_found.max(1)) * 4; // counted-but-pruned headroom
        item_bytes + pair_entries * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::brute_force_pairs;

    #[test]
    fn matches_brute_force_on_small_db() {
        let db = TransactionDb::from_transactions(
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2],
                vec![0, 1],
                vec![2, 3],
                vec![0, 3],
                vec![1, 2, 3],
            ],
            4,
        );
        for support in 1..=4 {
            assert_eq!(
                Apriori.mine_pairs(&db, support),
                brute_force_pairs(&db, support),
                "support {support}"
            );
        }
    }

    #[test]
    fn support_pruning_reduces_output() {
        let db = TransactionDb::from_transactions(
            vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![2, 3]],
            4,
        );
        assert_eq!(Apriori.mine_pairs(&db, 1).len(), 2);
        assert_eq!(Apriori.mine_pairs(&db, 2).len(), 1);
        assert_eq!(Apriori.mine_pairs(&db, 4).len(), 0);
    }

    #[test]
    fn reports_lbn_space() {
        let db = TransactionDb::from_timed_events(vec![(0, 5000), (1, 9000), (2, 5000)], 100);
        let pairs = Apriori.mine_pairs(&db, 1);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (5000, 9000));
    }

    #[test]
    fn empty_db() {
        let db = TransactionDb::default();
        assert!(Apriori.mine_pairs(&db, 1).is_empty());
    }

    #[test]
    fn report_includes_time_and_memory() {
        let db = TransactionDb::from_transactions(vec![vec![0, 1]; 100], 2);
        let (pairs, report) = Apriori.mine_pairs_with_report(&db, 1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(report.pairs_found, 1);
        assert!(report.seconds >= 0.0);
        assert!(report.peak_bytes > 0);
    }
}
