//! General frequent-itemset mining (arbitrary set size) and association
//! rules.
//!
//! The QoS framework only needs size-2 itemsets, but the paper's §IV-A
//! describes the general FIM problem ("x customers who bought item1 also
//! bought item2 … y who bought item1 and item2 together also bought item3")
//! — this module provides it: level-wise Apriori with candidate generation
//! and a recursive Eclat, cross-checked against each other, plus
//! association-rule extraction with support/confidence.

use crate::transaction::TransactionDb;
use std::collections::HashMap;

/// A frequent itemset in LBN space, items sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FrequentItemset {
    /// Sorted member blocks.
    pub items: Vec<u64>,
    /// Number of transactions containing all members.
    pub support: u32,
}

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Sorted antecedent items.
    pub antecedent: Vec<u64>,
    /// Sorted consequent items (disjoint from the antecedent).
    pub consequent: Vec<u64>,
    /// Support of the full itemset.
    pub support: u32,
    /// `support(A ∪ C) / support(A)`.
    pub confidence: f64,
}

/// Level-wise Apriori: mine all frequent itemsets of size `2..=max_k`.
pub fn apriori_itemsets(
    db: &TransactionDb,
    min_support: u32,
    max_k: usize,
) -> Vec<FrequentItemset> {
    let min_support = min_support.max(1);
    if max_k < 2 || db.is_empty() {
        return Vec::new();
    }

    // L1: frequent items (dense ids).
    let mut item_support = vec![0u32; db.num_items()];
    for t in db.transactions() {
        for &i in t {
            item_support[i as usize] += 1;
        }
    }
    let frequent_item: Vec<bool> = item_support.iter().map(|&s| s >= min_support).collect();

    // Pre-filter transactions to frequent items only.
    let filtered: Vec<Vec<u32>> = db
        .transactions()
        .iter()
        .map(|t| {
            t.iter()
                .copied()
                .filter(|&i| frequent_item[i as usize])
                .collect()
        })
        .collect();

    let mut out = Vec::new();
    // Current level: sorted itemsets (as Vec<u32>) with supports.
    let mut level: Vec<Vec<u32>> = count_level(&filtered, &candidates_from_items(&frequent_item))
        .into_iter()
        .filter(|(_, s)| *s >= min_support)
        .map(|(set, s)| {
            out.push(to_lbn_itemset(db, &set, s));
            set
        })
        .collect();
    level.sort();

    let mut k = 2;
    while k < max_k && !level.is_empty() {
        let candidates = generate_candidates(&level);
        let counted = count_level(&filtered, &candidates);
        let mut next: Vec<Vec<u32>> = Vec::new();
        for (set, s) in counted {
            if s >= min_support {
                out.push(to_lbn_itemset(db, &set, s));
                next.push(set);
            }
        }
        next.sort();
        level = next;
        k += 1;
    }
    out.sort();
    out
}

/// Recursive Eclat over vertical tid-lists, sizes `2..=max_k`.
pub fn eclat_itemsets(db: &TransactionDb, min_support: u32, max_k: usize) -> Vec<FrequentItemset> {
    let min_support = min_support.max(1);
    if max_k < 2 || db.is_empty() {
        return Vec::new();
    }
    let mut tidlists: Vec<Vec<u32>> = vec![Vec::new(); db.num_items()];
    for (tid, t) in db.transactions().iter().enumerate() {
        for &i in t {
            tidlists[i as usize].push(tid as u32);
        }
    }
    let frequent: Vec<u32> = (0..db.num_items() as u32)
        .filter(|&i| tidlists[i as usize].len() as u32 >= min_support)
        .collect();

    let mut out = Vec::new();
    // Depth-first: extend prefix with items greater than the last.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        prefix: &mut Vec<u32>,
        prefix_tids: &[u32],
        candidates: &[u32],
        tidlists: &[Vec<u32>],
        min_support: u32,
        max_k: usize,
        db: &TransactionDb,
        out: &mut Vec<FrequentItemset>,
    ) {
        for (ci, &item) in candidates.iter().enumerate() {
            let tids = intersect(prefix_tids, &tidlists[item as usize]);
            if (tids.len() as u32) < min_support {
                continue;
            }
            prefix.push(item);
            if prefix.len() >= 2 {
                out.push(to_lbn_itemset(db, prefix, tids.len() as u32));
            }
            if prefix.len() < max_k {
                recurse(
                    prefix,
                    &tids,
                    &candidates[ci + 1..],
                    tidlists,
                    min_support,
                    max_k,
                    db,
                    out,
                );
            }
            prefix.pop();
        }
    }

    for (fi, &first) in frequent.iter().enumerate() {
        let mut prefix = vec![first];
        recurse(
            &mut prefix,
            &tidlists[first as usize],
            &frequent[fi + 1..],
            &tidlists,
            min_support,
            max_k,
            db,
            &mut out,
        );
    }
    out.sort();
    out
}

/// Extract association rules with `confidence >= min_confidence` from a set
/// of frequent itemsets (single-item consequents, as in the classical
/// formulation).
pub fn association_rules(
    itemsets: &[FrequentItemset],
    min_confidence: f64,
) -> Vec<AssociationRule> {
    // Support lookup for all itemsets and their (frequent) subsets.
    let support_of: HashMap<&[u64], u32> = itemsets
        .iter()
        .map(|f| (f.items.as_slice(), f.support))
        .collect();
    let mut rules = Vec::new();
    for f in itemsets {
        if f.items.len() < 2 {
            continue;
        }
        for (i, &c) in f.items.iter().enumerate() {
            let mut antecedent = f.items.clone();
            antecedent.remove(i);
            // Antecedent support: from the table for size >= 2; rules with
            // single-item antecedents need item supports which itemsets of
            // size >= 2 don't carry — skip those unless present.
            let Some(&a_support) = support_of.get(antecedent.as_slice()) else {
                continue;
            };
            let confidence = f.support as f64 / a_support as f64;
            if confidence >= min_confidence {
                rules.push(AssociationRule {
                    antecedent,
                    consequent: vec![c],
                    support: f.support,
                    confidence,
                });
            }
        }
    }
    rules
}

fn candidates_from_items(frequent: &[bool]) -> Vec<Vec<u32>> {
    let items: Vec<u32> = (0..frequent.len() as u32)
        .filter(|&i| frequent[i as usize])
        .collect();
    let mut out = Vec::new();
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            out.push(vec![items[i], items[j]]);
        }
    }
    out
}

/// Classical Apriori candidate generation: join two frequent k-sets sharing
/// a (k−1)-prefix, then prune candidates with an infrequent subset.
fn generate_candidates(level: &[Vec<u32>]) -> Vec<Vec<u32>> {
    use std::collections::HashSet;
    let level_set: HashSet<&[u32]> = level.iter().map(std::vec::Vec::as_slice).collect();
    let mut out = Vec::new();
    for i in 0..level.len() {
        for j in (i + 1)..level.len() {
            let (a, b) = (&level[i], &level[j]);
            let k = a.len();
            if a[..k - 1] != b[..k - 1] {
                // `level` is sorted, so once prefixes diverge no later j
                // matches either.
                break;
            }
            let mut cand = a.clone();
            cand.push(b[k - 1].max(a[k - 1]));
            cand[k - 1] = a[k - 1].min(b[k - 1]);
            // Prune: every k-subset must be frequent.
            let mut ok = true;
            let mut sub = cand.clone();
            #[allow(clippy::needless_range_loop)] // `drop` drives remove/insert
            for drop in 0..cand.len() {
                sub.remove(drop);
                if !level_set.contains(sub.as_slice()) {
                    ok = false;
                }
                sub.insert(drop, cand[drop]);
                if !ok {
                    break;
                }
            }
            if ok {
                out.push(cand);
            }
        }
    }
    out
}

fn count_level(transactions: &[Vec<u32>], candidates: &[Vec<u32>]) -> Vec<(Vec<u32>, u32)> {
    let mut counts: HashMap<&[u32], u32> = candidates.iter().map(|c| (c.as_slice(), 0)).collect();
    for t in transactions {
        for c in candidates {
            if is_subset(c, t) {
                *counts.get_mut(c.as_slice()).unwrap() += 1;
            }
        }
    }
    candidates
        .iter()
        .map(|c| (c.clone(), counts[c.as_slice()]))
        .collect()
}

fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    // Both sorted.
    let mut it = haystack.iter();
    'outer: for &n in needle {
        for &h in it.by_ref() {
            if h == n {
                continue 'outer;
            }
            if h > n {
                return false;
            }
        }
        return false;
    }
    true
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn to_lbn_itemset(db: &TransactionDb, items: &[u32], support: u32) -> FrequentItemset {
    let mut lbns: Vec<u64> = items.iter().map(|&i| db.lbn_of(i)).collect();
    lbns.sort_unstable();
    FrequentItemset {
        items: lbns,
        support,
    }
}

/// Brute-force oracle for tests: enumerate all subsets of every transaction.
pub fn brute_force_itemsets(
    db: &TransactionDb,
    min_support: u32,
    max_k: usize,
) -> Vec<FrequentItemset> {
    let mut counts: HashMap<Vec<u32>, u32> = HashMap::new();
    for t in db.transactions() {
        let n = t.len();
        for mask in 1u64..(1 << n) {
            let size = mask.count_ones() as usize;
            if size < 2 || size > max_k {
                continue;
            }
            let subset: Vec<u32> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| t[i])
                .collect();
            *counts.entry(subset).or_insert(0) += 1;
        }
    }
    let mut out: Vec<FrequentItemset> = counts
        .into_iter()
        .filter(|&(_, s)| s >= min_support)
        .map(|(set, s)| to_lbn_itemset(db, &set, s))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::from_transactions(
            vec![
                vec![0, 1, 2, 3],
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2, 3],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
            ],
            4,
        )
    }

    #[test]
    fn apriori_matches_brute_force() {
        let db = db();
        for support in 1..=4 {
            for max_k in 2..=4 {
                assert_eq!(
                    apriori_itemsets(&db, support, max_k),
                    brute_force_itemsets(&db, support, max_k),
                    "support {support}, max_k {max_k}"
                );
            }
        }
    }

    #[test]
    fn eclat_matches_apriori() {
        let db = db();
        for support in 1..=4 {
            for max_k in 2..=4 {
                assert_eq!(
                    eclat_itemsets(&db, support, max_k),
                    apriori_itemsets(&db, support, max_k),
                    "support {support}, max_k {max_k}"
                );
            }
        }
    }

    #[test]
    fn size2_agrees_with_pair_miners() {
        use crate::{Apriori, PairMiner};
        let db = db();
        let pairs = Apriori.mine_pairs(&db, 2);
        let sets = apriori_itemsets(&db, 2, 2);
        assert_eq!(pairs.len(), sets.len());
        for (p, s) in pairs.iter().zip(&sets) {
            assert_eq!(vec![p.a, p.b], s.items);
            assert_eq!(p.support, s.support);
        }
    }

    #[test]
    fn triple_supports_are_exact() {
        let db = db();
        let sets = apriori_itemsets(&db, 1, 3);
        let t123 = sets.iter().find(|f| f.items == vec![1, 2, 3]).unwrap();
        assert_eq!(t123.support, 3); // transactions 0, 4, 5
        let t012 = sets.iter().find(|f| f.items == vec![0, 1, 2]).unwrap();
        assert_eq!(t012.support, 3); // transactions 0, 1, 5
    }

    #[test]
    fn rules_have_correct_confidence() {
        let db = db();
        let sets = apriori_itemsets(&db, 1, 3);
        let rules = association_rules(&sets, 0.0);
        // {1,2} ⇒ 3: support({1,2,3}) = 3, support({1,2}) = 4 → 0.75.
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec![1, 2] && r.consequent == vec![3])
            .expect("rule {1,2} ⇒ 3 exists");
        assert_eq!(r.support, 3);
        assert!((r.confidence - 0.75).abs() < 1e-12);
        // Confidence filter works.
        let high = association_rules(&sets, 0.9);
        assert!(high.iter().all(|r| r.confidence >= 0.9));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = TransactionDb::default();
        assert!(apriori_itemsets(&empty, 1, 3).is_empty());
        assert!(eclat_itemsets(&empty, 1, 3).is_empty());
        let db = db();
        assert!(apriori_itemsets(&db, 1, 1).is_empty());
        assert!(apriori_itemsets(&db, 100, 3).is_empty());
    }
}
