//! Frequent Itemset Mining and design-block matching (§IV-A).
//!
//! The storage system has far more data blocks than the design has blocks,
//! so data blocks must be matched onto design blocks. The paper's insight:
//! blocks *frequently requested together* should land on **different**
//! design blocks so they can be fetched in parallel. It mines the previous
//! interval's trace for frequent block pairs (set size 2) and assigns
//! matched blocks accordingly; everything else falls back to
//! `lbn % numDesignBlocks`.
//!
//! # Contents
//!
//! * [`transaction`] — time-window transaction extraction from traces.
//! * [`apriori`] — Apriori with low-memory pair counting (the paper uses
//!   the `fim apriori-lowmem` implementation of Rácz et al.).
//! * [`eclat`] — vertical tid-list mining (Zaki).
//! * [`fpgrowth`] — FP-tree mining (Han et al.).
//! * [`matcher`] — frequent pairs → design-block assignment.
//!
//! All three miners produce identical frequent-pair sets (tested against
//! each other and against a brute-force oracle).
//!
//! # Example
//!
//! ```
//! use fqos_fim::{match_design_blocks, Apriori, PairMiner, TransactionDb};
//!
//! // Blocks 100 and 200 are requested together in every window.
//! let events = vec![(0u64, 100u64), (5, 200), (1000, 100), (1005, 200)];
//! let db = TransactionDb::from_timed_events(events, 133);
//! let pairs = Apriori.mine_pairs(&db, 2);
//! assert_eq!(pairs.len(), 1);
//!
//! // The matcher places them on different design blocks.
//! let matcher = match_design_blocks(&pairs, 36);
//! assert_ne!(matcher.bucket_for(100), matcher.bucket_for(200));
//! ```

pub mod apriori;
pub mod eclat;
pub mod fpgrowth;
pub mod itemsets;
pub mod matcher;
pub mod transaction;

pub use apriori::Apriori;
pub use eclat::Eclat;
pub use fpgrowth::FpGrowth;
pub use itemsets::{apriori_itemsets, association_rules, AssociationRule, FrequentItemset};
pub use matcher::{match_design_blocks, BlockMatcher};
pub use transaction::{FrequentPair, MiningReport, PairMiner, TransactionDb};
