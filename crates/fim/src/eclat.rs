//! Eclat: vertical tid-list mining (Zaki, TKDE 2000).
//!
//! Each item carries the sorted list of transaction ids containing it; the
//! support of a pair is the size of the intersection of the two lists.
//! Intersections are only computed for pairs that actually co-occur
//! (gathered in a cheap horizontal pass), not all `F²` frequent-item pairs.

use crate::transaction::{lbn_pair, FrequentPair, PairMiner, TransactionDb};
use std::collections::HashSet;

/// Eclat pair miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Eclat;

impl PairMiner for Eclat {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine_pairs(&self, db: &TransactionDb, min_support: u32) -> Vec<FrequentPair> {
        let min_support = min_support.max(1);

        // Vertical representation: tid-lists per item.
        let mut tidlists: Vec<Vec<u32>> = vec![Vec::new(); db.num_items()];
        for (tid, t) in db.transactions().iter().enumerate() {
            for &i in t {
                tidlists[i as usize].push(tid as u32);
            }
        }
        let frequent: Vec<bool> = tidlists
            .iter()
            .map(|l| l.len() as u32 >= min_support)
            .collect();

        // Candidate pairs: pairs of frequent items that co-occur at least
        // once.
        let mut candidates: HashSet<(u32, u32)> = HashSet::new();
        let mut kept: Vec<u32> = Vec::new();
        for t in db.transactions() {
            kept.clear();
            kept.extend(t.iter().copied().filter(|&i| frequent[i as usize]));
            for i in 0..kept.len() {
                for j in (i + 1)..kept.len() {
                    candidates.insert((kept[i], kept[j]));
                }
            }
        }

        let mut out: Vec<FrequentPair> = candidates
            .into_iter()
            .filter_map(|(x, y)| {
                let support = intersection_size(&tidlists[x as usize], &tidlists[y as usize]);
                if support >= min_support {
                    let (a, b) = lbn_pair(db, x, y);
                    Some(FrequentPair { a, b, support })
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn peak_bytes_estimate(&self, db: &TransactionDb, pairs_found: usize) -> usize {
        // Tid-lists hold every item occurrence as a u32, plus the candidate
        // set.
        db.total_occurrences() * 4 + pairs_found * 16
    }
}

/// Size of the intersection of two sorted tid-lists (merge scan).
fn intersection_size(a: &[u32], b: &[u32]) -> u32 {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::brute_force_pairs;

    #[test]
    fn intersection_basics() {
        assert_eq!(intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[5], &[5]), 1);
    }

    #[test]
    fn matches_brute_force() {
        let db = TransactionDb::from_transactions(
            vec![
                vec![0, 1, 2],
                vec![1, 2, 3],
                vec![0, 2, 3],
                vec![0, 1, 3],
                vec![0, 1, 2, 3],
            ],
            4,
        );
        for support in 1..=5 {
            assert_eq!(
                Eclat.mine_pairs(&db, support),
                brute_force_pairs(&db, support),
                "support {support}"
            );
        }
    }

    #[test]
    fn agrees_with_apriori() {
        use crate::apriori::Apriori;
        let db = TransactionDb::from_transactions(
            vec![
                vec![0, 5, 9],
                vec![0, 5],
                vec![9, 5],
                vec![1, 2, 3, 4],
                vec![0, 9],
            ],
            10,
        );
        for support in 1..=3 {
            assert_eq!(
                Eclat.mine_pairs(&db, support),
                Apriori.mine_pairs(&db, support)
            );
        }
    }
}
