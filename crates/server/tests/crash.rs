//! Crash-consistency suite: every named WAL crash point is driven through
//! a real process death and a real recovery.
//!
//! Each test replays a seeded trace in a subprocess (the `crash_child`
//! test below, re-exec'd via [`common::crash_child_entry`]) with a
//! write-ahead log at `fsync_batch = 1`, arms one `FQOS_CRASH_POINT`, lets
//! the child abort mid-run, then recovers the log in-process and audits
//! the durability contract:
//!
//! * recovery never loses an acknowledged admission (`admitted ≥ acked`),
//! * recovery never resurrects more than the one admission that could
//!   have been logged-but-unacked at the instant of death,
//! * the conservation law `served + fault_lost + hedges_cancelled ==
//!   admitted_total` holds over the durable record, and
//! * every tenant's in-flight ledger drains to zero.
//!
//! Reproduce any failure with `FQOS_TEST_SEED=<seed> cargo test` (see
//! `tests/common/mod.rs`).

mod common;

use common::{qos, scratch_path, Scenario};
use fqos_core::OverloadPolicy;
use fqos_server::{QosServer, RegisterError, ServerConfig};

/// Subprocess entry point: a no-op unless the parent armed
/// `FQOS_CRASH_CHILD` (see `common::crash_child_entry`).
#[test]
fn crash_child() {
    common::crash_child_entry();
}

/// The standard crash workload: two delay-policy tenants at an aggregate
/// 4 requests per window on a (9, 3, 2) deployment for 30 windows —
/// ~120 admissions, ~30 seals, ~7 compactions at the harness's
/// `snapshot_interval = 4`, so every crash point below has hits to land on.
fn crash_scenario(stream: u64) -> Scenario {
    Scenario::sized(9, 3, 2)
        .windows(30)
        .stream(stream)
        .tenant(1, 2, OverloadPolicy::Delay)
        .tenant(2, 2, OverloadPolicy::Delay)
}

/// Run one trace → crash → recover → verify cycle and return
/// `(acked, recovered metrics)`.
fn run_point(stream: u64, point: Option<&str>) -> (u64, fqos_server::MetricsSnapshot) {
    let scenario = crash_scenario(stream);
    let wal_dir = scratch_path(&format!("wal-{stream}"));
    let run = scenario.spawn_with_crash_point("crash_child", &wal_dir, point);
    assert_eq!(
        run.aborted,
        point.is_some(),
        "crash point {point:?}: child exit shape"
    );
    let m = scenario.recover_and_verify(&wal_dir);
    assert!(
        m.admitted_total() >= run.acked,
        "recovery lost acked admissions: admitted {} < acked {}",
        m.admitted_total(),
        run.acked
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
    (run.acked, m)
}

/// A record that dies in the userspace buffer (before its fsync) was never
/// acknowledged, so recovery restores exactly the acked set.
#[test]
fn recovery_after_a_pre_fsync_append_crash_restores_exactly_the_acked_set() {
    let (acked, m) = run_point(10, Some("wal-append-pre-fsync:25"));
    assert!(acked >= 24, "the 25th admit implies at least 24 acks");
    assert_eq!(
        m.admitted_total(),
        acked,
        "a pre-fsync record was never acked and must not be restored"
    );
}

/// A torn final frame (partial write + crash) is truncated on resume; the
/// half-written record was never acked.
#[test]
fn recovery_after_a_torn_tail_crash_truncates_and_restores_the_acked_set() {
    let (acked, m) = run_point(11, Some("wal-append-torn:40"));
    assert!(acked > 0, "the 40th flush lands mid-trace");
    assert_eq!(
        m.admitted_total(),
        acked,
        "a torn record was never acked and must not survive truncation"
    );
}

/// A crash between the durable admit record and the submit-time ack leaves
/// exactly one restorable-but-unacked admission.
#[test]
fn recovery_after_a_post_admit_pre_ack_crash_restores_one_extra_admission() {
    let (acked, m) = run_point(12, Some("post-admit-pre-ack:30"));
    assert_eq!(
        m.admitted_total(),
        acked + 1,
        "the durable-but-unacked admission must be restored, and only it"
    );
}

/// A crash in the middle of a seal's settlement batch: the seal record is
/// durable, part of its settle batch may not be. Recovery re-derives the
/// missing settlements as crash losses — nothing acked disappears and
/// nothing is double-counted.
#[test]
fn recovery_after_a_mid_seal_crash_rederives_the_unsettled_residue() {
    let (acked, m) = run_point(13, Some("seal-mid-batch:10"));
    assert!(
        m.admitted_total() - acked <= 1,
        "at most the one in-flight submit can be unacked: admitted {} acked {}",
        m.admitted_total(),
        acked
    );
}

/// A crash between the snapshot rename and the log truncate: the snapshot
/// and the stale log tail overlap by LSN, and resume must apply each
/// record at most once.
#[test]
fn recovery_after_a_mid_compaction_crash_does_not_double_apply_the_log() {
    let (acked, m) = run_point(14, Some("compact-mid-swap:3"));
    assert!(m.wal_compactions > 0 || m.admitted_total() > 0);
    assert!(
        m.admitted_total() - acked <= 1,
        "snapshot + stale tail must replay idempotently: admitted {} acked {}",
        m.admitted_total(),
        acked
    );
}

/// A crash between the last replica landing and the write's settle record:
/// the fan-out group is fully programmed on flash but never settled in the
/// log, so recovery must resolve the whole logical write as crash-lost —
/// once, not once per replica — and the extended law still closes.
#[test]
fn recovery_after_a_mid_write_settle_crash_resolves_the_group_once() {
    let scenario = crash_scenario(17).write_fraction(0.5);
    let wal_dir = scratch_path("wal-write-settle");
    let run = scenario.spawn_with_crash_point("crash_child", &wal_dir, Some("wal-write-settle:8"));
    assert!(
        run.aborted,
        "the 8th write settle lands well inside the trace"
    );
    let m = scenario.recover_and_verify(&wal_dir);
    assert!(
        m.admitted_total() >= run.acked,
        "recovery lost acked admissions: admitted {} < acked {}",
        m.admitted_total(),
        run.acked
    );
    assert!(
        m.write_settled + m.fault_lost > 0,
        "at least the seven pre-crash settles (or their crash-loss \
         residues) must survive recovery"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Without a crash the WAL round-trips losslessly: recovery finds every
/// acked admission already settled and re-parks nothing.
#[test]
fn a_clean_run_recovers_with_nothing_to_replay_into_flight() {
    let (acked, m) = run_point(15, None);
    assert_eq!(m.admitted_total(), acked, "clean WAL must match the acks");
    assert_eq!(
        m.recovered_admissions, 0,
        "a cleanly finished log has no open admissions to re-park"
    );
}

/// PR 6's `DrainPending` protection survives a crash: a tenant that
/// departed with unsettled in-flight admissions is restored departed, its
/// id is refused for re-registration until the residue drains, and the
/// drained ledger balances.
#[test]
fn a_drain_pending_departure_survives_recovery_and_still_refuses_the_id() {
    let scenario = crash_scenario(16).deregister_after(2);
    let wal_dir = scratch_path("wal-drain");
    let run = scenario.spawn_with_crash_point("crash_child", &wal_dir, None);
    assert!(run.aborted, "the deregister-then-abort child must die");
    let server = QosServer::recover(scenario.wal_config(&wal_dir)).expect("recover");
    match server.register(2, 2, OverloadPolicy::Delay) {
        Err(RegisterError::DrainPending { in_flight }) => {
            assert!(in_flight > 0, "the departed record must carry residue");
        }
        other => panic!("expected DrainPending for the departed id, got {other:?}"),
    }
    let m = server.finish();
    assert_eq!(
        m.served + m.fault_lost + m.hedges_cancelled,
        m.admitted_total(),
        "drained departure accounting diverges"
    );
    let departed = m.tenants.iter().find(|t| t.tenant == 2).expect("tenant 2");
    assert!(!departed.live, "tenant 2 must be restored departed");
    assert_eq!(departed.in_flight(), 0, "residue must drain to zero");
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// A corrupt frame in the *middle* of the log (bit rot, not a torn
/// tail): replay folds every record before it, stops at the first bad
/// CRC, truncates the file there, and reports the cut via
/// `wal_replay_truncated` — and a second recovery is then clean.
#[test]
fn recovery_stops_at_a_corrupt_mid_file_frame_and_truncates() {
    let wal_dir = scratch_path("wal-bitrot");
    let cfg = || {
        ServerConfig::new(qos(9, 3, 2))
            .with_workers(2)
            .with_wal(&wal_dir)
            .with_wal_fsync_batch(1)
            // No compaction: keep every frame in wal.log so a mid-file
            // corruption site exists after a clean shutdown.
            .with_wal_snapshot_interval(u64::MAX)
    };
    let interval = qos(9, 3, 2).interval_ns;
    let server = QosServer::new(cfg()).expect("server");
    server
        .register(1, 2, OverloadPolicy::Delay)
        .expect("register");
    let mut h = server.handle();
    for w in 0..12u64 {
        h.submit(1, w % 14, w * interval + interval / 4);
        h.submit(1, (w + 5) % 14, w * interval + interval / 2);
    }
    drop(h);
    let clean = server.finish();
    assert_eq!(clean.admitted_total(), 24, "clean run admits everything");

    // Flip one payload byte in a frame halfway through the log. Frames
    // are `[lsn u64][len u32][crc u32][payload]`, little-endian.
    let log_path = wal_dir.join("wal.log");
    let mut bytes = std::fs::read(&log_path).expect("read log");
    let mut offsets = Vec::new();
    let mut off = 0usize;
    while off + 16 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        assert!(off + 16 + len <= bytes.len(), "clean log has a torn tail");
        offsets.push(off);
        off += 16 + len;
    }
    assert!(offsets.len() >= 8, "need a mid-file frame to corrupt");
    let victim = offsets[offsets.len() / 2];
    bytes[victim + 16] ^= 0xFF;
    std::fs::write(&log_path, &bytes).expect("write corrupted log");

    let recovered = QosServer::recover(cfg()).expect("recover");
    assert_eq!(
        recovered.metrics().wal_replay_truncated,
        1,
        "the mid-file cut must be reported"
    );
    let m = recovered.finish();
    assert!(
        m.admitted_total() > 0,
        "records before the corruption must replay"
    );
    assert!(
        m.admitted_total() < clean.admitted_total(),
        "records past the corrupt frame must not replay: {} vs {}",
        m.admitted_total(),
        clean.admitted_total()
    );
    assert_eq!(
        m.served + m.fault_lost + m.hedges_cancelled,
        m.admitted_total(),
        "conservation must hold over the surviving prefix"
    );

    // The first recovery truncated the bad tail and re-snapshotted:
    // resuming again finds nothing to cut.
    let again = QosServer::recover(cfg()).expect("second recover");
    assert_eq!(
        again.metrics().wal_replay_truncated,
        0,
        "second recovery must be clean"
    );
    let _ = again.finish();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// The window ring wraps correctly across a recovery boundary: a tiny
/// 8-slot ring is lapped more than twice before a clean shutdown, then
/// recovery resumes the window sequence and laps it twice more. Window
/// numbering (and slot reuse: slot = window mod 8) must stay coherent
/// through the restart, and the combined ledger must balance.
#[test]
fn the_window_ring_survives_a_double_lap_across_the_recovery_boundary() {
    let wal_dir = scratch_path("wal-lap");
    let cfg = || {
        ServerConfig::new(qos(9, 3, 2))
            .with_workers(2)
            .with_queue_depth(8)
            .with_ring_slots(8)
            .with_delay_horizon(2)
            .with_wal(&wal_dir)
            .with_wal_fsync_batch(1)
            .with_wal_snapshot_interval(4)
    };
    let interval = qos(9, 3, 2).interval_ns;
    let first = QosServer::new(cfg()).expect("server");
    first
        .register(1, 2, OverloadPolicy::Delay)
        .expect("register");
    let mut h = first.handle();
    for w in 0..20u64 {
        // Two requests per window, fixed offsets: laps the 8-slot ring
        // two and a half times.
        h.submit(1, w % 14, w * interval + interval / 4);
        h.submit(1, (w + 5) % 14, w * interval + interval / 2);
    }
    drop(h);
    let before = first.finish();
    assert_eq!(before.admitted_total(), 40, "first run admits everything");

    let second = QosServer::recover(cfg()).expect("recover");
    assert_eq!(
        second.metrics().recovered_admissions,
        0,
        "a cleanly finished log re-parks nothing"
    );
    let mut h = second.handle();
    for w in 20..36u64 {
        h.submit(1, w % 14, w * interval + interval / 4);
        h.submit(1, (w + 5) % 14, w * interval + interval / 2);
    }
    drop(h);
    let after = second.finish();
    assert_eq!(
        after.admitted_total(),
        72,
        "restored counters must carry across the boundary"
    );
    assert_eq!(
        after.served + after.fault_lost + after.hedges_cancelled,
        after.admitted_total(),
        "combined ledger diverges across the recovery boundary"
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}
