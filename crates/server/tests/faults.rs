//! Deterministic fault-injection suite: seeded traces replayed against
//! scripted device failure schedules (and live injections), auditing the
//! paper's degraded-mode contract end to end:
//!
//! * with at most `c − 1` co-hosted failures every admitted request still
//!   meets its interval deadline and nothing admitted is lost,
//! * requests whose every replica is down are rejected — never stalled or
//!   silently dropped,
//! * recovery restores the full `S(M)` capacity,
//! * the 1024-slot window ring recycles fault-plane views correctly when
//!   a long run laps it.
//!
//! Reproduce any failure with `FQOS_TEST_SEED=<seed> cargo test` (see
//! `tests/common/mod.rs`).

mod common;

use common::{assert_guarantee_held, bucket_replicas, qos, Scenario};
use fqos_core::OverloadPolicy;
use fqos_server::{
    AssignmentMode, FaultSchedule, FtlGeometry, GcConfig, MetricsSnapshot, QosServer, RejectReason,
    ServerConfig, SubmitOutcome, WINDOW_RING,
};
use rand::Rng;

/// The headline scenario from the issue: a (9,3,1) array at M = 2
/// (S(2) = 14, degraded cap 2 × 8 = 16) loses device 0 mid-run and gets
/// it back 20 windows later, while three tenants replay a seeded trace at
/// an aggregate 10 requests per window. The replay must complete with
/// zero deadline misses and zero lost requests, and the degraded-window
/// and re-route counters must show the failure actually carried traffic.
#[test]
fn scripted_midwindow_failure_meets_every_deadline() {
    for (stream, mode) in [(1, AssignmentMode::OptimalFlow), (2, AssignmentMode::Eft)] {
        let r = Scenario::new(
            qos(9, 3, 2),
            FaultSchedule::new().fail(0, 20).recover(0, 40),
        )
        .mode(mode)
        .windows(60)
        .stream(stream)
        .tenant(1, 4, OverloadPolicy::Delay)
        .tenant(2, 3, OverloadPolicy::Delay)
        // Delay everywhere: EFT's greedy placement can call a window
        // Full on unlucky replica draws even under capacity, and Delay
        // absorbs that into the next window instead of rejecting.
        .tenant(3, 3, OverloadPolicy::Delay)
        .replay();
        assert_guarantee_held(&r);
        let m = &r.metrics;
        assert_eq!(m.rejected, 0, "{mode:?}: load is within capacity");
        assert_eq!(m.served, 60 * 10, "{mode:?}: full trace served");
        assert!(
            m.degraded_windows >= 20,
            "{mode:?}: windows 20..40 ran degraded, saw {}",
            m.degraded_windows
        );
        assert!(
            m.fault_reroutes > 0,
            "{mode:?}: a third of all buckets touch device 0"
        );
    }
}

/// Failing every replica of one bucket (≥ c co-hosted failures) makes that
/// bucket unavailable: submissions naming it must come back
/// `Rejected(ReplicasUnavailable)` promptly while other buckets keep
/// being served — no stall, no silent drop.
#[test]
fn co_hosted_failures_reject_instead_of_stalling() {
    let dead_bucket = 0u64;
    let failed = bucket_replicas(9, 3, dead_bucket);
    let mut schedule = FaultSchedule::new();
    for &d in &failed {
        schedule = schedule.fail(d, 0);
    }
    // Rotations can give other buckets the same replica triple; they are
    // just as dead, so keep the background traffic off them too.
    let doomed: Vec<u64> = (0..36u64)
        .filter(|&b| bucket_replicas(9, 3, b).iter().all(|d| failed.contains(d)))
        .collect();
    assert!(doomed.contains(&dead_bucket));
    let server =
        QosServer::new(ServerConfig::new(qos(9, 3, 2)).with_fault_schedule(schedule)).unwrap();
    server.register(1, 4, OverloadPolicy::Delay).unwrap();
    let mut h = server.handle();
    let t = 2 * 133_000u64;
    let mut rng = common::rng(3);
    let (mut unavailable, mut admitted) = (0u64, 0u64);
    for w in 0..40u64 {
        // One doomed request per window plus seeded background traffic.
        match h.submit(1, dead_bucket, w * t) {
            SubmitOutcome::Rejected(RejectReason::ReplicasUnavailable) => unavailable += 1,
            other => panic!("dead bucket must be refused, got {other:?}"),
        }
        for _ in 0..3 {
            let lbn = rng.gen_range(0..36u64);
            if !doomed.contains(&lbn) && h.submit(1, lbn, w * t + 1).is_admitted() {
                admitted += 1;
            }
        }
    }
    drop(h);
    let m = server.finish();
    assert_eq!(unavailable, 40);
    assert_eq!(m.fault_rejected, 40);
    assert!(admitted > 0, "survivor buckets keep flowing");
    assert_eq!(m.served, m.admitted_total(), "no stall, no loss");
    assert_eq!(m.fault_lost, 0);
    assert_eq!(m.guaranteed_violations, 0);
}

/// On a (7,3,1) array at M = 2 the healthy guarantee S(2) = 14 exceeds
/// the one-failure degraded cap 2 × 6 = 12, so a full-rate tenant must
/// see admissions tightened (delayed into later windows) while the
/// device is down — and the full rate restored after recovery. Nothing
/// may miss a deadline either way.
#[test]
fn recovery_restores_full_capacity() {
    let r = Scenario::new(
        qos(7, 3, 2),
        FaultSchedule::new().fail(0, 10).recover(0, 20),
    )
    .windows(40)
    .stream(4)
    .tenant(1, 14, OverloadPolicy::Delay)
    .replay();
    assert_guarantee_held(&r);
    let m = &r.metrics;
    assert!(
        m.delayed > 0,
        "degraded cap 12 < S(2) = 14 must defer the excess"
    );
    assert!(m.degraded_windows >= 10);
    assert!(m.max_window_guaranteed <= 14);
    assert_eq!(m.served, 40 * 14, "recovery drains the backlog");
}

/// A live (unscripted) injection between windows: in-flight admissions on
/// the failing device are drained to survivors at seal, later admissions
/// steer clear of it, and recovery re-opens it — all without losing a
/// request or missing a deadline.
#[test]
fn live_injection_drains_inflight_to_survivors() {
    let deployment = qos(9, 3, 1); // S(1) = 5 ≤ 8 = degraded cap
    let t = deployment.interval_ns;
    let server = QosServer::new(ServerConfig::new(deployment)).unwrap();
    server.register(1, 5, OverloadPolicy::Delay).unwrap();
    let mut h = server.handle();
    let mut rng = common::rng(5);
    let mut submitted = 0u64;
    for w in 0..40u64 {
        if w == 10 {
            h.inject_fault(0).unwrap();
        }
        if w == 30 {
            h.recover_device(0).unwrap();
        }
        for i in 0..5u64 {
            let lbn = rng.gen_range(0..36u64);
            assert!(h.submit(1, lbn, w * t + i).is_admitted());
            submitted += 1;
        }
    }
    drop(h);
    let m = server.finish();
    assert_eq!(m.served, submitted, "every admission survived the failure");
    assert_eq!(m.fault_lost, 0, "drained work lands on survivors");
    assert!(m.degraded_windows > 0);
    assert!(
        m.fault_reroutes > 0,
        "post-injection admissions steer around device 0"
    );
    // A live injection can strand an already-admitted window on an
    // infeasible surviving subgraph (e.g. repeated draws of one bucket
    // whose live replicas collapse); the engine then overloads a survivor
    // and audits the late finish. Deadlines are unconditionally clean
    // exactly when that never happened — and every miss must be charged.
    assert_eq!(
        m.deadline_violations, m.guaranteed_violations,
        "ε = 0: every admission is guaranteed, so the audits must agree"
    );
    if m.fault_overloads == 0 {
        assert_eq!(m.deadline_violations, 0);
    }
}

/// One deterministic fail-slow replay: device 2 silently serves 10× slow
/// over windows 10..110 of a 200-window (9,3,1) run at 3 requests per
/// window. Returns the final metrics and the admitted count.
fn replay_fail_slow(hedging: bool) -> (MetricsSnapshot, u64) {
    let deployment = qos(9, 3, 1);
    let t = deployment.interval_ns;
    let server = QosServer::new(
        ServerConfig::new(deployment)
            .with_fault_schedule(FaultSchedule::new().slow(2, 10, 10).restore(2, 110))
            .with_hedging(hedging),
    )
    .unwrap();
    server.register(1, 3, OverloadPolicy::Delay).unwrap();
    let mut h = server.handle();
    let mut rng = common::rng(7);
    let mut admitted = 0u64;
    for w in 0..200u64 {
        for i in 0..3u64 {
            let lbn = rng.gen_range(0..36u64);
            if h.submit(1, lbn, w * t + i).is_admitted() {
                admitted += 1;
            }
        }
    }
    drop(h);
    (server.finish(), admitted)
}

/// The headline fail-slow scenario: a device goes silently 10× slow
/// mid-run — admission is never told. With hedging on, the scorer
/// condemns it from observed latencies, seal-time drains re-dispatch its
/// queued blocks, and speculative reads on sibling replicas keep ≥ 99% of
/// admissions inside the interval deadline. With hedging off (the control
/// arm, same seeded trace), the tail demonstrably blows through the
/// deadline — proving the reaction path, not the workload, is what saves
/// the run.
#[test]
fn fail_slow_hedging_keeps_the_tail_inside_the_deadline() {
    let (on, admitted_on) = replay_fail_slow(true);
    assert_eq!(on.admitted_total(), admitted_on);
    assert!(on.slow_detected >= 1, "scorer must condemn device 2");
    assert!(on.hedges_issued > 0, "slow primaries must hedge");
    assert!(
        on.hedges_won > 0,
        "a 10× primary always loses to a clean hedge"
    );
    assert_eq!(
        on.hedges_won, on.hedges_cancelled,
        "each hedge win cancels exactly one primary"
    );
    assert_eq!(
        on.served + on.fault_lost + on.hedges_cancelled,
        on.admitted_total(),
        "conservation under fail-slow"
    );
    assert_eq!(
        on.fault_lost, 0,
        "slow is not fail-stop: nothing may be lost"
    );
    let (off, admitted_off) = replay_fail_slow(false);
    assert_eq!(off.admitted_total(), admitted_off);
    assert_eq!(off.hedges_issued, 0, "control arm must not speculate");
    assert_eq!(
        off.served + off.fault_lost,
        off.admitted_total(),
        "conservation without hedging"
    );
    assert!(
        off.deadline_violations * 100 > off.admitted_total(),
        "hedging off: only {} misses of {} admitted — the control arm \
         no longer demonstrates the failure mode",
        off.deadline_violations,
        off.admitted_total()
    );
    // The tail claim is relative: hedging must eliminate the bulk of the
    // misses the control arm demonstrates. An absolute budget (this used
    // to be 1%) is a knife-edge under single-core scheduler jitter — the
    // scorer's condemnation point shifts with worker interleaving — while
    // a broken reaction path lands at the control arm's full miss count.
    assert!(
        on.deadline_violations * 2 <= off.deadline_violations,
        "hedging on: {} misses vs {} unhedged — hedging no longer \
         shortens the tail",
        on.deadline_violations,
        off.deadline_violations
    );
    assert!(
        on.deadline_violations * 20 <= on.admitted_total(),
        "hedging on: {} misses of {} admitted exceeds 5%",
        on.deadline_violations,
        on.admitted_total()
    );
}

/// Live (unscripted) degradation: `degrade_device` starts a silent 10×
/// slowdown mid-run with admission left blind, exactly like the scripted
/// path; `restore_device` returns the device to calibrated speed. The
/// scorer must detect it and conservation must hold end to end.
#[test]
fn live_degradation_is_detected_and_conserved() {
    let deployment = qos(9, 3, 1);
    let t = deployment.interval_ns;
    let server = QosServer::new(ServerConfig::new(deployment)).unwrap();
    server.register(1, 3, OverloadPolicy::Delay).unwrap();
    let mut h = server.handle();
    let mut rng = common::rng(8);
    let mut admitted = 0u64;
    for w in 0..80u64 {
        if w == 10 {
            h.degrade_device(0, 10).unwrap();
        }
        if w == 40 {
            h.restore_device(0).unwrap();
        }
        for i in 0..3u64 {
            let lbn = rng.gen_range(0..36u64);
            if h.submit(1, lbn, w * t + i).is_admitted() {
                admitted += 1;
            }
        }
    }
    drop(h);
    let m = server.finish();
    assert_eq!(m.admitted_total(), admitted);
    assert!(m.slow_detected >= 1, "live degradation must be detected");
    assert_eq!(m.hedges_won, m.hedges_cancelled);
    assert_eq!(
        m.served + m.fault_lost + m.hedges_cancelled,
        m.admitted_total()
    );
    assert_eq!(m.fault_lost, 0);
}

/// Wraparound regression: lap the 1024-slot window ring twice with a
/// failure early in the first lap and another after the ring has
/// recycled those slots, so stale fault-plane views would be caught.
#[test]
fn window_ring_wraparound_recycles_fault_views() {
    let windows = 2 * WINDOW_RING as u64 + 50;
    let schedule = FaultSchedule::new()
        .fail(2, 40)
        .recover(2, 90)
        // Same slot indices, one full lap later: the ring must see the
        // fresh mask, not the lap-one view.
        .fail(5, WINDOW_RING as u64 + 40)
        .recover(5, WINDOW_RING as u64 + 90);
    let r = Scenario::new(qos(9, 3, 1), schedule)
        .windows(windows)
        .stream(6)
        .tenant(1, 2, OverloadPolicy::Delay)
        .replay();
    assert_guarantee_held(&r);
    let m = &r.metrics;
    assert_eq!(m.served, windows * 2);
    assert!(
        m.windows_sealed >= 2 * WINDOW_RING as u64,
        "run must lap the ring twice, sealed {}",
        m.windows_sealed
    );
    assert!(
        m.degraded_windows >= 100,
        "both laps' failure spans ran degraded, saw {}",
        m.degraded_windows
    );
}

/// The GC-storm robustness claim, deterministically: sustained writes on a
/// low-over-provisioning FTL trigger garbage collection whose relocation
/// and erase stalls interfere with reads. The array must degrade
/// gracefully — writes shed into later windows at admission, the extended
/// conservation law closes, no write loses a replica — and hedging must
/// carry the read guarantee: ≥ 99% of reads meet their deadline with
/// hedging on, measurably more misses with it off.
#[test]
fn gc_storm_sheds_writes_and_hedging_holds_read_compliance() {
    let storm = |hedging: bool| {
        // 48 pages per device with 25% held back: every handful of write
        // windows fills the free pool and forces an erase. Erases cost a
        // sixteenth of a block read — enough to shove an exactly-packed
        // replica past its deadline, small enough that a hedge to an idle
        // replica still lands in time.
        let geometry = FtlGeometry {
            dies: 1,
            blocks_per_die: 12,
            pages_per_block: 4,
            overprovision: 0.25,
        };
        let mut gc = GcConfig::new(geometry);
        gc.erase_ns = fqos_flashsim::BLOCK_READ_NS / 16;
        Scenario::new(qos(9, 3, 2), FaultSchedule::new())
            .windows(400)
            .stream(11)
            .hedging(hedging)
            .write_fraction(0.5)
            .gc(gc)
            .tenant(1, 2, OverloadPolicy::Delay)
            .tenant(2, 1, OverloadPolicy::Delay)
            .replay()
    };
    let on = storm(true);
    let off = storm(false);
    for (name, r) in [("hedging-on", &on), ("hedging-off", &off)] {
        let m = &r.metrics;
        // Extended law: served + write_settled + fault_lost +
        // hedges_cancelled + write_lost == admitted_total.
        assert_eq!(m.settled(), m.admitted_total(), "{name}: law violated");
        assert_eq!(m.hedges_won, m.hedges_cancelled, "{name}");
        assert_eq!(m.write_lost, 0, "{name}: no device ever failed");
        assert_eq!(m.fault_lost, 0, "{name}");
        assert!(m.write_settled > 0, "{name}: storm carried writes");
        // The storm actually stormed: GC erased blocks and relocated pages.
        assert!(m.gc_erases > 0, "{name}: GC never ran");
        assert!(
            m.delayed > 0,
            "{name}: feasibility must shed some of the 3x-charged writes \
             into later windows"
        );
    }
    let compliance = |m: &MetricsSnapshot| {
        100.0 * (1.0 - m.guaranteed_violations as f64 / m.served.max(1) as f64)
    };
    let (c_on, c_off) = (compliance(&on.metrics), compliance(&off.metrics));
    assert!(
        c_on >= 99.0,
        "hedging-on read compliance {c_on:.2}% < 99% \
         ({} violations / {} reads)",
        on.metrics.guaranteed_violations,
        on.metrics.served
    );
    assert!(
        off.metrics.guaranteed_violations > on.metrics.guaranteed_violations,
        "hedging-off must be measurably worse: off {} violations \
         ({c_off:.2}%) vs on {} ({c_on:.2}%)",
        off.metrics.guaranteed_violations,
        on.metrics.guaranteed_violations
    );
}
