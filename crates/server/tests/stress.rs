//! Concurrency stress tests: many submitter threads hammer one engine and
//! the paper's per-interval invariants must hold under every interleaving:
//!
//! * no sealed window ever carries more guaranteed requests than `S(M)`,
//! * every deterministically admitted request meets its interval deadline,
//! * nothing admitted is lost and nothing rejected is served.
//!
//! Block addresses are drawn through the shared `FQOS_TEST_SEED`-keyed
//! streams in `tests/common/mod.rs`, so one env var re-rolls every suite.

mod common;

use fqos_core::{OverloadPolicy, QosConfig};
use fqos_server::{AssignmentMode, QosServer, ServerConfig, SubmitOutcome};
use rand::Rng;
use std::sync::Arc;

const T2: u64 = 2 * 133_000; // interval for M = 2

/// One thread per tenant, bursty loads beyond reservations, tiny queues.
#[test]
fn per_tenant_threads_with_bursts() {
    let qos = QosConfig::paper_9_3_1().with_accesses(2); // S(2) = 14
    let limit = qos.request_limit();
    let server =
        QosServer::new(ServerConfig::new(qos).with_workers(4).with_queue_depth(4)).unwrap();
    let plan: &[(u64, usize, OverloadPolicy)] = &[
        (1, 5, OverloadPolicy::Delay),
        (2, 4, OverloadPolicy::Delay),
        (3, 3, OverloadPolicy::Reject),
        (4, 2, OverloadPolicy::Delay),
    ];
    for &(t, r, p) in plan {
        server.register(t, r, p).unwrap();
    }
    let server = Arc::new(server);
    let threads: Vec<_> = plan
        .iter()
        .map(|&(tenant, reserved, _)| {
            let mut h = server.handle();
            let mut rng = common::rng(tenant);
            std::thread::spawn(move || {
                let mut submitted = 0u64;
                for w in 0..300u64 {
                    // Every third window bursts two past the reservation.
                    let burst = reserved + if w % 3 == 0 { 2 } else { 0 };
                    for i in 0..burst as u64 {
                        h.submit(tenant, rng.gen_range(0..10_000u64), w * T2 + i);
                        submitted += 1;
                    }
                }
                submitted
            })
        })
        .collect();
    let submitted: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let m = Arc::into_inner(server).unwrap().finish();

    assert!(
        m.max_window_guaranteed <= limit as u64,
        "{} > S(M)",
        m.max_window_guaranteed
    );
    assert_eq!(m.guaranteed_violations, 0);
    assert_eq!(
        m.deadline_violations, 0,
        "deterministic admission never violates"
    );
    assert_eq!(m.overflow, 0);
    assert_eq!(m.served, m.admitted, "everything admitted was served");
    assert_eq!(m.admitted + m.rejected, submitted);
    let rejecting = m.tenants.iter().find(|t| t.tenant == 3).unwrap();
    assert!(rejecting.rejected > 0, "Reject-policy bursts must drop");
    assert_eq!(rejecting.delayed, 0);
    for t in m.tenants.iter().filter(|t| t.tenant != 3) {
        assert!(
            t.delayed > 0,
            "Delay-policy bursts must spill to later windows"
        );
        // Sustained over-subscription (+2 every third window) grows the
        // backlog without bound, so the 64-window horizon eventually
        // saturates and rejects the residue — but only after real delaying.
        assert!(t.admitted > t.rejected);
    }
}

/// Six threads share ONE tenant and race for the same reservation.
#[test]
fn shared_tenant_contention() {
    let qos = QosConfig::paper_9_3_1().with_accesses(2);
    let limit = qos.request_limit();
    let server =
        QosServer::new(ServerConfig::new(qos).with_workers(3).with_queue_depth(8)).unwrap();
    server.register(7, limit, OverloadPolicy::Delay).unwrap();
    let server = Arc::new(server);
    let threads: Vec<_> = (0..6u64)
        .map(|n| {
            let mut h = server.handle();
            let mut rng = common::rng(100 + n);
            std::thread::spawn(move || {
                for w in 0..150u64 {
                    for i in 0..4u64 {
                        h.submit(7, rng.gen_range(0..10_000u64), w * T2 + i);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let m = Arc::into_inner(server).unwrap().finish();
    // 6 threads × 4 = 24 per window against a reservation of 14: the excess
    // must delay, never oversubscribe a window or miss a deadline.
    assert!(m.max_window_guaranteed <= limit as u64);
    assert_eq!(m.guaranteed_violations, 0);
    assert_eq!(m.deadline_violations, 0);
    assert_eq!(m.served, m.admitted);
    assert!(m.delayed > 0);
}

/// queue_depth = 1: maximum backpressure must throttle, not deadlock or
/// corrupt accounting.
#[test]
fn backpressure_with_depth_one_queues() {
    let qos = QosConfig::paper_9_3_1(); // M = 1, S = 5
    let server = QosServer::new(
        ServerConfig::new(qos)
            .with_workers(2)
            .with_queue_depth(1)
            .with_assignment(AssignmentMode::Eft),
    )
    .unwrap();
    server.register(1, 3, OverloadPolicy::Delay).unwrap();
    server.register(2, 2, OverloadPolicy::Delay).unwrap();
    let server = Arc::new(server);
    let threads: Vec<_> = [(1u64, 3u64), (2, 2)]
        .into_iter()
        .map(|(tenant, per_window)| {
            let mut h = server.handle();
            std::thread::spawn(move || {
                for w in 0..120u64 {
                    for i in 0..per_window {
                        h.submit(tenant, tenant * 500 + w * 7 + i, w * 133_000 + i);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let m = Arc::into_inner(server).unwrap().finish();
    assert_eq!(m.served, 120 * 5);
    assert_eq!(m.guaranteed_violations, 0);
    assert_eq!(m.deadline_violations, 0);
    assert!(m.max_window_guaranteed <= 5);
}

/// Tenants registering and deregistering while traffic flows: capacity is
/// conserved and in-flight requests of departed tenants still complete.
#[test]
fn registration_churn_during_service() {
    let qos = QosConfig::paper_9_3_1().with_accesses(2);
    let server =
        QosServer::new(ServerConfig::new(qos).with_workers(4).with_queue_depth(16)).unwrap();
    server.register(1, 7, OverloadPolicy::Delay).unwrap();
    let server = Arc::new(server);

    let submitter = {
        let mut h = server.handle();
        std::thread::spawn(move || {
            let mut admitted = 0u64;
            for w in 0..200u64 {
                for i in 0..5u64 {
                    if h.submit(1, w * 11 + i, w * T2 + i).is_admitted() {
                        admitted += 1;
                    }
                }
            }
            admitted
        })
    };
    let churner = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let mut churns = 0u32;
            for round in 0..50u64 {
                // The churn tenant cycles its 7-slot reservation; tenant 1
                // keeps its 7 untouched throughout.
                if server
                    .register(900 + (round % 2), 7, OverloadPolicy::Reject)
                    .is_ok()
                {
                    churns += 1;
                    server.deregister(900 + (round % 2));
                }
                std::thread::yield_now();
            }
            churns
        })
    };
    let admitted = submitter.join().unwrap();
    let churns = churner.join().unwrap();
    assert!(churns > 0);
    let m = Arc::into_inner(server).unwrap().finish();
    assert_eq!(m.served, admitted);
    assert_eq!(m.guaranteed_violations, 0);
    assert_eq!(m.deadline_violations, 0);
    assert!(m.max_window_guaranteed <= 14);
}

/// Fail-slow under contention: submitter threads race a degradation
/// injector that silently slows a device, restores it, and slows another —
/// while the scorer condemns and probes concurrently. Whatever the
/// interleaving, conservation must hold: every admission completes exactly
/// once (primary or winning hedge) and a hedge win cancels exactly one
/// primary.
#[test]
fn fail_slow_under_concurrent_submitters_conserves() {
    let qos = QosConfig::paper_9_3_1(); // M = 1, S = 5
    let server = QosServer::new(
        ServerConfig::new(qos)
            .with_workers(4)
            .with_queue_depth(8)
            .with_hedge_min_samples(3),
    )
    .unwrap();
    server.register(1, 3, OverloadPolicy::Delay).unwrap();
    server.register(2, 2, OverloadPolicy::Delay).unwrap();
    let server = Arc::new(server);
    let injector = {
        // Inject through the server, not a handle: an idle handle would
        // pin the seal watermark and stall dispatch for the whole run.
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for round in 0..30u64 {
                let dev = (round % 3) as usize * 2;
                server.degrade_device(dev, 8).unwrap();
                std::thread::yield_now();
                server.restore_device(dev).unwrap();
            }
        })
    };
    let threads: Vec<_> = [(1u64, 3u64), (2, 2)]
        .into_iter()
        .map(|(tenant, per_window)| {
            let mut h = server.handle();
            let mut rng = common::rng(200 + tenant);
            std::thread::spawn(move || {
                let mut submitted = 0u64;
                for w in 0..150u64 {
                    for i in 0..per_window {
                        h.submit(tenant, rng.gen_range(0..10_000u64), w * 133_000 + i);
                        submitted += 1;
                    }
                }
                submitted
            })
        })
        .collect();
    let submitted: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    injector.join().unwrap();
    let m = Arc::into_inner(server).unwrap().finish();
    assert_eq!(m.hedges_won, m.hedges_cancelled);
    assert_eq!(
        m.served + m.fault_lost + m.hedges_cancelled,
        m.admitted_total(),
        "conservation under racing degradations"
    );
    assert_eq!(m.fault_lost, 0, "slow devices stay live; nothing is lost");
    assert_eq!(m.admitted_total() + m.rejected, submitted);
    assert!(m.max_window_guaranteed <= 5);
}

/// Statistical admission (ε > 0): overflow may violate deadlines but the
/// audit trail must separate it from the deterministic guarantee.
#[test]
fn statistical_overflow_is_audited_separately() {
    let qos = QosConfig::paper_9_3_1().with_epsilon(0.4);
    let server =
        QosServer::new(ServerConfig::new(qos).with_workers(4).with_queue_depth(32)).unwrap();
    server.register(1, 5, OverloadPolicy::Reject).unwrap();
    let mut h = server.handle();
    // Calm history, then sustained over-subscription.
    for w in 0..60u64 {
        assert!(h.submit(1, w, w * 133_000).is_admitted());
    }
    let mut overflow = 0u64;
    for w in 60..80u64 {
        for i in 0..9u64 {
            match h.submit(1, w * 13 + i, w * 133_000 + i) {
                SubmitOutcome::Overflow { .. } => overflow += 1,
                SubmitOutcome::Admitted { .. } | SubmitOutcome::Rejected(_) => {}
                SubmitOutcome::Delayed { .. } => panic!("Reject policy cannot delay"),
            }
        }
    }
    drop(h);
    let m = server.finish();
    assert_eq!(m.overflow, overflow);
    assert!(m.overflow > 0, "ε = 0.4 must admit some overflow");
    assert!(m.max_window_guaranteed <= 5);
    assert!(m.max_window_total > 5);
    // Overflow stacking deep enough to project past the deadline hedges
    // onto sibling replicas; each admission completes exactly once either
    // way.
    assert_eq!(m.hedges_won, m.hedges_cancelled);
    assert_eq!(m.served + m.hedges_won, m.admitted_total());
    // Violations, if any, are never charged to the guarantee: overflow runs
    // after the guaranteed set and only it (or windows it spills into under
    // sustained pressure) may be late. ε = 0 paths keep this at zero by
    // construction; here we only require the audit split to be consistent.
    assert!(m.deadline_violations >= m.guaranteed_violations);
}
