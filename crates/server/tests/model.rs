//! Bounded exhaustive model checking of the engine's concurrency protocol.
//!
//! Only built with `--features model-check`: the facade in `src/sync.rs`
//! swaps every lock, channel, atomic and thread the engine uses for the
//! [`interleave`] crate's instrumented twins, and each test below runs a
//! small end-to-end scenario under [`interleave::model_with`], which
//! re-executes the closure once per distinct thread schedule (DFS over
//! context switches, preemption-bounded). Any assertion failure, panic in
//! engine code (e.g. the window ring's sealed-admission checks), or
//! deadlock on *any* explored schedule fails the test with a replayable
//! schedule trace.
//!
//! Invariants checked on every schedule (see DESIGN.md, "Concurrency
//! invariants"):
//!
//! - **Conservation**: `served + fault_lost + hedges_cancelled ==
//!   admitted_total` (a hedge win cancels exactly one primary, so
//!   `hedges_won == hedges_cancelled`), and `admitted_total + rejected`
//!   equals the number of submits issued.
//! - **Deadline audit**: no guaranteed-deadline violations unless a live
//!   fault forced the overload path (`fault_overloads > 0`).
//! - **Deadlock freedom**: the scenario runs to completion — submitters
//!   join, `finish` drains the workers — on every schedule.
//!
//! Scenarios are deliberately small (2 workers, an 8-slot ring, one or two
//! requests per submitter) so the preemption-bounded state space stays in
//! the thousands of schedules while still covering the races named in the
//! design notes: admission vs. seal, live fault injection vs. seal,
//! live degradation vs. the hedge decision, and handle drop / shutdown
//! vs. the final drain.

#![cfg(feature = "model-check")]

mod common;

use fqos_core::{OverloadPolicy, QosConfig};
use fqos_server::{FtlGeometry, GcConfig, IoOp, QosServer, ServerConfig, SubmitOutcome};
use interleave::{model_with, Config, Report};

/// A 2-worker, 8-slot-ring configuration small enough for exhaustive
/// schedule exploration: single registry shard, depth-2 worker queues,
/// greedy EFT assignment (replica choice resolved at submit, so seal-time
/// work is the drain itself).
fn model_cfg() -> ServerConfig {
    let mut cfg = ServerConfig::new(QosConfig::paper_9_3_1())
        .with_workers(2)
        .with_queue_depth(2)
        .with_ring_slots(8)
        .with_delay_horizon(2)
        .with_assignment(fqos_server::AssignmentMode::Eft);
    cfg.shards = 1;
    cfg
}

/// Tally of one submitter thread's outcomes, joined back into the root
/// thread so per-schedule totals can be checked against the final
/// metrics snapshot.
#[derive(Default)]
struct Tally {
    admitted: u64,
    rejected: u64,
}

fn submit_all(
    handle: &mut fqos_server::SubmitterHandle,
    tenant: u64,
    submits: &[(u64, u64)],
) -> Tally {
    let mut tally = Tally::default();
    for &(lbn, arrival_ns) in submits {
        match handle.submit(tenant, lbn, arrival_ns) {
            SubmitOutcome::Rejected(_) => tally.rejected += 1,
            _ => tally.admitted += 1,
        }
    }
    tally
}

fn report_and_check(name: &str, report: Report, floor: u64) {
    println!(
        "{name}: explored {} schedules (exhausted: {}, max depth: {} ops)",
        report.schedules, report.exhausted, report.max_depth
    );
    assert!(
        report.schedules >= floor,
        "{name} explored only {} schedules; expected at least {floor} \
         (state space too small to be meaningful — widen the scenario)",
        report.schedules
    );
}

/// Two submitter threads race admission into overlapping windows against
/// each other's seal-advancing pumps and the worker drain. Checks
/// conservation and the guaranteed-deadline audit on every schedule.
#[test]
fn admission_vs_seal_conserves_requests() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        let server = QosServer::new(model_cfg()).unwrap();
        let t_ns = server.config().qos.interval_ns;
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        server.register(2, 2, OverloadPolicy::Delay).unwrap();
        let mut ha = server.handle();
        let mut hb = server.handle();
        let a = interleave::thread::spawn(move || submit_all(&mut ha, 1, &[(0, 0), (1, t_ns)]));
        let b = interleave::thread::spawn(move || submit_all(&mut hb, 2, &[(2, 0), (3, t_ns)]));
        let ta = a.join().unwrap();
        let tb = b.join().unwrap();
        let m = server.finish();
        let submitted = 4;
        assert_eq!(ta.admitted + tb.admitted, m.admitted_total());
        assert_eq!(ta.rejected + tb.rejected, m.rejected);
        assert_eq!(m.admitted_total() + m.rejected, submitted);
        assert_eq!(m.hedges_issued, 0, "healthy devices never speculate");
        assert_eq!(m.served + m.fault_lost, m.admitted_total(), "conservation");
        assert_eq!(m.fault_lost, 0, "no faults were injected");
        assert_eq!(m.guaranteed_violations, 0, "deadline audit");
    });
    report_and_check("admission-vs-seal", report, 1000);
}

/// A live `inject_fault` races admission and seal: two same-bucket
/// requests land in one window while an injector thread takes down two of
/// the bucket's three replicas. Depending on where the injections land
/// relative to admission and seal, requests are rerouted at admission,
/// re-dispatched at seal, or squeezed through the overload path
/// (`fault_overloads`) when the rebuild is infeasible under `M = 1`.
/// Conservation must hold on every schedule, nothing may be lost (one
/// replica always survives), and the guaranteed-deadline audit may only
/// be charged when the overload path actually fired.
#[test]
fn inject_fault_vs_seal_conserves_requests() {
    let replicas = common::bucket_replicas(9, 3, 0);
    let (f0, f1) = (replicas[0], replicas[1]);
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, move || {
        let server = QosServer::new(model_cfg()).unwrap();
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut hs = server.handle();
        let hf = server.handle();
        let submitter = interleave::thread::spawn(move || {
            // Same bucket, same arrival window: under M = 1 the two
            // requests need two distinct live replicas.
            submit_all(&mut hs, 1, &[(0, 0), (0, 0)])
        });
        let injector = interleave::thread::spawn(move || {
            hf.inject_fault(f0).unwrap();
            hf.inject_fault(f1).unwrap();
            // Dropping hf closes its watermark so sealing can proceed.
        });
        let ts = submitter.join().unwrap();
        injector.join().unwrap();
        let m = server.finish();
        assert_eq!(ts.admitted, m.admitted_total());
        assert_eq!(ts.rejected, m.rejected);
        assert_eq!(m.admitted_total() + m.rejected, 2);
        assert_eq!(m.hedges_won, m.hedges_cancelled);
        assert_eq!(
            m.served + m.fault_lost + m.hedges_cancelled,
            m.admitted_total(),
            "conservation"
        );
        assert_eq!(m.fault_lost, 0, "one replica survives on every schedule");
        if m.fault_overloads == 0 {
            assert_eq!(
                m.guaranteed_violations, 0,
                "deadline audit may only be charged via the overload path"
            );
        }
    });
    report_and_check("inject-fault-vs-seal", report, 1000);
}

/// Shutdown-drain race: one submitter drops its handle after a single
/// request while the other keeps admitting, then `finish` force-closes,
/// seals the tail and joins the 2-worker pool. Every admitted request
/// must be served on every schedule — the drain may not strand items in
/// the ring or the worker queues.
#[test]
fn shutdown_drain_loses_nothing() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 2048,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        let server = QosServer::new(model_cfg()).unwrap();
        let t_ns = server.config().qos.interval_ns;
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        server.register(2, 2, OverloadPolicy::Delay).unwrap();
        let mut ha = server.handle();
        let mut hb = server.handle();
        let a = interleave::thread::spawn(move || {
            // One request, then the handle drops mid-window: its
            // watermark must stop gating the seal.
            submit_all(&mut ha, 1, &[(0, 0)])
        });
        let b = interleave::thread::spawn(move || submit_all(&mut hb, 2, &[(2, 0), (3, 2 * t_ns)]));
        let ta = a.join().unwrap();
        let tb = b.join().unwrap();
        let m = server.finish();
        assert_eq!(m.admitted_total() + m.rejected, 3);
        assert_eq!(ta.admitted + tb.admitted, m.admitted_total());
        assert_eq!(m.hedges_issued, 0, "healthy devices never speculate");
        assert_eq!(m.served, m.admitted_total(), "drain may not strand items");
        assert_eq!(m.guaranteed_violations, 0);
    });
    report_and_check("shutdown-drain", report, 200);
}

/// The satellite regression from DESIGN.md: dropping a `SubmitterHandle`
/// mid-window — while another handle still holds the window open — must
/// drain without losing conservation. The drop-side pump races the live
/// handle's admissions into the same window.
#[test]
fn handle_drop_mid_window_conserves_requests() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 2048,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        let server = QosServer::new(model_cfg()).unwrap();
        let t_ns = server.config().qos.interval_ns;
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut ha = server.handle();
        let mut hb = server.handle();
        let a = interleave::thread::spawn(move || {
            let tally = submit_all(&mut ha, 1, &[(0, 0)]);
            drop(ha); // explicit: drop races hb's admissions below
            tally
        });
        let b = interleave::thread::spawn(move || submit_all(&mut hb, 1, &[(1, 0), (1, t_ns)]));
        let ta = a.join().unwrap();
        let tb = b.join().unwrap();
        let m = server.finish();
        assert_eq!(m.admitted_total() + m.rejected, 3);
        assert_eq!(ta.admitted + tb.admitted, m.admitted_total());
        assert_eq!(m.served + m.fault_lost, m.admitted_total(), "conservation");
        assert_eq!(m.fault_lost, 0);
        assert_eq!(m.guaranteed_violations, 0);
    });
    report_and_check("handle-drop-mid-window", report, 200);
}

/// The cluster tier's migration drain racing the window seal: a submitter
/// pushes requests for tenant 1 on the *source* array while a migrator
/// thread re-registers the tenant on the *target* array, deregisters it at
/// the source (cooperative drain — the departed record keeps settling
/// in-flight admissions), and submits post-migration traffic on the
/// target. Depending on where the drain lands relative to admission and
/// seal, source submissions are admitted (and must still settle against
/// the departed record) or rejected as unknown. On every schedule the
/// cluster law must close: summed over both arrays,
/// `Σ served + Σ fault_lost + Σ hedges_cancelled == Σ admitted_total`,
/// with zero migrated-in-flight after both finishes — and per-tenant
/// accounting on the source may not strand a single admission.
#[test]
fn rebalance_vs_seal_conserves_the_cluster_law() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        // One worker per array keeps the thread count at five (two
        // workers + submitter + migrator + root).
        let mut src_cfg = model_cfg().with_workers(1);
        src_cfg.shards = 1;
        let dst_cfg = src_cfg.clone();
        let src = QosServer::new(src_cfg).unwrap();
        let dst = QosServer::new(dst_cfg).unwrap();
        let t_ns = src.config().qos.interval_ns;
        src.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut hs = src.handle();
        let hm = src.handle(); // migrator's drain endpoint on the source
        let hd = dst.handle(); // migrator's endpoint on the target
        let submitter =
            interleave::thread::spawn(move || submit_all(&mut hs, 1, &[(0, 0), (1, 0)]));
        let migrator = interleave::thread::spawn(move || {
            // Target first (the controller's order): registration there
            // cannot fail, so the drain never leaves the tenant homeless.
            hd.register(1, 2, OverloadPolicy::Delay).unwrap();
            hm.deregister(1);
            let mut hd = hd;
            submit_all(&mut hd, 1, &[(2, t_ns)])
            // Dropping hm/hd closes their watermarks so sealing proceeds.
        });
        let ts = submitter.join().unwrap();
        let td = migrator.join().unwrap();
        let ms = src.finish();
        let md = dst.finish();
        // Source submissions race the drain: admitted before it, rejected
        // (unknown tenant) after it. The target admission is unconditional.
        assert_eq!(ts.admitted + ts.rejected, 2);
        assert_eq!(td.admitted, 1);
        assert_eq!(ts.admitted, ms.admitted_total());
        assert_eq!(td.admitted, md.admitted_total());
        // Cluster law over both arrays, and per array.
        for m in [&ms, &md] {
            assert_eq!(m.hedges_won, m.hedges_cancelled);
            assert_eq!(
                m.served + m.fault_lost + m.hedges_cancelled,
                m.admitted_total(),
                "conservation"
            );
            assert_eq!(m.fault_lost, 0, "no faults were injected");
            assert_eq!(m.guaranteed_violations, 0, "deadline audit");
        }
        // The drain stranded nothing: the departed source record settled
        // every admission it ever took (migrated_in_flight == 0).
        let t1_src = ms.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert!(!t1_src.live, "tenant 1 departed the source");
        assert_eq!(t1_src.admitted, ts.admitted, "departed counters complete");
        assert_eq!(t1_src.in_flight(), 0, "drain fully settled at the seal");
    });
    report_and_check("rebalance-vs-seal", report, 1000);
}

/// A live `degrade_device` races admission, dispatch and the hedge
/// decision: an injector thread silently slows the primary replica 10×
/// and then restores it while a submitter pushes two same-bucket
/// requests through. Depending on where the degradation lands, the slow
/// primary finishes past its deadline and is hedged onto a sibling
/// replica (first completion wins, the loser is cancelled), the scorer's
/// verdict reroutes the second request at seal, or the window drains
/// before the slowdown bites. Whatever the schedule, the extended
/// conservation law must balance — every admission completes exactly
/// once, and a hedge win cancels exactly one primary — and nothing may
/// be lost: a slow device is degraded, not dead.
#[test]
fn hedge_vs_seal_conserves_requests() {
    let replicas = common::bucket_replicas(9, 3, 0);
    let slow = replicas[0];
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, move || {
        let server = QosServer::new(model_cfg()).unwrap();
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut hs = server.handle();
        let hf = server.handle();
        let submitter = interleave::thread::spawn(move || {
            // Same bucket: both requests' replica sets contain the
            // degraded device, so each dispatch may race the slowdown.
            submit_all(&mut hs, 1, &[(0, 0), (0, 0)])
        });
        let injector = interleave::thread::spawn(move || {
            hf.degrade_device(slow, 10).unwrap();
            hf.restore_device(slow).unwrap();
            // Dropping hf closes its watermark so sealing can proceed.
        });
        let ts = submitter.join().unwrap();
        injector.join().unwrap();
        let m = server.finish();
        assert_eq!(ts.admitted, m.admitted_total());
        assert_eq!(m.admitted_total() + m.rejected, 2);
        assert_eq!(m.hedges_won, m.hedges_cancelled, "exactly-once hedging");
        assert_eq!(
            m.served + m.fault_lost + m.hedges_cancelled,
            m.admitted_total(),
            "conservation"
        );
        assert_eq!(m.fault_lost, 0, "slow devices stay live; nothing is lost");
    });
    report_and_check("hedge-vs-seal", report, 1000);
}

/// The WAL ordering invariant under every explored schedule: two racing
/// submitters append admit records (under the `engine.wal` leaf lock)
/// while seals and worker completions append seal/settle records from
/// other threads. On no schedule may a settlement reach the log before
/// its admission is durable-ordered ahead of it — the log's own replay
/// state machine counts any such inversion (settle without a pending
/// durable admit, admit below the sealed floor, double seal) in
/// `wal_misordered`, which must stay zero while the usual conservation
/// law closes over the logged record.
#[test]
fn wal_append_vs_settle_orders_every_schedule() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        let server = QosServer::new(model_cfg().with_wal_memory()).unwrap();
        let t_ns = server.config().qos.interval_ns;
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        server.register(2, 2, OverloadPolicy::Delay).unwrap();
        let mut ha = server.handle();
        let mut hb = server.handle();
        let a = interleave::thread::spawn(move || submit_all(&mut ha, 1, &[(0, 0), (1, t_ns)]));
        let b = interleave::thread::spawn(move || submit_all(&mut hb, 2, &[(2, 0)]));
        let ta = a.join().unwrap();
        let tb = b.join().unwrap();
        let m = server.finish();
        assert_eq!(ta.admitted + tb.admitted, m.admitted_total());
        assert_eq!(m.admitted_total() + m.rejected, 3);
        assert_eq!(
            m.wal_misordered, 0,
            "a settlement outran its admission's durable order in the log"
        );
        assert!(
            m.wal_records >= m.admitted_total(),
            "every admission must reach the log"
        );
        assert_eq!(m.served + m.fault_lost, m.admitted_total(), "conservation");
        assert_eq!(m.fault_lost, 0, "no faults were injected");
        assert_eq!(m.guaranteed_violations, 0, "deadline audit");
    });
    report_and_check("wal-append-vs-settle", report, 1000);
}

/// A whole-array fail-stop (`halt`, the cluster tier's `kill_array`
/// primitive) races a submitter mid-burst. This is the linearization
/// point the evacuation ledger depends on: the residue charged to
/// `evacuation_lost` is computed from the frozen snapshot, so an
/// admission acked to the client but missing from that snapshot would
/// silently vanish from the cluster conservation law. On every schedule:
/// each submit either lands in the frozen snapshot or is refused as
/// `ServerStopping` (never a hang, never an unaccounted ack), and the
/// extended per-array law closes exactly once the stranded residue is
/// added back.
#[test]
fn kill_vs_submit_freezes_every_ack_into_the_ledger() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        let server = QosServer::new(model_cfg().with_workers(1)).unwrap();
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut h = server.handle();
        let submitter = interleave::thread::spawn(move || submit_all(&mut h, 1, &[(0, 0), (1, 0)]));
        // Root plays the failure injector: halt without draining while
        // the submitter is (possibly) mid-call.
        let frozen = server.halt();
        let t = submitter.join().unwrap();
        assert_eq!(t.admitted + t.rejected, 2, "a submit hung across the kill");
        // Every ack the client saw is in the frozen snapshot, and every
        // admission the snapshot counts was acked: the ledger charge
        // (residue of `frozen`) misses nothing the client was promised.
        assert_eq!(t.admitted, frozen.admitted_total());
        assert_eq!(frozen.hedges_won, frozen.hedges_cancelled);
        let settled = frozen.served + frozen.fault_lost + frozen.hedges_cancelled;
        assert!(settled <= frozen.admitted_total(), "over-settled");
        let residue = frozen.admitted_total() - settled;
        // Extended law, as the cluster audit states it after charging the
        // residue to `evacuation_lost`.
        assert_eq!(
            settled + residue,
            frozen.admitted_total(),
            "extended conservation"
        );
        assert_eq!(frozen.fault_lost, 0, "no device faults were injected");
    });
    report_and_check("kill-vs-submit", report, 1000);
}

/// Emergency evacuation races the survivor's own seal/drain: after a
/// source array fail-stops, the controller re-registers the displaced
/// tenant on a survivor (target first, same order as rebalancing) and
/// replays traffic there while a native tenant keeps the survivor's seal
/// pipeline moving. Unlike `rebalance_vs_seal` there is no source drain —
/// the source is dead and its residue is already charged — so the checks
/// concentrate on the survivor: the evacuated tenant's registration wins
/// before its first submit on every schedule (no spurious
/// `UnknownTenant`), and the survivor's law closes with both tenants'
/// admissions settled at the final seal.
#[test]
fn evacuate_vs_seal_lands_the_displaced_tenant_exactly_once() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        let survivor = QosServer::new(model_cfg().with_workers(1)).unwrap();
        let t_ns = survivor.config().qos.interval_ns;
        // Tenant 1 is native to the survivor; tenant 2 arrives by
        // evacuation while 1's submitter keeps windows sealing.
        survivor.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut hn = survivor.handle();
        let he = survivor.handle(); // evacuator's endpoint
        let native =
            interleave::thread::spawn(move || submit_all(&mut hn, 1, &[(0, 0), (1, t_ns)]));
        let evacuator = interleave::thread::spawn(move || {
            // The controller's evacuation order: register on the target,
            // then replay the displaced tenant's traffic. Registration
            // happens-before the submit in program order, so no schedule
            // may observe UnknownTenant.
            he.register(2, 2, OverloadPolicy::Delay).unwrap();
            let mut he = he;
            let t = submit_all(&mut he, 2, &[(2, 0)]);
            assert_eq!(t.rejected, 0, "evacuated tenant bounced off its new home");
            t
        });
        let tn = native.join().unwrap();
        let te = evacuator.join().unwrap();
        let m = survivor.finish();
        assert_eq!(tn.admitted + tn.rejected, 2);
        assert_eq!(te.admitted, 1);
        assert_eq!(tn.admitted + te.admitted, m.admitted_total());
        assert_eq!(m.hedges_won, m.hedges_cancelled);
        assert_eq!(
            m.served + m.fault_lost + m.hedges_cancelled,
            m.admitted_total(),
            "survivor conservation"
        );
        assert_eq!(m.fault_lost, 0, "no faults were injected");
        assert_eq!(m.guaranteed_violations, 0, "deadline audit");
        let t2 = m.tenants.iter().find(|t| t.tenant == 2).unwrap();
        assert!(t2.live, "evacuated tenant registered on the survivor");
        assert_eq!(t2.admitted, 1, "evacuated admission settled here");
        assert_eq!(t2.in_flight(), 0, "evacuated work fully settled");
    });
    report_and_check("evacuate-vs-seal", report, 1000);
}

/// Write fan-out races the seal: two submitter threads push writes (plus
/// one read) through overlapping windows while seals dispatch each write
/// to all three of its bucket's replicas. The settle is a
/// `fetch_sub(1, AcqRel) == 1` on the group's remaining-copies counter,
/// so depending on the schedule the last copy lands before, during, or
/// after the next window's seal. On every schedule the extended law must
/// close — `served + write_settled + fault_lost + hedges_cancelled +
/// write_lost == admitted_total` — each logical write settles exactly
/// once (never once per replica), and no write is lost with every device
/// healthy.
#[test]
fn write_fanout_vs_seal_settles_each_group_once() {
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, || {
        let server = QosServer::new(model_cfg()).unwrap();
        let t_ns = server.config().qos.interval_ns;
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        server.register(2, 2, OverloadPolicy::Delay).unwrap();
        let mut ha = server.handle();
        let mut hb = server.handle();
        let a = interleave::thread::spawn(move || {
            let mut tally = Tally::default();
            for &(lbn, at, op) in &[(0, 0, IoOp::Write), (1, t_ns, IoOp::Read)] {
                match ha.submit_op(1, lbn, at, op) {
                    SubmitOutcome::Rejected(_) => tally.rejected += 1,
                    _ => tally.admitted += 1,
                }
            }
            tally
        });
        let b = interleave::thread::spawn(move || {
            let mut tally = Tally::default();
            match hb.submit_op(2, 2, 0, IoOp::Write) {
                SubmitOutcome::Rejected(_) => tally.rejected += 1,
                _ => tally.admitted += 1,
            }
            tally
        });
        let ta = a.join().unwrap();
        let tb = b.join().unwrap();
        let m = server.finish();
        assert_eq!(ta.admitted + tb.admitted, m.admitted_total());
        assert_eq!(m.admitted_total() + m.rejected, 3);
        assert_eq!(
            m.served + m.write_settled + m.fault_lost + m.hedges_cancelled + m.write_lost,
            m.admitted_total(),
            "extended conservation"
        );
        assert!(
            m.write_settled <= 2,
            "a fan-out group must settle once, not once per replica: {}",
            m.write_settled
        );
        assert_eq!(m.write_lost, 0, "every device is healthy");
        assert_eq!(m.fault_lost, 0, "no faults were injected");
        assert_eq!(m.hedges_issued, 0, "healthy devices never speculate");
        assert_eq!(m.guaranteed_violations, 0, "deadline audit");
    });
    report_and_check("write-fanout-vs-seal", report, 1000);
}

/// A GC stall races the hedge decision: writes into a four-page FTL force
/// garbage collection whose erase stalls land on the same replicas a
/// racing read's dispatch and hedge logic are timing against, while an
/// injector degrades and restores one replica to push the scorer toward
/// speculation. Whatever the schedule: the extended law closes, only the
/// read may ever be hedged (a write fans out to every replica already —
/// duplicating one would double-program a page), each write settles
/// exactly once, and a stalled-but-live device loses nothing.
#[test]
fn gc_stall_vs_hedge_never_duplicates_a_write() {
    let replicas = common::bucket_replicas(9, 3, 0);
    let slow = replicas[0];
    let bounds = Config {
        preemptions: 2,
        max_schedules: 4096,
        ..Config::default()
    };
    let report = model_with(bounds, move || {
        // Four pages per device, one quarter held back: the second write
        // to the bucket already has GC relocating and erasing under the
        // read it races.
        let geometry = FtlGeometry {
            dies: 1,
            blocks_per_die: 2,
            pages_per_block: 2,
            overprovision: 0.25,
        };
        let cfg = model_cfg().with_gc_model(GcConfig::new(geometry));
        let server = QosServer::new(cfg).unwrap();
        server.register(1, 2, OverloadPolicy::Delay).unwrap();
        let mut hs = server.handle();
        let hf = server.handle();
        let submitter = interleave::thread::spawn(move || {
            // Same bucket throughout: the writes program (and GC) exactly
            // the replica set the read dispatches against.
            let mut tally = Tally::default();
            for &(at, op) in &[(0, IoOp::Write), (0, IoOp::Write), (0, IoOp::Read)] {
                match hs.submit_op(1, 0, at, op) {
                    SubmitOutcome::Rejected(_) => tally.rejected += 1,
                    _ => tally.admitted += 1,
                }
            }
            tally
        });
        let injector = interleave::thread::spawn(move || {
            hf.degrade_device(slow, 10).unwrap();
            hf.restore_device(slow).unwrap();
        });
        let ts = submitter.join().unwrap();
        injector.join().unwrap();
        let m = server.finish();
        assert_eq!(ts.admitted, m.admitted_total());
        assert_eq!(m.admitted_total() + m.rejected, 3);
        assert_eq!(
            m.served + m.write_settled + m.fault_lost + m.hedges_cancelled + m.write_lost,
            m.admitted_total(),
            "extended conservation"
        );
        assert_eq!(m.hedges_won, m.hedges_cancelled, "exactly-once hedging");
        assert!(
            m.hedges_issued <= 1,
            "only the single read may speculate; a hedged write would \
             double-program a page ({} hedges issued)",
            m.hedges_issued
        );
        assert!(
            m.write_settled <= 2,
            "each fan-out group settles once: {}",
            m.write_settled
        );
        assert_eq!(m.write_lost, 0, "a GC stall delays a write, never loses it");
        assert_eq!(m.fault_lost, 0, "slow devices stay live; nothing is lost");
    });
    report_and_check("gc-stall-vs-hedge", report, 1000);
}
