//! Property tests over small `(N, c, M)` deployments: whatever the design,
//! the access budget, the tenant mix or the load pattern, a deterministic
//! engine run must
//!
//! * keep every window's guaranteed aggregate within `S(M)`,
//! * meet the interval deadline of every admitted request,
//! * and conserve requests (admitted + rejected = submitted, served =
//!   admitted).

use fqos_core::{OverloadPolicy, QosConfig};
use fqos_decluster::DesignTheoretic;
use fqos_designs::DesignCatalog;
use fqos_flashsim::time::{BASE_INTERVAL_NS, BLOCK_READ_NS};
use fqos_server::{AssignmentMode, QosServer, ServerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Small constructible `(N, c)` pairs spanning both copy counts the
/// catalog knows how to build.
const DESIGNS: &[(usize, usize)] = &[(7, 3), (9, 3), (13, 3), (13, 4)];

fn qos_for(design_idx: usize, m: usize, epsilon: f64) -> QosConfig {
    let (n, c) = DESIGNS[design_idx % DESIGNS.len()];
    let design = DesignCatalog.find(n, c).expect("catalog design");
    QosConfig {
        scheme: DesignTheoretic::new(design),
        accesses: m,
        interval_ns: m as u64 * BASE_INTERVAL_NS,
        epsilon,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    }
}

/// Split the full `S(M)` budget into 1..=4 tenant reservations with mixed
/// policies.
fn tenant_plan(limit: usize, rng: &mut StdRng) -> Vec<(u64, usize, OverloadPolicy)> {
    let mut plan = Vec::new();
    let mut remaining = limit;
    let mut id = 1u64;
    while remaining > 0 && plan.len() < 4 {
        let r = if plan.len() == 3 {
            remaining
        } else {
            rng.gen_range(1..=remaining)
        };
        let policy = if rng.gen_range(0..3usize) == 0 {
            OverloadPolicy::Reject
        } else {
            OverloadPolicy::Delay
        };
        plan.push((id, r, policy));
        remaining -= r;
        id += 1;
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two racing submitter threads over a random small deployment.
    #[test]
    fn deterministic_admission_meets_every_deadline(
        design_idx in 0..4usize,
        m in 1..=3usize,
        eft in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let qos = qos_for(design_idx, m, 0.0);
        let limit = qos.request_limit();
        let t_ns = qos.interval_ns;
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = tenant_plan(limit, &mut rng);
        let total_reserved: usize = plan.iter().map(|&(_, r, _)| r).sum();
        prop_assert!(total_reserved <= limit);

        let mode = if eft { AssignmentMode::Eft } else { AssignmentMode::OptimalFlow };
        let server = QosServer::new(
            ServerConfig::new(qos)
                .with_workers(rng.gen_range(1..=4))
                .with_queue_depth(rng.gen_range(1..=8))
                .with_assignment(mode),
        )
        .map_err(proptest::TestCaseError::fail)?;
        for &(t, r, p) in &plan {
            server.register(t, r, p).map_err(|e| proptest::TestCaseError::fail(e.to_string()))?;
        }

        let server = Arc::new(server);
        let windows = 25u64;
        let threads: Vec<_> = (0..2u64)
            .map(|thread| {
                let mut h = server.handle();
                let plan = plan.clone();
                let mut rng = StdRng::seed_from_u64(seed ^ (thread + 1));
                std::thread::spawn(move || {
                    let mut submitted = 0u64;
                    for w in 0..windows {
                        for &(tenant, reserved, _) in &plan {
                            // Sometimes idle, sometimes past the reservation.
                            let burst = rng.gen_range(0..=reserved + 1);
                            for _ in 0..burst {
                                let lbn = rng.gen_range(0..10_000u64);
                                h.submit(tenant, lbn, w * t_ns + rng.gen_range(0..t_ns));
                                submitted += 1;
                            }
                        }
                    }
                    submitted
                })
            })
            .collect();
        let submitted: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        let m = Arc::into_inner(server).unwrap().finish();

        prop_assert!(m.max_window_guaranteed <= limit as u64,
            "window carried {} > S(M) = {limit}", m.max_window_guaranteed);
        prop_assert_eq!(m.guaranteed_violations, 0);
        prop_assert_eq!(m.deadline_violations, 0);
        prop_assert_eq!(m.overflow, 0);
        prop_assert_eq!(m.served, m.admitted);
        prop_assert_eq!(m.admitted + m.rejected, submitted);
        let per_tenant_admitted: u64 = m.tenants.iter().map(|t| t.admitted).sum();
        prop_assert_eq!(per_tenant_admitted, m.admitted);
        // A request admitted k windows late finishes by (k+2)·T after its
        // arrival window, so the delay horizon bounds every response time.
        let horizon = 64; // ServerConfig default delay_horizon
        prop_assert!(m.max_latency_ns <= (horizon + 2) * t_ns,
            "latency {} beyond the delay horizon {}", m.max_latency_ns, (horizon + 2) * t_ns);
        if m.delayed == 0 {
            prop_assert!(m.max_latency_ns <= 2 * t_ns);
        }
    }

    /// The statistical path never lets the *guaranteed* aggregate past
    /// `S(M)`, and every overflow admission is audited.
    #[test]
    fn statistical_mode_keeps_the_guarantee_separate(
        design_idx in 0..4usize,
        m in 1..=2usize,
        seed in any::<u64>(),
    ) {
        let qos = qos_for(design_idx, m, 0.25);
        let limit = qos.request_limit();
        let t_ns = qos.interval_ns;
        let server = QosServer::new(ServerConfig::new(qos).with_workers(2))
            .map_err(proptest::TestCaseError::fail)?;
        server
            .register(1, limit, OverloadPolicy::Reject)
            .map_err(|e| proptest::TestCaseError::fail(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = server.handle();
        for w in 0..40u64 {
            // Oscillate between calm and over-subscribed windows.
            let load = if w % 4 == 3 { limit + 3 } else { rng.gen_range(0..=limit / 2) };
            for i in 0..load as u64 {
                h.submit(1, rng.gen_range(0..10_000u64), w * t_ns + i);
            }
        }
        drop(h);
        let m = server.finish();
        prop_assert!(m.max_window_guaranteed <= limit as u64);
        prop_assert_eq!(m.served, m.admitted_total());
        prop_assert!(m.max_window_total >= m.max_window_guaranteed);
        let t_overflow: u64 = m.tenants.iter().map(|t| t.overflow).sum();
        prop_assert_eq!(t_overflow, m.overflow);
    }
}
