//! Property tests over small `(N, c, M)` deployments: whatever the design,
//! the access budget, the tenant mix or the load pattern, a deterministic
//! engine run must
//!
//! * keep every window's guaranteed aggregate within `S(M)`,
//! * meet the interval deadline of every admitted request,
//! * and conserve requests (admitted + rejected = submitted, served =
//!   admitted),
//!
//! and the same must survive scripted device failures within the design's
//! `c − 1` tolerance, while co-hosted failures beyond it must reject
//! rather than stall. Proptest seeds are mixed with `FQOS_TEST_SEED` (see
//! `tests/common/mod.rs`) so the whole suite re-rolls together.

mod common;

use fqos_core::{OverloadPolicy, QosConfig};
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use fqos_designs::DesignCatalog;
use fqos_flashsim::time::{BASE_INTERVAL_NS, BLOCK_READ_NS};
use fqos_server::CRASH_POINTS;
use fqos_server::{
    AssignmentMode, FaultSchedule, QosServer, RejectReason, ServerConfig, SubmitOutcome,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Small constructible `(N, c)` pairs spanning both copy counts the
/// catalog knows how to build.
const DESIGNS: &[(usize, usize)] = &[(7, 3), (9, 3), (13, 3), (13, 4)];

fn qos_for(design_idx: usize, m: usize, epsilon: f64) -> QosConfig {
    let (n, c) = DESIGNS[design_idx % DESIGNS.len()];
    let design = DesignCatalog.find(n, c).expect("catalog design");
    QosConfig {
        scheme: DesignTheoretic::new(design),
        accesses: m,
        interval_ns: m as u64 * BASE_INTERVAL_NS,
        epsilon,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    }
}

/// Split the full `S(M)` budget into 1..=4 tenant reservations with mixed
/// policies.
fn tenant_plan(limit: usize, rng: &mut StdRng) -> Vec<(u64, usize, OverloadPolicy)> {
    let mut plan = Vec::new();
    let mut remaining = limit;
    let mut id = 1u64;
    while remaining > 0 && plan.len() < 4 {
        let r = if plan.len() == 3 {
            remaining
        } else {
            rng.gen_range(1..=remaining)
        };
        let policy = if rng.gen_range(0..3usize) == 0 {
            OverloadPolicy::Reject
        } else {
            OverloadPolicy::Delay
        };
        plan.push((id, r, policy));
        remaining -= r;
        id += 1;
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two racing submitter threads over a random small deployment.
    #[test]
    fn deterministic_admission_meets_every_deadline(
        design_idx in 0..4usize,
        m in 1..=3usize,
        eft in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let seed = seed ^ common::seed();
        let qos = qos_for(design_idx, m, 0.0);
        let limit = qos.request_limit();
        let t_ns = qos.interval_ns;
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = tenant_plan(limit, &mut rng);
        let total_reserved: usize = plan.iter().map(|&(_, r, _)| r).sum();
        prop_assert!(total_reserved <= limit);

        let mode = if eft { AssignmentMode::Eft } else { AssignmentMode::OptimalFlow };
        let server = QosServer::new(
            ServerConfig::new(qos)
                .with_workers(rng.gen_range(1..=4))
                .with_queue_depth(rng.gen_range(1..=8))
                .with_assignment(mode),
        )
        .map_err(proptest::TestCaseError::fail)?;
        for &(t, r, p) in &plan {
            server.register(t, r, p).map_err(|e| proptest::TestCaseError::fail(e.to_string()))?;
        }

        let server = Arc::new(server);
        let windows = 25u64;
        let threads: Vec<_> = (0..2u64)
            .map(|thread| {
                let mut h = server.handle();
                let plan = plan.clone();
                let mut rng = StdRng::seed_from_u64(seed ^ (thread + 1));
                std::thread::spawn(move || {
                    let mut submitted = 0u64;
                    for w in 0..windows {
                        for &(tenant, reserved, _) in &plan {
                            // Sometimes idle, sometimes past the reservation.
                            let burst = rng.gen_range(0..=reserved + 1);
                            for _ in 0..burst {
                                let lbn = rng.gen_range(0..10_000u64);
                                h.submit(tenant, lbn, w * t_ns + rng.gen_range(0..t_ns));
                                submitted += 1;
                            }
                        }
                    }
                    submitted
                })
            })
            .collect();
        let submitted: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        let m = Arc::into_inner(server).unwrap().finish();

        prop_assert!(m.max_window_guaranteed <= limit as u64,
            "window carried {} > S(M) = {limit}", m.max_window_guaranteed);
        prop_assert_eq!(m.guaranteed_violations, 0);
        prop_assert_eq!(m.deadline_violations, 0);
        prop_assert_eq!(m.overflow, 0);
        prop_assert_eq!(m.served, m.admitted);
        // Healthy devices never cross the hedge threshold and guaranteed
        // admissions never project past their deadline, so a clean run
        // must not speculate at all.
        prop_assert_eq!(m.hedges_issued, 0);
        prop_assert_eq!(m.admitted + m.rejected, submitted);
        let per_tenant_admitted: u64 = m.tenants.iter().map(|t| t.admitted).sum();
        prop_assert_eq!(per_tenant_admitted, m.admitted);
        // A request admitted k windows late finishes by (k+2)·T after its
        // arrival window, so the delay horizon bounds every response time.
        let horizon = 64; // ServerConfig default delay_horizon
        prop_assert!(m.max_latency_ns <= (horizon + 2) * t_ns,
            "latency {} beyond the delay horizon {}", m.max_latency_ns, (horizon + 2) * t_ns);
        if m.delayed == 0 {
            prop_assert!(m.max_latency_ns <= 2 * t_ns);
        }
    }

    /// The statistical path never lets the *guaranteed* aggregate past
    /// `S(M)`, and every overflow admission is audited.
    #[test]
    fn statistical_mode_keeps_the_guarantee_separate(
        design_idx in 0..4usize,
        m in 1..=2usize,
        seed in any::<u64>(),
    ) {
        let qos = qos_for(design_idx, m, 0.25);
        let limit = qos.request_limit();
        let t_ns = qos.interval_ns;
        let server = QosServer::new(ServerConfig::new(qos).with_workers(2))
            .map_err(proptest::TestCaseError::fail)?;
        server
            .register(1, limit, OverloadPolicy::Reject)
            .map_err(|e| proptest::TestCaseError::fail(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(seed ^ common::seed());
        let mut h = server.handle();
        for w in 0..40u64 {
            // Oscillate between calm and over-subscribed windows.
            let load = if w % 4 == 3 { limit + 3 } else { rng.gen_range(0..=limit / 2) };
            for i in 0..load as u64 {
                h.submit(1, rng.gen_range(0..10_000u64), w * t_ns + i);
            }
        }
        drop(h);
        let m = server.finish();
        prop_assert!(m.max_window_guaranteed <= limit as u64);
        // Overflow admissions may project past their deadline and hedge;
        // each completes exactly once, by the primary or a winning hedge.
        prop_assert_eq!(m.hedges_won, m.hedges_cancelled);
        prop_assert_eq!(m.served + m.hedges_won, m.admitted_total());
        prop_assert!(m.max_window_total >= m.max_window_guaranteed);
        let t_overflow: u64 = m.tenants.iter().map(|t| t.overflow).sum();
        prop_assert_eq!(t_overflow, m.overflow);
    }

    /// Any single scripted failure — any device, any window, any duration
    /// — stays within every catalog design's `c − 1` tolerance (c ≥ 3),
    /// so a full-rate deterministic replay must finish with zero deadline
    /// misses and zero lost requests.
    #[test]
    fn single_failure_within_tolerance_never_misses(
        design_idx in 0..4usize,
        m in 1..=2usize,
        device in any::<usize>(),
        fail_at in 0..20u64,
        duration in 1..=15u64,
        eft in any::<bool>(),
        stream in any::<u64>(),
    ) {
        let (n, _) = DESIGNS[design_idx % DESIGNS.len()];
        let qos = qos_for(design_idx, m, 0.0);
        // Stay within the degraded cap M · (n − 1) so the failure tightens
        // admission without forcing rejections.
        let rate = qos.request_limit().min(m * (n - 1));
        let device = device % n;
        let r = common::Scenario::new(
            qos,
            FaultSchedule::new().fail(device, fail_at).recover(device, fail_at + duration),
        )
        .mode(if eft { AssignmentMode::Eft } else { AssignmentMode::OptimalFlow })
        .windows(30)
        .stream(stream)
        .tenant(1, rate, OverloadPolicy::Delay)
        .replay();
        common::assert_guarantee_held(&r);
        prop_assert!(r.metrics.degraded_windows > 0);
        prop_assert_eq!(r.metrics.served, r.submitted - r.rejected);
    }

    /// Any mix of one fail-stop device and one silently degraded device —
    /// within every catalog design's `c − 1` co-hosting tolerance — must
    /// conserve requests exactly: every admission completes once (primary
    /// or winning hedge, never both) or is audited as lost, and a hedge
    /// win always cancels exactly one primary.
    #[test]
    fn fail_slow_mix_conserves_and_never_double_serves(
        design_idx in 0..4usize,
        fail_dev in any::<usize>(),
        slow_dev in any::<usize>(),
        factor in 2..=12u32,
        fail_at in 0..15u64,
        slow_at in 0..15u64,
        duration in 1..=10u64,
        eft in any::<bool>(),
        stream in any::<u64>(),
    ) {
        let (n, _) = DESIGNS[design_idx % DESIGNS.len()];
        let qos = qos_for(design_idx, 1, 0.0);
        let fail_dev = fail_dev % n;
        // Distinct devices: one fail-stop, one fail-slow — two affected
        // devices, within c − 1 for every catalog design (c ≥ 3).
        let slow_dev = if slow_dev % n == fail_dev { (fail_dev + 1) % n } else { slow_dev % n };
        let rate = qos.request_limit().min(n - 2);
        let r = common::Scenario::new(
            qos,
            FaultSchedule::new()
                .fail(fail_dev, fail_at)
                .recover(fail_dev, fail_at + duration)
                .slow(slow_dev, slow_at, factor)
                .restore(slow_dev, slow_at + duration),
        )
        .mode(if eft { AssignmentMode::Eft } else { AssignmentMode::OptimalFlow })
        .windows(40)
        .stream(stream)
        .tenant(1, rate, OverloadPolicy::Delay)
        .replay();
        let m = &r.metrics;
        prop_assert_eq!(m.hedges_won, m.hedges_cancelled);
        prop_assert_eq!(
            m.served + m.fault_lost + m.hedges_cancelled,
            m.admitted_total(),
            "conservation: served {} + lost {} + hedge-cancelled {} vs admitted {}",
            m.served, m.fault_lost, m.hedges_cancelled, m.admitted_total()
        );
        prop_assert_eq!(m.fault_lost, 0, "one failed device is within tolerance");
        prop_assert_eq!(m.admitted_total() + m.rejected, r.submitted);
    }

    /// Failing every replica of a bucket (≥ c co-hosted failures, beyond
    /// tolerance) must reject submissions naming it — promptly, never by
    /// stalling the engine or silently dropping them.
    #[test]
    fn co_hosted_failures_reject_not_stall(
        design_idx in 0..4usize,
        bucket in any::<u64>(),
        stream in any::<u64>(),
    ) {
        let (n, c) = DESIGNS[design_idx % DESIGNS.len()];
        let deployment = qos_for(design_idx, 1, 0.0);
        let pool = AllocationScheme::num_buckets(&deployment.scheme) as u64;
        let bucket = bucket % pool;
        let failed = common::bucket_replicas(n, c, bucket);
        let mut schedule = FaultSchedule::new();
        for &d in &failed {
            schedule = schedule.fail(d, 0);
        }
        let server = QosServer::new(
            ServerConfig::new(deployment).with_fault_schedule(schedule),
        )
        .map_err(proptest::TestCaseError::fail)?;
        server
            .register(1, 2, OverloadPolicy::Delay)
            .map_err(|e| proptest::TestCaseError::fail(e.to_string()))?;
        let mut h = server.handle();
        let mut rng = common::rng(stream);
        let mut live = 0u64;
        for w in 0..10u64 {
            prop_assert_eq!(
                h.submit(1, bucket, w * BASE_INTERVAL_NS),
                SubmitOutcome::Rejected(RejectReason::ReplicasUnavailable)
            );
            // A bucket avoiding the dead replica set must keep flowing
            // (rotations can hand other buckets the same dead triple —
            // skip those, they are correctly refused too).
            let other = rng.gen_range(0..pool);
            let other_dead =
                common::bucket_replicas(n, c, other).iter().all(|d| failed.contains(d));
            if !other_dead && h.submit(1, other, w * BASE_INTERVAL_NS + 1).is_admitted() {
                live += 1;
            }
        }
        drop(h);
        let metrics = server.finish();
        prop_assert_eq!(metrics.fault_rejected, 10);
        prop_assert_eq!(metrics.fault_lost, 0);
        prop_assert_eq!(metrics.served, live, "no stall: finish() drains exactly the admitted");
        prop_assert_eq!(metrics.guaranteed_violations, 0);
    }
}

/// Subprocess entry point for the crash-recovery property below: a no-op
/// unless the parent armed `FQOS_CRASH_CHILD` (see
/// `common::crash_child_entry`).
#[test]
fn crash_child() {
    common::crash_child_entry();
}

/// Crash-property case count: `PROPTEST_CASES` (CI sets 64), defaulting
/// low locally — every case re-execs the test binary as a subprocess.
fn crash_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(crash_cases()))]

    /// Any random trace crashed at any named WAL point (at any hit, or not
    /// crashed at all) recovers to a state where the conservation law
    /// holds over the durable record, no acknowledged admission is lost,
    /// and at most the single logged-but-unacked admission a
    /// `fsync_batch = 1` log can hold is resurrected. The scenario is
    /// shrinkable through the `Scenario` spec codec like every other
    /// property here.
    #[test]
    fn any_crash_point_recovers_to_a_conserved_state(
        design_idx in 0..4usize,
        m in 1..=2usize,
        two_tenants in any::<bool>(),
        windows in 8..24u64,
        stream in any::<u64>(),
        point_idx in 0..=6usize,
        nth in 1..=30u64,
        write_pct in 0..=50u64,
    ) {
        let (n, c) = DESIGNS[design_idx % DESIGNS.len()];
        let mut scenario = common::Scenario::sized(n, c, m)
            .windows(windows)
            .stream(stream)
            .write_fraction(write_pct as f64 / 100.0)
            .tenant(1, 1, OverloadPolicy::Delay);
        if two_tenants {
            scenario = scenario.tenant(2, 1, OverloadPolicy::Reject);
        }
        // Index 6 (one past the named points) means "no crash"; a named
        // point whose `nth` hit never occurs also exits cleanly, which the
        // clean-run branch below must accept. The write fraction mixes
        // replica fan-out groups into the trace, so crashes can now land
        // with a write group half-programmed across its replicas.
        let point = CRASH_POINTS.get(point_idx).map(|p| format!("{p}:{nth}"));
        let wal_dir = common::scratch_path(&format!("prop-{stream}-{point_idx}"));
        let run = scenario.spawn_with_crash_point("crash_child", &wal_dir, point.as_deref());
        let metrics = scenario.recover_and_verify(&wal_dir);
        let _ = std::fs::remove_dir_all(&wal_dir);
        prop_assert!(
            metrics.admitted_total() >= run.acked,
            "recovery lost acked admissions: admitted {} < acked {}",
            metrics.admitted_total(), run.acked
        );
        if run.aborted {
            prop_assert!(
                metrics.admitted_total() - run.acked <= 1,
                "a batch-of-one log holds at most one unacked admission: \
                 admitted {} acked {}",
                metrics.admitted_total(), run.acked
            );
        } else {
            prop_assert_eq!(
                metrics.admitted_total(), run.acked,
                "a clean run's durable record must match its acks exactly"
            );
        }
    }
}
