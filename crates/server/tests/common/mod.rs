//! Shared plumbing for the fqos-server integration suites: one seed source
//! (the `FQOS_TEST_SEED` environment variable), independent per-stream
//! RNGs derived from it, and a deterministic replay harness that drives
//! seeded traces through a server built with a scripted fault schedule and
//! audits the paper's guarantee on the result.
//!
//! Every suite pulls its randomness through [`seed`]/[`rng`], so one
//! `FQOS_TEST_SEED=0xDEADBEEF cargo test` reproduces a failure across the
//! stress, property and fault binaries at once.
#![allow(dead_code)] // each test binary links its own subset of helpers

use fqos_core::{OverloadPolicy, QosConfig};
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use fqos_designs::DesignCatalog;
use fqos_flashsim::time::{BASE_INTERVAL_NS, BLOCK_READ_NS};
use fqos_server::{
    AssignmentMode, FaultSchedule, GcConfig, IoOp, MetricsSnapshot, QosServer, ServerConfig,
    SubmitOutcome,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base seed when `FQOS_TEST_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x5EED_F00D;

/// The suite-wide base seed: `FQOS_TEST_SEED` parsed as decimal or
/// `0x`-prefixed hex, falling back to [`DEFAULT_SEED`]. Panics on a value
/// that parses as neither, so a typo'd override fails loudly instead of
/// silently testing the default.
pub fn seed() -> u64 {
    match std::env::var("FQOS_TEST_SEED") {
        Err(_) => DEFAULT_SEED,
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("FQOS_TEST_SEED: cannot parse '{v}'"))
        }
    }
}

/// An RNG on an independent stream derived from the base seed. Streams are
/// decorrelated with a splitmix64 finalizer so `rng(0)` and `rng(1)` do
/// not overlap even though they share one seed.
pub fn rng(stream: u64) -> StdRng {
    let mut z = seed() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// QoS deployment over a catalog `(n, c, 1)` design with `m` accesses per
/// interval and deterministic admission (ε = 0).
pub fn qos(n: usize, c: usize, m: usize) -> QosConfig {
    let design = DesignCatalog.find(n, c).expect("catalog design");
    QosConfig {
        scheme: DesignTheoretic::new(design),
        accesses: m,
        interval_ns: m as u64 * BASE_INTERVAL_NS,
        epsilon: 0.0,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    }
}

/// What one replayed scenario produced.
pub struct Replay {
    /// Final engine metrics (fault counters included).
    pub metrics: MetricsSnapshot,
    /// Requests pushed through `submit` across all tenants.
    pub submitted: u64,
    /// Outcomes that were `Rejected(_)` at submit time.
    pub rejected: u64,
}

/// A deterministic replay scenario: per-tenant seeded traces against a
/// server carrying a scripted fault schedule. Each tenant contributes
/// `reserved` requests per window at jittered in-window arrival offsets
/// over uniform random buckets; the traces are merged into one
/// arrival-ordered stream and submitted from a single thread, so a replay
/// is bit-reproducible for a given `FQOS_TEST_SEED` (thread-interleaving
/// nondeterminism is the stress suite's job, not this harness's).
pub struct Scenario {
    pub qos: QosConfig,
    pub mode: AssignmentMode,
    pub schedule: FaultSchedule,
    /// `(tenant id, reserved = per-window rate, policy)`.
    pub tenants: Vec<(u64, usize, OverloadPolicy)>,
    pub windows: u64,
    /// RNG stream id; vary to decorrelate scenarios within one suite.
    pub stream: u64,
    pub workers: usize,
    pub queue_depth: usize,
    /// Fraction of the trace issued as writes (fanned out to every
    /// replica by the engine). 0.0 keeps the historical read-only stream
    /// byte-identical — the op draw is skipped entirely.
    pub write_fraction: f64,
    /// FTL write/GC model attached to every worker device.
    pub gc: Option<GcConfig>,
    /// Speculative re-dispatch of late reads (on by default, matching the
    /// server default); GC-storm scenarios compare both settings.
    pub hedging: bool,
    /// Crash-child only: after the trace, deregister this tenant (while
    /// its tail windows are still unsealed) and abort — the recipe for a
    /// durable `DrainPending` state.
    pub deregister_after: Option<u64>,
    /// The `(n, c, m)` catalog triple behind `qos`, recorded by
    /// [`Scenario::sized`] so crash suites can serialize the scenario for
    /// a subprocess; `(0, 0, 0)` when built from a raw [`QosConfig`].
    design: (usize, usize, usize),
}

impl Scenario {
    /// Scenario over `qos` with a schedule; add tenants before replaying.
    pub fn new(qos: QosConfig, schedule: FaultSchedule) -> Self {
        Scenario {
            qos,
            mode: AssignmentMode::OptimalFlow,
            schedule,
            tenants: Vec::new(),
            windows: 60,
            stream: 0,
            workers: 4,
            queue_depth: 16,
            write_fraction: 0.0,
            gc: None,
            hedging: true,
            deregister_after: None,
            design: (0, 0, 0),
        }
    }

    /// Issue `fraction` of the trace as writes (0.0–1.0).
    pub fn write_fraction(mut self, fraction: f64) -> Self {
        self.write_fraction = fraction;
        self
    }

    /// Attach an FTL write/GC model to every worker device.
    pub fn gc(mut self, gc: GcConfig) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Enable or disable hedged reads.
    pub fn hedging(mut self, on: bool) -> Self {
        self.hedging = on;
        self
    }

    /// See [`Scenario::deregister_after`].
    pub fn deregister_after(mut self, tenant: u64) -> Self {
        self.deregister_after = Some(tenant);
        self
    }

    pub fn mode(mut self, mode: AssignmentMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn windows(mut self, windows: u64) -> Self {
        self.windows = windows;
        self
    }

    pub fn stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }

    pub fn tenant(mut self, id: u64, reserved: usize, policy: OverloadPolicy) -> Self {
        self.tenants.push((id, reserved, policy));
        self
    }

    /// Build the server, replay every tenant's seeded trace and drain.
    pub fn replay(self) -> Replay {
        let interval_ns = self.qos.interval_ns;
        let pool = AllocationScheme::num_buckets(&self.qos.scheme) as u64;
        let mut cfg = ServerConfig::new(self.qos)
            .with_workers(self.workers)
            .with_queue_depth(self.queue_depth)
            .with_assignment(self.mode)
            .with_fault_schedule(self.schedule)
            .with_hedging(self.hedging);
        if let Some(g) = self.gc {
            cfg = cfg.with_gc_model(g);
        }
        let server = QosServer::new(cfg).expect("scenario config");
        for &(t, r, p) in &self.tenants {
            server.register(t, r, p).expect("scenario registration");
        }
        let events = merged_events(
            &self.tenants,
            self.windows,
            self.stream,
            interval_ns,
            pool,
            self.write_fraction,
        );
        let (mut submitted, mut rejected) = (0u64, 0u64);
        let mut h = server.handle();
        for &(at, tenant, lbn, is_write) in &events {
            let op = if is_write { IoOp::Write } else { IoOp::Read };
            if let SubmitOutcome::Rejected(_) = h.submit_op(tenant, lbn, at, op) {
                rejected += 1;
            }
            submitted += 1;
        }
        drop(h);
        Replay {
            metrics: server.finish(),
            submitted,
            rejected,
        }
    }
}

/// The degraded-mode contract, asserted in one place: the deterministic
/// guarantee holds (no deadline misses at all under ε = 0), nothing
/// admitted was lost to a failure, and accounting balances.
pub fn assert_guarantee_held(r: &Replay) {
    let m = &r.metrics;
    assert_eq!(
        m.guaranteed_violations, 0,
        "guaranteed admission missed its interval deadline"
    );
    assert_eq!(m.deadline_violations, 0, "deadline missed");
    assert_eq!(m.fault_lost, 0, "admitted request lost to a failure");
    assert_eq!(
        m.fault_overloads, 0,
        "scripted schedules admit under the execution mask, so the seal \
         rebuild can never be infeasible"
    );
    assert_eq!(
        m.hedges_won, m.hedges_cancelled,
        "a hedge win must cancel exactly one primary"
    );
    assert_eq!(m.write_lost, 0, "logical write lost a replica");
    assert_eq!(
        m.settled(),
        m.admitted_total(),
        "admitted and settled diverge"
    );
    assert_eq!(m.rejected, r.rejected, "rejection accounting diverges");
    assert_eq!(
        m.admitted_total() + m.rejected,
        r.submitted,
        "requests leaked"
    );
}

/// The replica set of design bucket `b` under the `(n, c, 1)` catalog
/// design — lets fault tests script a failure that co-hosts a bucket.
pub fn bucket_replicas(n: usize, c: usize, bucket: u64) -> Vec<usize> {
    let scheme = DesignTheoretic::new(DesignCatalog.find(n, c).expect("catalog design"));
    scheme.replicas(scheme.bucket_for_lbn(bucket)).to_vec()
}

// --- crash-consistency harness -------------------------------------------
//
// The crash suites need a real process death (`std::process::abort` at a
// named WAL crash point), so the trace runs in a subprocess: the parent
// re-execs its own test binary filtered down to a `crash_child` test whose
// body is [`crash_child_entry`]. The scenario travels through
// `FQOS_CRASH_SCENARIO` (see [`Scenario::to_spec`]); the child appends one
// line to an acks file per submit-time acknowledgement, so the parent can
// compare what was promised against what recovery restores.

/// Environment variable that arms [`crash_child_entry`]; without it the
/// `crash_child` test is a no-op, so plain `cargo test` skips it.
pub const CRASH_CHILD_ENV: &str = "FQOS_CRASH_CHILD";

/// What a crashed (or cleanly finished) child run left behind.
pub struct CrashRun {
    /// True when the child died (the armed crash point fired); false on a
    /// clean exit.
    pub aborted: bool,
    /// Submissions the child acknowledged (complete lines in the acks
    /// file) before it stopped.
    pub acked: u64,
}

/// A scratch path under the system temp dir, unique per process and tag.
/// Any leftover from a previous run at the same path is removed first.
pub fn scratch_path(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("fqos-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

/// Merge per-tenant seeded traces into one arrival-ordered
/// `(arrival_ns, tenant, lbn, is_write)` stream — the same derivation
/// [`Scenario::replay`] uses, so parent and child agree on the trace.
/// With `write_fraction == 0.0` the op draw is skipped, keeping the
/// read-only stream identical to the historical derivation.
fn merged_events(
    tenants: &[(u64, usize, OverloadPolicy)],
    windows: u64,
    stream: u64,
    interval_ns: u64,
    pool: u64,
    write_fraction: f64,
) -> Vec<(u64, u64, u64, bool)> {
    let mut events: Vec<(u64, u64, u64, bool)> = Vec::new();
    for &(tenant, rate, _) in tenants {
        let mut rng = rng(stream.wrapping_mul(101).wrapping_add(tenant));
        for w in 0..windows {
            for _ in 0..rate {
                let lbn = rng.gen_range(0..pool);
                let at = w * interval_ns + rng.gen_range(0..interval_ns);
                let is_write = write_fraction > 0.0 && rng.gen_bool(write_fraction);
                events.push((at, tenant, lbn, is_write));
            }
        }
    }
    events.sort_unstable();
    events
}

impl Scenario {
    /// Scenario over the catalog `(n, c, 1)` design with `m` accesses per
    /// interval, remembering the triple so the scenario can be serialized
    /// for a crash-child subprocess ([`Scenario::to_spec`]).
    pub fn sized(n: usize, c: usize, m: usize) -> Self {
        let mut s = Scenario::new(qos(n, c, m), FaultSchedule::new());
        s.design = (n, c, m);
        s
    }

    /// Serialize for `FQOS_CRASH_SCENARIO`:
    /// `n,c,m,windows,stream,workers,queue_depth,writepct;tenant:rate:policy;...`
    /// (policy `d`elay / `r`eject; `writepct` is the write fraction in
    /// percent). Requires [`Scenario::sized`].
    pub fn to_spec(&self) -> String {
        let (n, c, m) = self.design;
        assert!(n != 0, "to_spec needs a Scenario::sized scenario");
        let mut spec = format!(
            "{n},{c},{m},{},{},{},{},{}",
            self.windows,
            self.stream,
            self.workers,
            self.queue_depth,
            (self.write_fraction * 100.0).round() as u64
        );
        for &(t, r, p) in &self.tenants {
            let p = match p {
                OverloadPolicy::Delay => 'd',
                OverloadPolicy::Reject => 'r',
            };
            spec.push_str(&format!(";{t}:{r}:{p}"));
        }
        spec
    }

    /// Parse a [`Scenario::to_spec`] string.
    pub fn from_spec(spec: &str) -> Self {
        let mut parts = spec.split(';');
        let head = parts.next().expect("spec head");
        let nums: Vec<u64> = head
            .split(',')
            .map(|v| v.parse().expect("spec number"))
            .collect();
        assert_eq!(
            nums.len(),
            8,
            "spec head: n,c,m,windows,stream,workers,depth,writepct"
        );
        let mut s = Scenario::sized(nums[0] as usize, nums[1] as usize, nums[2] as usize);
        s.windows = nums[3];
        s.stream = nums[4];
        s.workers = nums[5] as usize;
        s.queue_depth = nums[6] as usize;
        s.write_fraction = nums[7] as f64 / 100.0;
        for t in parts {
            let f: Vec<&str> = t.split(':').collect();
            assert_eq!(f.len(), 3, "tenant spec: id:rate:policy");
            let policy = match f[2] {
                "d" => OverloadPolicy::Delay,
                "r" => OverloadPolicy::Reject,
                other => panic!("tenant policy '{other}'"),
            };
            s = s.tenant(
                f[0].parse().expect("tenant id"),
                f[1].parse().expect("rate"),
                policy,
            );
        }
        s
    }

    /// The WAL-backed server config this scenario runs under (child and
    /// recovery sides must build the identical config).
    pub fn wal_config(&self, wal_dir: &std::path::Path) -> ServerConfig {
        let (n, c, m) = self.design;
        assert!(n != 0, "wal_config needs a Scenario::sized scenario");
        ServerConfig::new(qos(n, c, m))
            .with_workers(self.workers)
            .with_queue_depth(self.queue_depth)
            .with_assignment(self.mode)
            .with_wal(wal_dir)
            .with_wal_fsync_batch(1)
            .with_wal_snapshot_interval(4)
    }

    /// Re-exec the current test binary filtered to `child_test` (whose
    /// body must call [`crash_child_entry`]), arm `crash_point`
    /// (`name[:N]`), and wait. Returns the exit shape plus how many
    /// submissions the child acknowledged before stopping.
    pub fn spawn_with_crash_point(
        &self,
        child_test: &str,
        wal_dir: &std::path::Path,
        crash_point: Option<&str>,
    ) -> CrashRun {
        let acks = scratch_path(&format!("acks-{}", self.stream));
        let exe = std::env::current_exe().expect("test binary path");
        let mut cmd = std::process::Command::new(exe);
        cmd.arg(child_test)
            .arg("--exact")
            .arg("--nocapture")
            .arg("--test-threads")
            .arg("1")
            .env(CRASH_CHILD_ENV, "1")
            .env("FQOS_CRASH_SCENARIO", self.to_spec())
            .env("FQOS_WAL_DIR", wal_dir)
            .env("FQOS_ACKS_PATH", &acks)
            .env("FQOS_TEST_SEED", format!("{:#x}", seed()));
        match crash_point {
            Some(p) => cmd.env("FQOS_CRASH_POINT", p),
            None => cmd.env_remove("FQOS_CRASH_POINT"),
        };
        match self.deregister_after {
            Some(t) => cmd.env("FQOS_CRASH_DEREGISTER", t.to_string()),
            None => cmd.env_remove("FQOS_CRASH_DEREGISTER"),
        };
        let out = cmd.output().expect("spawn crash child");
        let acked = std::fs::read_to_string(&acks)
            .map(|s| s.lines().filter(|l| !l.is_empty()).count() as u64)
            .unwrap_or(0);
        let _ = std::fs::remove_file(&acks);
        if crash_point.is_none() && self.deregister_after.is_none() && !out.status.success() {
            panic!(
                "clean child run failed:\n{}\n{}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
        }
        CrashRun {
            aborted: !out.status.success(),
            acked,
        }
    }

    /// Recover the WAL at `wal_dir` under this scenario's config, drain the
    /// re-parked work, and audit the crash-consistency contract: the
    /// conservation law restricted to durable admissions, the hedge
    /// exactly-once invariant, and an empty per-tenant in-flight ledger.
    pub fn recover_and_verify(&self, wal_dir: &std::path::Path) -> MetricsSnapshot {
        let server = QosServer::recover(self.wal_config(wal_dir)).expect("recover");
        let m = server.finish();
        assert_eq!(
            m.settled(),
            m.admitted_total(),
            "recovered accounting diverges: served {} + write_settled {} + lost {} \
             + cancelled {} + write_lost {} != admitted {}",
            m.served,
            m.write_settled,
            m.fault_lost,
            m.hedges_cancelled,
            m.write_lost,
            m.admitted_total()
        );
        assert_eq!(
            m.hedges_won, m.hedges_cancelled,
            "a hedge win must cancel exactly one primary"
        );
        for t in &m.tenants {
            assert_eq!(
                t.in_flight(),
                0,
                "tenant {} still in flight after recovery drain",
                t.tenant
            );
        }
        m
    }
}

/// Body of the `crash_child` test every crash suite declares: no-op unless
/// [`CRASH_CHILD_ENV`] is set, otherwise replays the scenario from
/// `FQOS_CRASH_SCENARIO` against a WAL at `FQOS_WAL_DIR`, appending one
/// line to `FQOS_ACKS_PATH` per acknowledged submission. An armed
/// `FQOS_CRASH_POINT` aborts the process mid-run; otherwise the child
/// drains and exits cleanly.
pub fn crash_child_entry() {
    if std::env::var(CRASH_CHILD_ENV).is_err() {
        return;
    }
    use std::io::Write as _;
    let spec = std::env::var("FQOS_CRASH_SCENARIO").expect("FQOS_CRASH_SCENARIO");
    let wal_dir = std::env::var("FQOS_WAL_DIR").expect("FQOS_WAL_DIR");
    let acks_path = std::env::var("FQOS_ACKS_PATH").expect("FQOS_ACKS_PATH");
    let scenario = Scenario::from_spec(&spec);
    let interval_ns = scenario.qos.interval_ns;
    let pool = AllocationScheme::num_buckets(&scenario.qos.scheme) as u64;
    let server =
        QosServer::new(scenario.wal_config(std::path::Path::new(&wal_dir))).expect("child server");
    for &(t, r, p) in &scenario.tenants {
        server.register(t, r, p).expect("child registration");
    }
    let events = merged_events(
        &scenario.tenants,
        scenario.windows,
        scenario.stream,
        interval_ns,
        pool,
        scenario.write_fraction,
    );
    let mut acks = std::fs::File::create(&acks_path).expect("acks file");
    let mut h = server.handle();
    for &(at, tenant, lbn, is_write) in &events {
        let op = if is_write { IoOp::Write } else { IoOp::Read };
        let outcome = h.submit_op(tenant, lbn, at, op);
        if !matches!(outcome, SubmitOutcome::Rejected(_)) {
            // The ack line is the durability promise made to the caller:
            // with fsync_batch = 1 the admit record hit stable storage
            // before `submit` returned.
            writeln!(acks, "{tenant} {lbn} {at}").expect("ack write");
            acks.flush().expect("ack flush");
        }
    }
    if let Ok(t) = std::env::var("FQOS_CRASH_DEREGISTER") {
        // The handle stays open, so the tail windows cannot seal: the
        // departing tenant dies with durable unsettled admissions — the
        // persisted shape of a `DrainPending` record.
        let t: u64 = t.parse().expect("FQOS_CRASH_DEREGISTER tenant id");
        server.deregister(t);
        std::process::abort();
    }
    drop(h);
    server.finish();
}
