//! Shared plumbing for the fqos-server integration suites: one seed source
//! (the `FQOS_TEST_SEED` environment variable), independent per-stream
//! RNGs derived from it, and a deterministic replay harness that drives
//! seeded traces through a server built with a scripted fault schedule and
//! audits the paper's guarantee on the result.
//!
//! Every suite pulls its randomness through [`seed`]/[`rng`], so one
//! `FQOS_TEST_SEED=0xDEADBEEF cargo test` reproduces a failure across the
//! stress, property and fault binaries at once.
#![allow(dead_code)] // each test binary links its own subset of helpers

use fqos_core::{OverloadPolicy, QosConfig};
use fqos_decluster::{AllocationScheme, DesignTheoretic};
use fqos_designs::DesignCatalog;
use fqos_flashsim::time::{BASE_INTERVAL_NS, BLOCK_READ_NS};
use fqos_server::{
    AssignmentMode, FaultSchedule, MetricsSnapshot, QosServer, ServerConfig, SubmitOutcome,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base seed when `FQOS_TEST_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x5EED_F00D;

/// The suite-wide base seed: `FQOS_TEST_SEED` parsed as decimal or
/// `0x`-prefixed hex, falling back to [`DEFAULT_SEED`]. Panics on a value
/// that parses as neither, so a typo'd override fails loudly instead of
/// silently testing the default.
pub fn seed() -> u64 {
    match std::env::var("FQOS_TEST_SEED") {
        Err(_) => DEFAULT_SEED,
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("FQOS_TEST_SEED: cannot parse '{v}'"))
        }
    }
}

/// An RNG on an independent stream derived from the base seed. Streams are
/// decorrelated with a splitmix64 finalizer so `rng(0)` and `rng(1)` do
/// not overlap even though they share one seed.
pub fn rng(stream: u64) -> StdRng {
    let mut z = seed() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// QoS deployment over a catalog `(n, c, 1)` design with `m` accesses per
/// interval and deterministic admission (ε = 0).
pub fn qos(n: usize, c: usize, m: usize) -> QosConfig {
    let design = DesignCatalog.find(n, c).expect("catalog design");
    QosConfig {
        scheme: DesignTheoretic::new(design),
        accesses: m,
        interval_ns: m as u64 * BASE_INTERVAL_NS,
        epsilon: 0.0,
        policy: OverloadPolicy::Delay,
        service_ns: BLOCK_READ_NS,
    }
}

/// What one replayed scenario produced.
pub struct Replay {
    /// Final engine metrics (fault counters included).
    pub metrics: MetricsSnapshot,
    /// Requests pushed through `submit` across all tenants.
    pub submitted: u64,
    /// Outcomes that were `Rejected(_)` at submit time.
    pub rejected: u64,
}

/// A deterministic replay scenario: per-tenant seeded traces against a
/// server carrying a scripted fault schedule. Each tenant contributes
/// `reserved` requests per window at jittered in-window arrival offsets
/// over uniform random buckets; the traces are merged into one
/// arrival-ordered stream and submitted from a single thread, so a replay
/// is bit-reproducible for a given `FQOS_TEST_SEED` (thread-interleaving
/// nondeterminism is the stress suite's job, not this harness's).
pub struct Scenario {
    pub qos: QosConfig,
    pub mode: AssignmentMode,
    pub schedule: FaultSchedule,
    /// `(tenant id, reserved = per-window rate, policy)`.
    pub tenants: Vec<(u64, usize, OverloadPolicy)>,
    pub windows: u64,
    /// RNG stream id; vary to decorrelate scenarios within one suite.
    pub stream: u64,
    pub workers: usize,
    pub queue_depth: usize,
}

impl Scenario {
    /// Scenario over `qos` with a schedule; add tenants before replaying.
    pub fn new(qos: QosConfig, schedule: FaultSchedule) -> Self {
        Scenario {
            qos,
            mode: AssignmentMode::OptimalFlow,
            schedule,
            tenants: Vec::new(),
            windows: 60,
            stream: 0,
            workers: 4,
            queue_depth: 16,
        }
    }

    pub fn mode(mut self, mode: AssignmentMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn windows(mut self, windows: u64) -> Self {
        self.windows = windows;
        self
    }

    pub fn stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }

    pub fn tenant(mut self, id: u64, reserved: usize, policy: OverloadPolicy) -> Self {
        self.tenants.push((id, reserved, policy));
        self
    }

    /// Build the server, replay every tenant's seeded trace and drain.
    pub fn replay(self) -> Replay {
        let interval_ns = self.qos.interval_ns;
        let pool = AllocationScheme::num_buckets(&self.qos.scheme) as u64;
        let server = QosServer::new(
            ServerConfig::new(self.qos)
                .with_workers(self.workers)
                .with_queue_depth(self.queue_depth)
                .with_assignment(self.mode)
                .with_fault_schedule(self.schedule),
        )
        .expect("scenario config");
        for &(t, r, p) in &self.tenants {
            server.register(t, r, p).expect("scenario registration");
        }
        // Merge the per-tenant traces into one arrival-ordered stream.
        let mut events: Vec<(u64, u64, u64)> = Vec::new();
        for &(tenant, rate, _) in &self.tenants {
            let mut rng = rng(self.stream.wrapping_mul(101).wrapping_add(tenant));
            for w in 0..self.windows {
                for _ in 0..rate {
                    let lbn = rng.gen_range(0..pool);
                    let at = w * interval_ns + rng.gen_range(0..interval_ns);
                    events.push((at, tenant, lbn));
                }
            }
        }
        events.sort_unstable();
        let (mut submitted, mut rejected) = (0u64, 0u64);
        let mut h = server.handle();
        for &(at, tenant, lbn) in &events {
            if let SubmitOutcome::Rejected(_) = h.submit(tenant, lbn, at) {
                rejected += 1;
            }
            submitted += 1;
        }
        drop(h);
        Replay {
            metrics: server.finish(),
            submitted,
            rejected,
        }
    }
}

/// The degraded-mode contract, asserted in one place: the deterministic
/// guarantee holds (no deadline misses at all under ε = 0), nothing
/// admitted was lost to a failure, and accounting balances.
pub fn assert_guarantee_held(r: &Replay) {
    let m = &r.metrics;
    assert_eq!(
        m.guaranteed_violations, 0,
        "guaranteed admission missed its interval deadline"
    );
    assert_eq!(m.deadline_violations, 0, "deadline missed");
    assert_eq!(m.fault_lost, 0, "admitted request lost to a failure");
    assert_eq!(
        m.fault_overloads, 0,
        "scripted schedules admit under the execution mask, so the seal \
         rebuild can never be infeasible"
    );
    assert_eq!(
        m.hedges_won, m.hedges_cancelled,
        "a hedge win must cancel exactly one primary"
    );
    assert_eq!(
        m.served + m.fault_lost + m.hedges_cancelled,
        m.admitted_total(),
        "admitted and completed diverge"
    );
    assert_eq!(m.rejected, r.rejected, "rejection accounting diverges");
    assert_eq!(
        m.admitted_total() + m.rejected,
        r.submitted,
        "requests leaked"
    );
}

/// The replica set of design bucket `b` under the `(n, c, 1)` catalog
/// design — lets fault tests script a failure that co-hosts a bucket.
pub fn bucket_replicas(n: usize, c: usize, bucket: u64) -> Vec<usize> {
    let scheme = DesignTheoretic::new(DesignCatalog.find(n, c).expect("catalog design"));
    scheme.replicas(scheme.bucket_for_lbn(bucket)).to_vec()
}
