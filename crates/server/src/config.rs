//! Serving-engine configuration.

use crate::fault::FaultSchedule;
use fqos_core::QosConfig;

/// How the engine assigns an admitted request to one of its `c` replica
/// devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentMode {
    /// Maintain an incremental max-flow retrieval schedule per window
    /// ([`fqos_maxflow::IncrementalRetrieval`]): admission is exact — a
    /// request is refused only if **no** reassignment of the window's
    /// earlier requests fits the `M`-access budget. Replica choice is
    /// deferred to window seal, when the final flow is known.
    #[default]
    OptimalFlow,
    /// Greedy earliest-finish-time on arrival: pick the replica with the
    /// least load at submit time, refuse when all replicas are at `M`.
    /// Cheaper per request and assigns immediately, but an unlucky arrival
    /// order can strand a feasible set (online bipartite matching is not
    /// exact), surfacing as extra delays under bursty same-bucket load.
    Eft,
}

/// Number of ring slots the engine keeps live window state for. Bounds how
/// far apart the slowest and fastest submitter clocks may drift, plus the
/// delay horizon.
pub const WINDOW_RING: usize = 1024;

/// Configuration of one [`crate::QosServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The underlying QoS deployment (scheme, `M`, interval, ε, policy).
    pub qos: QosConfig,
    /// Worker threads driving device service loops. Devices are owned
    /// `device % workers`, so at most `devices()` workers are useful.
    pub workers: usize,
    /// Bound of each worker's request queue; submitters block once the
    /// backlog from sealed windows reaches this depth (backpressure).
    pub queue_depth: usize,
    /// Tenant-registry shard count (lock striping for the hot lookup path).
    pub shards: usize,
    /// Replica assignment algorithm.
    pub assignment: AssignmentMode,
    /// How many windows beyond arrival a `Delay`-policy request may be
    /// pushed before it is rejected outright.
    pub delay_horizon: u64,
    /// Scripted device failures and recoveries replayed by the fault plane
    /// (empty = all devices healthy unless faults are injected live).
    pub fault_schedule: FaultSchedule,
    /// Live window-ring slots ([`WINDOW_RING`] by default). Model-checking
    /// configs shrink this so schedule exploration wraps the ring within a
    /// few windows; production configs should leave it alone.
    pub ring_slots: usize,
}

impl ServerConfig {
    /// Defaults around a [`QosConfig`]: 4 workers, depth-64 queues,
    /// 8 registry shards, optimal-flow assignment, 64-window delay horizon.
    pub fn new(qos: QosConfig) -> Self {
        ServerConfig {
            qos,
            workers: 4,
            queue_depth: 64,
            shards: 8,
            assignment: AssignmentMode::default(),
            delay_horizon: 64,
            fault_schedule: FaultSchedule::new(),
            ring_slots: WINDOW_RING,
        }
    }

    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the per-worker queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the assignment mode.
    pub fn with_assignment(mut self, mode: AssignmentMode) -> Self {
        self.assignment = mode;
        self
    }

    /// Set the delay horizon (windows).
    pub fn with_delay_horizon(mut self, horizon: u64) -> Self {
        self.delay_horizon = horizon;
        self
    }

    /// Script device failures and recoveries for the fault plane.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.fault_schedule = schedule;
        self
    }

    /// Set the window-ring size (slots). Must stay more than twice the
    /// delay horizon; meant for model-checking configs that need a small
    /// state space.
    pub fn with_ring_slots(mut self, slots: usize) -> Self {
        self.ring_slots = slots;
        self
    }

    /// Validate the composite configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.qos.validate()?;
        if self.workers == 0 {
            return Err("at least one worker thread is required".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be positive".into());
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        if self.ring_slots < 2 {
            return Err("ring_slots must be at least 2".into());
        }
        if self.delay_horizon as usize >= self.ring_slots / 2 {
            return Err(format!(
                "delay_horizon {} must stay below half the window ring ({})",
                self.delay_horizon,
                self.ring_slots / 2
            ));
        }
        self.fault_schedule.validate(self.qos.devices())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServerConfig::new(QosConfig::paper_9_3_1())
            .validate()
            .unwrap();
        ServerConfig::new(QosConfig::paper_13_3_1().with_accesses(2))
            .validate()
            .unwrap();
    }

    #[test]
    fn builders_and_bounds() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_workers(8)
            .with_queue_depth(16)
            .with_assignment(AssignmentMode::Eft)
            .with_delay_horizon(4);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.queue_depth, 16);
        assert_eq!(cfg.assignment, AssignmentMode::Eft);
        cfg.validate().unwrap();

        assert!(ServerConfig::new(QosConfig::paper_9_3_1())
            .with_workers(0)
            .validate()
            .is_err());
        assert!(ServerConfig::new(QosConfig::paper_9_3_1())
            .with_delay_horizon(WINDOW_RING as u64)
            .validate()
            .is_err());
        let mut bad = ServerConfig::new(QosConfig::paper_9_3_1());
        bad.queue_depth = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_workers() {
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_workers(0)
            .validate()
            .unwrap_err();
        assert!(err.contains("worker"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_queue_depth() {
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_queue_depth(0)
            .validate()
            .unwrap_err();
        assert!(err.contains("queue_depth"), "{err}");
    }

    #[test]
    fn ring_slots_builder_and_bounds() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_ring_slots(8)
            .with_delay_horizon(3);
        assert_eq!(cfg.ring_slots, 8);
        cfg.validate().unwrap();

        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_ring_slots(1)
            .validate()
            .unwrap_err();
        assert!(err.contains("ring_slots"), "{err}");

        // The delay horizon must stay below half the ring.
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_ring_slots(8)
            .with_delay_horizon(4)
            .validate()
            .unwrap_err();
        assert!(err.contains("delay_horizon"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_shards() {
        let mut cfg = ServerConfig::new(QosConfig::paper_9_3_1());
        cfg.shards = 0;
        assert!(cfg.validate().unwrap_err().contains("shards"));
    }

    #[test]
    fn validate_rejects_delay_horizon_at_or_past_half_the_ring() {
        // The horizon must stay below WINDOW_RING / 2 so a delayed request
        // can never land on a slot the dispatcher still owns.
        for horizon in [WINDOW_RING as u64 / 2, WINDOW_RING as u64, u64::MAX] {
            let err = ServerConfig::new(QosConfig::paper_9_3_1())
                .with_delay_horizon(horizon)
                .validate()
                .unwrap_err();
            assert!(err.contains("delay_horizon"), "{err}");
        }
        // One below the bound is fine.
        ServerConfig::new(QosConfig::paper_9_3_1())
            .with_delay_horizon(WINDOW_RING as u64 / 2 - 1)
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range_fault_events() {
        // paper_9_3_1 has 9 devices: device 9 does not exist.
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_fault_schedule(FaultSchedule::new().fail(9, 5))
            .validate()
            .unwrap_err();
        assert!(err.contains("device 9"), "{err}");
        ServerConfig::new(QosConfig::paper_9_3_1())
            .with_fault_schedule(FaultSchedule::new().fail(8, 5).recover(8, 9))
            .validate()
            .unwrap();
    }
}
