//! Serving-engine configuration.

use crate::fault::FaultSchedule;
use fqos_core::QosConfig;
use fqos_flashsim::{FtlGeometry, BLOCK_READ_NS};
use std::path::PathBuf;

/// Write/GC device model knobs (see [`fqos_flashsim::CalibratedSsd::with_gc`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Per-device FTL geometry; low over-provisioning makes GC storms easy
    /// to provoke.
    pub geometry: FtlGeometry,
    /// Block erase latency charged per GC erase.
    pub erase_ns: u64,
    /// Per-block program latency. `None` uses the calibrated read service
    /// time, which keeps the `M · service ≤ T` window math exact for
    /// writes too; setting it higher models real program cost, covered by
    /// the GC-pressure reserve rather than the deterministic bound.
    pub write_service_ns: Option<u64>,
    /// Whether window admission reserves per-device headroom proportional
    /// to the device's recent write-amplification EWMA.
    pub reserve: bool,
}

impl GcConfig {
    /// GC model over `geometry` with an erase costing one calibrated block
    /// read and the reserve enabled.
    pub fn new(geometry: FtlGeometry) -> Self {
        GcConfig {
            geometry,
            erase_ns: BLOCK_READ_NS,
            write_service_ns: None,
            reserve: true,
        }
    }

    /// Validate the model knobs.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate().map_err(|e| e.to_string())?;
        if self.write_service_ns == Some(0) {
            return Err("gc write_service_ns must be positive when set".into());
        }
        Ok(())
    }
}

/// Durability knobs for the write-ahead log (see [`crate::wal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Log directory (`wal.log` + `wal.snapshot`). `None` keeps the log
    /// in memory — same framing and ordering checks, nothing durable —
    /// which is what unit and model-check tests use.
    pub dir: Option<PathBuf>,
    /// Records per fsync batch, in `1..=4096`. `1` makes every admission
    /// durable before its ack; `N` amortizes the fsync and bounds crash
    /// loss to `N − 1` unacknowledged-durability records.
    pub fsync_batch: u64,
    /// Sealed windows between snapshot + log-truncation compactions
    /// (≥ 1). Bounds restart replay cost by the active window horizon.
    pub snapshot_interval: u64,
}

impl WalConfig {
    /// Defaults: fsync every 8 records, compact every 64 sealed windows.
    pub fn new(dir: Option<PathBuf>) -> Self {
        WalConfig {
            dir,
            fsync_batch: 8,
            snapshot_interval: 64,
        }
    }

    /// Validate the durability knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.fsync_batch == 0 || self.fsync_batch > 4096 {
            return Err(format!(
                "wal fsync_batch {} must lie in 1..=4096",
                self.fsync_batch
            ));
        }
        if self.snapshot_interval == 0 {
            return Err("wal snapshot_interval must be positive".into());
        }
        Ok(())
    }
}

/// How the engine assigns an admitted request to one of its `c` replica
/// devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentMode {
    /// Maintain an incremental max-flow retrieval schedule per window
    /// ([`fqos_maxflow::IncrementalRetrieval`]): admission is exact — a
    /// request is refused only if **no** reassignment of the window's
    /// earlier requests fits the `M`-access budget. Replica choice is
    /// deferred to window seal, when the final flow is known.
    #[default]
    OptimalFlow,
    /// Greedy earliest-finish-time on arrival: pick the replica with the
    /// least load at submit time, refuse when all replicas are at `M`.
    /// Cheaper per request and assigns immediately, but an unlucky arrival
    /// order can strand a feasible set (online bipartite matching is not
    /// exact), surfacing as extra delays under bursty same-bucket load.
    Eft,
}

/// Number of ring slots the engine keeps live window state for. Bounds how
/// far apart the slowest and fastest submitter clocks may drift, plus the
/// delay horizon.
pub const WINDOW_RING: usize = 1024;

/// Configuration of one [`crate::QosServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The underlying QoS deployment (scheme, `M`, interval, ε, policy).
    pub qos: QosConfig,
    /// Worker threads driving device service loops. Devices are owned
    /// `device % workers`, so at most `devices()` workers are useful.
    pub workers: usize,
    /// Bound of each worker's request queue; submitters block once the
    /// backlog from sealed windows reaches this depth (backpressure).
    pub queue_depth: usize,
    /// Tenant-registry shard count (lock striping for the hot lookup path).
    pub shards: usize,
    /// Replica assignment algorithm.
    pub assignment: AssignmentMode,
    /// How many windows beyond arrival a `Delay`-policy request may be
    /// pushed before it is rejected outright.
    pub delay_horizon: u64,
    /// Scripted device failures and recoveries replayed by the fault plane
    /// (empty = all devices healthy unless faults are injected live).
    pub fault_schedule: FaultSchedule,
    /// Live window-ring slots ([`WINDOW_RING`] by default). Model-checking
    /// configs shrink this so schedule exploration wraps the ring within a
    /// few windows; production configs should leave it alone.
    pub ring_slots: usize,
    /// Master switch for the fail-slow reaction path: hedged reads, the
    /// worker backoff retry chain and the seal-time slow-device drain.
    /// Detection (the health scorer) always runs; with hedging off the
    /// engine only steers *new* schedules away from detected-slow devices
    /// and otherwise serves as PR 2 did — the configuration used to
    /// demonstrate what fail-slow costs without mitigation.
    pub hedge_enabled: bool,
    /// Percentile of a device's recent service latencies used as the
    /// hedge base (in `(0, 1]`).
    pub hedge_percentile: f64,
    /// Samples the scorer needs on a device before the percentile
    /// threshold exists; below this only a projected deadline miss hedges.
    pub hedge_min_samples: usize,
    /// Hedge when the projected latency exceeds `hedge_slack ×` the
    /// percentile latency (must be ≥ 1.0; guards against jitter).
    pub hedge_slack: f64,
    /// Maximum speculative dispatches per block (first hedge + backoff
    /// retries), in `1..=16`.
    pub retry_limit: u32,
    /// Simulated detection/reissue delay added per speculative hop: the
    /// `k`-th hedge of a block starts no earlier than
    /// `exec_start + k × retry_backoff_ns`.
    pub retry_backoff_ns: u64,
    /// Scorer recent-latency ring size per device.
    pub health_window: usize,
    /// A completion is anomalous when its service latency exceeds
    /// `health_suspect_factor ×` the device's EWMA baseline (> 1.0).
    pub health_suspect_factor: f64,
    /// Consecutive anomalies promoting `Suspect → Slow`.
    pub health_promote_streak: u32,
    /// Consecutive normal completions demoting `Slow → Healthy`.
    pub health_recover_streak: u32,
    /// Sealed windows without a sample after which a `Slow` device is
    /// re-probed (put back on probation and made schedulable).
    pub health_probe_windows: u64,
    /// Write-ahead durability. `None` (the default) serves exactly as
    /// before this knob existed: nothing is logged and a crash loses all
    /// serving state.
    pub wal: Option<WalConfig>,
    /// Write/GC device model. `None` (the default) keeps the historical
    /// behavior: writes cost the calibrated read latency and never stall
    /// on garbage collection.
    pub gc: Option<GcConfig>,
}

impl ServerConfig {
    /// Defaults around a [`QosConfig`]: 4 workers, depth-64 queues,
    /// 8 registry shards, optimal-flow assignment, 64-window delay horizon.
    pub fn new(qos: QosConfig) -> Self {
        ServerConfig {
            qos,
            workers: 4,
            queue_depth: 64,
            shards: 8,
            assignment: AssignmentMode::default(),
            delay_horizon: 64,
            fault_schedule: FaultSchedule::new(),
            ring_slots: WINDOW_RING,
            hedge_enabled: true,
            hedge_percentile: 0.9,
            hedge_min_samples: 4,
            hedge_slack: 2.0,
            retry_limit: 2,
            retry_backoff_ns: 8_000,
            health_window: 16,
            health_suspect_factor: 3.0,
            health_promote_streak: 3,
            health_recover_streak: 8,
            health_probe_windows: 8,
            wal: None,
            gc: None,
        }
    }

    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the per-worker queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the assignment mode.
    pub fn with_assignment(mut self, mode: AssignmentMode) -> Self {
        self.assignment = mode;
        self
    }

    /// Set the delay horizon (windows).
    pub fn with_delay_horizon(mut self, horizon: u64) -> Self {
        self.delay_horizon = horizon;
        self
    }

    /// Script device failures and recoveries for the fault plane.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.fault_schedule = schedule;
        self
    }

    /// Set the window-ring size (slots). Must stay more than twice the
    /// delay horizon; meant for model-checking configs that need a small
    /// state space.
    pub fn with_ring_slots(mut self, slots: usize) -> Self {
        self.ring_slots = slots;
        self
    }

    /// Enable or disable the fail-slow reaction path (hedges, backoff
    /// retries, seal-time slow drain). Detection always runs.
    pub fn with_hedging(mut self, enabled: bool) -> Self {
        self.hedge_enabled = enabled;
        self
    }

    /// Set the hedge threshold percentile (in `(0, 1]`).
    pub fn with_hedge_percentile(mut self, percentile: f64) -> Self {
        self.hedge_percentile = percentile;
        self
    }

    /// Set the sample floor below which no percentile threshold exists.
    pub fn with_hedge_min_samples(mut self, samples: usize) -> Self {
        self.hedge_min_samples = samples;
        self
    }

    /// Set the hedge slack multiplier (≥ 1.0).
    pub fn with_hedge_slack(mut self, slack: f64) -> Self {
        self.hedge_slack = slack;
        self
    }

    /// Set the speculative-dispatch bound per block (first hedge included).
    pub fn with_retry_limit(mut self, limit: u32) -> Self {
        self.retry_limit = limit;
        self
    }

    /// Set the per-hop speculative reissue delay in nanoseconds.
    pub fn with_retry_backoff_ns(mut self, backoff_ns: u64) -> Self {
        self.retry_backoff_ns = backoff_ns;
        self
    }

    /// Set the scorer's recent-latency ring size.
    pub fn with_health_window(mut self, window: usize) -> Self {
        self.health_window = window;
        self
    }

    /// Set the anomaly factor over the EWMA baseline (> 1.0).
    pub fn with_health_suspect_factor(mut self, factor: f64) -> Self {
        self.health_suspect_factor = factor;
        self
    }

    /// Set the promote (`Suspect → Slow`) and recover (`Slow → Healthy`)
    /// streak lengths.
    pub fn with_health_streaks(mut self, promote: u32, recover: u32) -> Self {
        self.health_promote_streak = promote;
        self.health_recover_streak = recover;
        self
    }

    /// Set the probe TTL (sealed windows without a sample) after which a
    /// `Slow` device is made schedulable again.
    pub fn with_health_probe_windows(mut self, windows: u64) -> Self {
        self.health_probe_windows = windows;
        self
    }

    /// Enable write-ahead durability in `dir` with default batch and
    /// snapshot cadence.
    pub fn with_wal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal = Some(WalConfig::new(Some(dir.into())));
        self
    }

    /// Enable an in-memory write-ahead log: the full record/ordering
    /// machinery without a filesystem. For tests (notably model-check
    /// schedules) that assert WAL ordering invariants.
    pub fn with_wal_memory(mut self) -> Self {
        self.wal = Some(WalConfig::new(None));
        self
    }

    /// Set the WAL fsync batch size (requires a WAL; no-op otherwise).
    pub fn with_wal_fsync_batch(mut self, batch: u64) -> Self {
        if let Some(w) = &mut self.wal {
            w.fsync_batch = batch;
        }
        self
    }

    /// Set the WAL compaction cadence in sealed windows (requires a WAL;
    /// no-op otherwise).
    pub fn with_wal_snapshot_interval(mut self, windows: u64) -> Self {
        if let Some(w) = &mut self.wal {
            w.snapshot_interval = windows;
        }
        self
    }

    /// Attach a write/GC device model.
    pub fn with_gc_model(mut self, gc: GcConfig) -> Self {
        self.gc = Some(gc);
        self
    }

    /// The scorer tuning derived from this configuration, in the form the
    /// fault plane consumes.
    pub fn health_params(&self) -> crate::fault::HealthParams {
        crate::fault::HealthParams {
            window: self.health_window,
            suspect_factor: self.health_suspect_factor,
            promote_streak: self.health_promote_streak,
            recover_streak: self.health_recover_streak,
            probe_windows: self.health_probe_windows,
            hedge_percentile: self.hedge_percentile,
            hedge_min_samples: self.hedge_min_samples,
            hedge_slack: self.hedge_slack,
        }
    }

    /// Validate the composite configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.qos.validate()?;
        if self.workers == 0 {
            return Err("at least one worker thread is required".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be positive".into());
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        if self.ring_slots < 2 {
            return Err("ring_slots must be at least 2".into());
        }
        if self.delay_horizon as usize >= self.ring_slots / 2 {
            return Err(format!(
                "delay_horizon {} must stay below half the window ring ({})",
                self.delay_horizon,
                self.ring_slots / 2
            ));
        }
        // NaN-safe: a NaN knob must fail validation, not sail through.
        if self.hedge_percentile.is_nan()
            || self.hedge_percentile <= 0.0
            || self.hedge_percentile > 1.0
        {
            return Err(format!(
                "hedge_percentile {} must lie in (0, 1]",
                self.hedge_percentile
            ));
        }
        if self.hedge_min_samples == 0 || self.hedge_min_samples > self.health_window {
            return Err(format!(
                "hedge_min_samples {} must lie in 1..=health_window ({})",
                self.hedge_min_samples, self.health_window
            ));
        }
        if self.hedge_slack.is_nan() || self.hedge_slack < 1.0 {
            return Err(format!(
                "hedge_slack {} must be at least 1.0",
                self.hedge_slack
            ));
        }
        if self.retry_limit == 0 || self.retry_limit > 16 {
            return Err(format!(
                "retry_limit {} must lie in 1..=16",
                self.retry_limit
            ));
        }
        if self.health_window < 2 || self.health_window > 1024 {
            return Err(format!(
                "health_window {} must lie in 2..=1024",
                self.health_window
            ));
        }
        if self.health_suspect_factor.is_nan() || self.health_suspect_factor <= 1.0 {
            return Err(format!(
                "health_suspect_factor {} must exceed 1.0",
                self.health_suspect_factor
            ));
        }
        if self.health_promote_streak == 0 || self.health_recover_streak == 0 {
            return Err("health promote/recover streaks must be positive".into());
        }
        if self.health_probe_windows == 0 {
            return Err("health_probe_windows must be positive".into());
        }
        if let Some(wal) = &self.wal {
            wal.validate()?;
        }
        if let Some(gc) = &self.gc {
            gc.validate()?;
        }
        self.fault_schedule
            .validate(self.qos.devices())
            .map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServerConfig::new(QosConfig::paper_9_3_1())
            .validate()
            .unwrap();
        ServerConfig::new(QosConfig::paper_13_3_1().with_accesses(2))
            .validate()
            .unwrap();
    }

    #[test]
    fn builders_and_bounds() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_workers(8)
            .with_queue_depth(16)
            .with_assignment(AssignmentMode::Eft)
            .with_delay_horizon(4);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.queue_depth, 16);
        assert_eq!(cfg.assignment, AssignmentMode::Eft);
        cfg.validate().unwrap();

        assert!(ServerConfig::new(QosConfig::paper_9_3_1())
            .with_workers(0)
            .validate()
            .is_err());
        assert!(ServerConfig::new(QosConfig::paper_9_3_1())
            .with_delay_horizon(WINDOW_RING as u64)
            .validate()
            .is_err());
        let mut bad = ServerConfig::new(QosConfig::paper_9_3_1());
        bad.queue_depth = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_workers() {
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_workers(0)
            .validate()
            .unwrap_err();
        assert!(err.contains("worker"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_queue_depth() {
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_queue_depth(0)
            .validate()
            .unwrap_err();
        assert!(err.contains("queue_depth"), "{err}");
    }

    #[test]
    fn ring_slots_builder_and_bounds() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_ring_slots(8)
            .with_delay_horizon(3);
        assert_eq!(cfg.ring_slots, 8);
        cfg.validate().unwrap();

        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_ring_slots(1)
            .validate()
            .unwrap_err();
        assert!(err.contains("ring_slots"), "{err}");

        // The delay horizon must stay below half the ring.
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_ring_slots(8)
            .with_delay_horizon(4)
            .validate()
            .unwrap_err();
        assert!(err.contains("delay_horizon"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_shards() {
        let mut cfg = ServerConfig::new(QosConfig::paper_9_3_1());
        cfg.shards = 0;
        assert!(cfg.validate().unwrap_err().contains("shards"));
    }

    #[test]
    fn validate_rejects_delay_horizon_at_or_past_half_the_ring() {
        // The horizon must stay below WINDOW_RING / 2 so a delayed request
        // can never land on a slot the dispatcher still owns.
        for horizon in [WINDOW_RING as u64 / 2, WINDOW_RING as u64, u64::MAX] {
            let err = ServerConfig::new(QosConfig::paper_9_3_1())
                .with_delay_horizon(horizon)
                .validate()
                .unwrap_err();
            assert!(err.contains("delay_horizon"), "{err}");
        }
        // One below the bound is fine.
        ServerConfig::new(QosConfig::paper_9_3_1())
            .with_delay_horizon(WINDOW_RING as u64 / 2 - 1)
            .validate()
            .unwrap();
    }

    #[test]
    fn hedge_and_health_builders_round_trip() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_hedging(false)
            .with_hedge_percentile(0.99)
            .with_hedge_min_samples(2)
            .with_hedge_slack(1.5)
            .with_retry_limit(3)
            .with_retry_backoff_ns(1_000)
            .with_health_window(32)
            .with_health_suspect_factor(4.0)
            .with_health_streaks(2, 4)
            .with_health_probe_windows(6);
        assert!(!cfg.hedge_enabled);
        assert_eq!(cfg.retry_limit, 3);
        cfg.validate().unwrap();
        let p = cfg.health_params();
        assert_eq!(p.window, 32);
        assert_eq!(p.hedge_min_samples, 2);
        assert_eq!(p.promote_streak, 2);
        assert_eq!(p.probe_windows, 6);
    }

    #[test]
    fn validate_bounds_hedge_and_health_knobs() {
        let base = || ServerConfig::new(QosConfig::paper_9_3_1());
        for (cfg, needle) in [
            (base().with_hedge_percentile(0.0), "hedge_percentile"),
            (base().with_hedge_percentile(1.5), "hedge_percentile"),
            (base().with_hedge_percentile(f64::NAN), "hedge_percentile"),
            (base().with_hedge_min_samples(0), "hedge_min_samples"),
            (base().with_hedge_min_samples(17), "hedge_min_samples"),
            (base().with_hedge_slack(0.5), "hedge_slack"),
            (base().with_retry_limit(0), "retry_limit"),
            (base().with_retry_limit(99), "retry_limit"),
            (base().with_health_window(1), "health_window"),
            (
                base().with_health_suspect_factor(1.0),
                "health_suspect_factor",
            ),
            (base().with_health_streaks(0, 8), "streak"),
            (base().with_health_probe_windows(0), "health_probe_windows"),
        ] {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "expected '{needle}' in '{err}'");
        }
    }

    #[test]
    fn wal_builders_and_bounds() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_wal("/tmp/fqos-wal-test")
            .with_wal_fsync_batch(1)
            .with_wal_snapshot_interval(16);
        let wal = cfg.wal.clone().unwrap();
        assert_eq!(
            wal.dir.as_deref().unwrap().to_str(),
            Some("/tmp/fqos-wal-test")
        );
        assert_eq!(wal.fsync_batch, 1);
        assert_eq!(wal.snapshot_interval, 16);
        cfg.validate().unwrap();

        let mem = ServerConfig::new(QosConfig::paper_9_3_1()).with_wal_memory();
        assert_eq!(mem.wal.as_ref().unwrap().dir, None);
        mem.validate().unwrap();

        // Batch/snapshot builders without a WAL are inert.
        let none = ServerConfig::new(QosConfig::paper_9_3_1()).with_wal_fsync_batch(0);
        assert!(none.wal.is_none());
        none.validate().unwrap();

        for (cfg, needle) in [
            (
                ServerConfig::new(QosConfig::paper_9_3_1())
                    .with_wal_memory()
                    .with_wal_fsync_batch(0),
                "fsync_batch",
            ),
            (
                ServerConfig::new(QosConfig::paper_9_3_1())
                    .with_wal_memory()
                    .with_wal_fsync_batch(4097),
                "fsync_batch",
            ),
            (
                ServerConfig::new(QosConfig::paper_9_3_1())
                    .with_wal_memory()
                    .with_wal_snapshot_interval(0),
                "snapshot_interval",
            ),
        ] {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "expected '{needle}' in '{err}'");
        }
    }

    #[test]
    fn gc_model_builder_and_bounds() {
        let cfg = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_gc_model(GcConfig::new(FtlGeometry::default()));
        assert!(cfg.gc.is_some());
        cfg.validate().unwrap();

        let mut bad = GcConfig::new(FtlGeometry::default());
        bad.geometry.overprovision = 0.9;
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_gc_model(bad)
            .validate()
            .unwrap_err();
        assert!(err.contains("over-provisioning"), "{err}");

        let mut zero = GcConfig::new(FtlGeometry::default());
        zero.write_service_ns = Some(0);
        assert!(zero.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_fault_events() {
        // paper_9_3_1 has 9 devices: device 9 does not exist.
        let err = ServerConfig::new(QosConfig::paper_9_3_1())
            .with_fault_schedule(FaultSchedule::new().fail(9, 5))
            .validate()
            .unwrap_err();
        assert!(err.contains("device 9"), "{err}");
        ServerConfig::new(QosConfig::paper_9_3_1())
            .with_fault_schedule(FaultSchedule::new().fail(8, 5).recover(8, 9))
            .validate()
            .unwrap();
    }
}
